"""Figure 10: effectiveness of operator fusion (UnOpt/Opt × Trill/TiLT).

The paper measures the single-thread execution time of the trend-analysis
query (Figure 3) in four configurations, normalized to the un-optimized
Trill query:

* Trill UnOpt — the query exactly as written (Window-Sum → Select → Join →
  Where);
* Trill Opt   — the Selects manually folded into the Join payload (the only
  fusion an event-centric optimizer can do; the paper reports a 1.06×
  improvement);
* TiLT UnOpt  — one kernel per temporal expression, intermediates
  materialized (the interpreted-SPE execution model);
* TiLT Opt    — the fused single-expression kernel.

Expected shape: Trill Opt barely improves on Trill UnOpt; TiLT UnOpt already
beats both (no per-event interpretation); TiLT Opt adds a further integer
factor on top from fusion across the pipeline breakers.

Run with ``pytest benchmarks/bench_fig10_fusion.py --benchmark-only -s``.
"""

from __future__ import annotations

import pytest

from repro.apps.trading import trend_trading_query
from repro.core.frontend.query import LEFT, PAYLOAD, RIGHT, source
from repro.core.runtime.engine import TiltEngine
from repro.datagen import stock_price_stream
from repro.spe import TrillEngine
from repro.windowing import SUM

from benchutil import record_throughput, tilt_native_inputs

NUM_EVENTS = 20_000
E = PAYLOAD


def unoptimized_trill_query():
    """Figure 2a: Window-Sum → Select(÷size) → Join(l−r) → Where(>0)."""
    stock = source("stock")
    avg10 = stock.window(10, 1).aggregate(SUM).select(E / 10.0)
    avg20 = stock.window(20, 1).aggregate(SUM).select(E / 20.0)
    return avg10.join(avg20, LEFT - RIGHT).where(E > 0)


def optimized_trill_query():
    """Figure 2b: the Selects folded into the Join payload."""
    stock = source("stock")
    sum10 = stock.window(10, 1).aggregate(SUM)
    sum20 = stock.window(20, 1).aggregate(SUM)
    return sum10.join(sum20, LEFT / 10.0 - RIGHT / 20.0).where(E > 0)


@pytest.fixture(scope="module")
def stock_streams():
    return {"stock": stock_price_stream(NUM_EVENTS, seed=0)}


class TestFigure10:
    def test_trill_unopt(self, benchmark, stock_streams):
        engine = TrillEngine(batch_size=8192, workers=1)
        query = unoptimized_trill_query()
        benchmark.pedantic(lambda: engine.run(query, stock_streams), rounds=1, iterations=1)
        record_throughput(benchmark, "Fig10 trill-unopt", NUM_EVENTS)

    def test_trill_opt(self, benchmark, stock_streams):
        engine = TrillEngine(batch_size=8192, workers=1)
        query = optimized_trill_query()
        benchmark.pedantic(lambda: engine.run(query, stock_streams), rounds=1, iterations=1)
        record_throughput(benchmark, "Fig10 trill-opt", NUM_EVENTS)

    def test_tilt_unopt(self, benchmark, stock_streams):
        # optimizer disabled: one kernel per operator, intermediates materialized
        engine = TiltEngine(workers=1, optimize=False)
        compiled = engine.compile(trend_trading_query().to_program())
        assert len(compiled.kernels) > 1
        inputs = tilt_native_inputs(stock_streams)
        benchmark.pedantic(lambda: engine.run(compiled, inputs), rounds=2, iterations=1)
        record_throughput(benchmark, "Fig10 tilt-unopt", NUM_EVENTS)

    def test_tilt_opt(self, benchmark, stock_streams):
        engine = TiltEngine(workers=1)
        compiled = engine.compile(trend_trading_query().to_program())
        assert compiled.fused
        inputs = tilt_native_inputs(stock_streams)
        benchmark.pedantic(lambda: engine.run(compiled, inputs), rounds=3, iterations=1)
        record_throughput(benchmark, "Fig10 tilt-opt", NUM_EVENTS)
