"""Figure 7a: throughput of the primitive temporal operations.

Four micro-benchmarks — Select, Where, Window-Sum and temporal Join — are
measured on every engine that supports them (Grizzly/LightSaber support only
the first three; Join runs on Trill, StreamBox and TiLT).  Expected shape,
matching the paper: all engines are comparable on the trivial per-event
operators, TiLT wins clearly on Window-Sum, and the Join gap is largest
against StreamBox (its O(n²) join) and large against Trill.

Run with ``pytest benchmarks/bench_fig7a_operators.py --benchmark-only -s``.
"""

from __future__ import annotations

import pytest

from repro.apps import JOIN_OP, SELECT_OP, WHERE_OP, WINDOW_SUM_OP
from repro.core.runtime.engine import TiltEngine
from repro.spe import GrizzlyEngine, LightSaberEngine, StreamBoxEngine, TrillEngine

from benchutil import record_throughput, tilt_native_inputs

NUM_EVENTS = 40_000
#: the StreamBox-like nested-loop join is quadratic; keep its input smaller
JOIN_EVENTS_STREAMBOX = 8_000
WORKERS = 4

PER_EVENT_APPS = [SELECT_OP, WHERE_OP]
AGG_APPS = [SELECT_OP, WHERE_OP, WINDOW_SUM_OP]


def _events(streams):
    return sum(len(s) for s in streams.values())


def _run_baseline(benchmark, app, engine, num_events, rounds=2):
    streams = app.streams(num_events, seed=0)
    query = app.query()
    benchmark.pedantic(lambda: engine.run(query, streams), rounds=rounds, iterations=1)
    record_throughput(benchmark, f"Fig7a/{app.name} {engine.name}", _events(streams))


def _run_tilt(benchmark, app, num_events, rounds=5):
    streams = app.streams(num_events, seed=0)
    engine = TiltEngine(workers=WORKERS)
    compiled = engine.compile(app.program())
    inputs = tilt_native_inputs(streams)
    benchmark.pedantic(lambda: engine.run(compiled, inputs), rounds=rounds, iterations=1)
    record_throughput(benchmark, f"Fig7a/{app.name} tilt", _events(streams))


@pytest.mark.parametrize("app", AGG_APPS, ids=lambda a: a.name)
class TestAggregationCapableEngines:
    def test_trill(self, benchmark, app):
        _run_baseline(benchmark, app, TrillEngine(batch_size=8192, workers=WORKERS), NUM_EVENTS)

    def test_streambox(self, benchmark, app):
        _run_baseline(
            benchmark, app, StreamBoxEngine(batch_size=8192, workers=WORKERS), NUM_EVENTS
        )

    def test_grizzly(self, benchmark, app):
        _run_baseline(benchmark, app, GrizzlyEngine(workers=WORKERS), NUM_EVENTS, rounds=3)

    def test_lightsaber(self, benchmark, app):
        _run_baseline(benchmark, app, LightSaberEngine(workers=WORKERS), NUM_EVENTS, rounds=3)

    def test_tilt(self, benchmark, app):
        _run_tilt(benchmark, app, NUM_EVENTS)


class TestJoin:
    """Temporal join: only Trill, StreamBox and TiLT support it (Section 7.1)."""

    def test_trill(self, benchmark):
        _run_baseline(
            benchmark, JOIN_OP, TrillEngine(batch_size=8192, workers=WORKERS), NUM_EVENTS
        )

    def test_streambox(self, benchmark):
        _run_baseline(
            benchmark,
            JOIN_OP,
            StreamBoxEngine(batch_size=8192, workers=WORKERS),
            JOIN_EVENTS_STREAMBOX,
            rounds=1,
        )

    def test_tilt(self, benchmark):
        _run_tilt(benchmark, JOIN_OP, NUM_EVENTS)
