"""Figure 7b: throughput on the eight real-world applications, Trill vs TiLT.

Only the Trill-like baseline has a query language rich enough to express all
eight applications (temporal join, shift, chop, custom aggregates), exactly
as in the paper; each application is measured on Trill and on TiLT with the
same synthetic dataset.  Expected shape: TiLT wins on every application, by
one to two orders of magnitude.

Run with ``pytest benchmarks/bench_fig7b_applications.py --benchmark-only -s``.
The per-application rows print as ``[Fig7b/<app> <engine>] X.XXX M events/s``;
the speedup of TiLT over Trill for an application is the ratio of its two
rows, and the paper's headline number is the average of those ratios.
"""

from __future__ import annotations

import pytest

from repro.apps import REAL_WORLD_APPLICATIONS
from repro.core.runtime.engine import TiltEngine
from repro.spe import TrillEngine

from benchutil import record_throughput, tilt_native_inputs

NUM_EVENTS = 16_000
WORKERS = 4

APP_IDS = [app.name for app in REAL_WORLD_APPLICATIONS]


def _events(streams):
    return sum(len(s) for s in streams.values())


@pytest.mark.parametrize("app", REAL_WORLD_APPLICATIONS, ids=APP_IDS)
class TestRealWorldApplications:
    def test_trill(self, benchmark, app):
        streams = app.streams(NUM_EVENTS, seed=0)
        engine = TrillEngine(batch_size=8192, workers=WORKERS)
        query = app.query()
        benchmark.pedantic(lambda: engine.run(query, streams), rounds=1, iterations=1)
        record_throughput(benchmark, f"Fig7b/{app.name} trill", _events(streams))

    def test_tilt(self, benchmark, app):
        streams = app.streams(NUM_EVENTS, seed=0)
        engine = TiltEngine(workers=WORKERS)
        compiled = engine.compile(app.program())
        inputs = tilt_native_inputs(streams)
        benchmark.pedantic(lambda: engine.run(compiled, inputs), rounds=3, iterations=1)
        record_throughput(benchmark, f"Fig7b/{app.name} tilt", _events(streams))
