"""Figures 8a/8b: multi-core scalability on the Yahoo Streaming Benchmark.

The paper runs YSB with an increasing number of worker threads on a 12-core
and a 32-core machine.  Here the worker count is swept over {1, 2, 4, 8} on
whatever cores the host offers; the series to compare are the same as in the
paper:

* TiLT — synchronization-free partition parallelism; best absolute
  throughput and the best scaling.  Swept over all three execution
  backends — ``serial`` (partitioned but single-threaded baseline),
  ``thread`` (GIL-bound pool; NumPy kernels release the GIL for array
  work) and ``process`` (worker processes, no GIL ceiling at all);
* LightSaber — pane-parallel aggregation, scales but below TiLT;
* Grizzly — shared locked aggregation state limits its scaling;
* StreamBox — data-parallel stateless stages only;
* Trill — no intra-partition parallelism at all (flat line).

Run with ``pytest benchmarks/bench_fig8_scalability.py --benchmark-only -s``
and read one series per engine/backend, one point per worker count.  Pass
``--bench-json PATH`` to capture the sweep for the perf-trajectory file.
"""

from __future__ import annotations

import pytest

from repro.apps import YSB
from repro.core.codegen.native import native_available
from repro.core.runtime.engine import TiltEngine
from repro.spe import GrizzlyEngine, LightSaberEngine, StreamBoxEngine, TrillEngine

from benchutil import record_throughput, tilt_native_inputs

NUM_EVENTS = 60_000
WORKER_SWEEP = [1, 2, 4, 8]
TILT_BACKENDS = ["serial", "thread", "process"]
#: codegen tiers swept for the TiLT series — the native tier is skipped
#: (not silently folded into numpy numbers) when the toolchain is absent
TILT_TIERS = ["numpy"] + (["native"] if native_available() else [])


@pytest.fixture(scope="module")
def ysb_streams():
    return YSB.streams(NUM_EVENTS, seed=0)


@pytest.fixture(scope="module")
def ysb_query():
    return YSB.query()


def _events(streams):
    return sum(len(s) for s in streams.values())


@pytest.mark.parametrize("workers", WORKER_SWEEP)
class TestScalability:
    @pytest.mark.parametrize("tier", TILT_TIERS)
    @pytest.mark.parametrize("backend", TILT_BACKENDS)
    def test_tilt(self, benchmark, ysb_streams, workers, backend, tier):
        engine = TiltEngine(workers=workers, executor_kind=backend, codegen_tier=tier)
        try:
            compiled = engine.compile(YSB.program())
            inputs = tilt_native_inputs(ysb_streams)
            # warm up the worker pool outside the timed region: process
            # workers fork and rebuild the kernels once (the native tier
            # additionally JIT-compiles into the shared disk cache),
            # exactly as a long-lived engine amortizes them in production
            engine.run(compiled, inputs)
            benchmark.pedantic(lambda: engine.run(compiled, inputs), rounds=3, iterations=1)
            record_throughput(
                benchmark,
                f"Fig8/ysb tilt-{backend} workers={workers} tier={tier}",
                _events(ysb_streams),
            )
        finally:
            engine.close()

    def test_lightsaber(self, benchmark, ysb_streams, ysb_query, workers):
        engine = LightSaberEngine(workers=workers)
        benchmark.pedantic(lambda: engine.run(ysb_query, ysb_streams), rounds=2, iterations=1)
        record_throughput(
            benchmark, f"Fig8/ysb lightsaber workers={workers}", _events(ysb_streams)
        )

    def test_grizzly(self, benchmark, ysb_streams, ysb_query, workers):
        engine = GrizzlyEngine(workers=workers)
        benchmark.pedantic(lambda: engine.run(ysb_query, ysb_streams), rounds=2, iterations=1)
        record_throughput(benchmark, f"Fig8/ysb grizzly workers={workers}", _events(ysb_streams))

    def test_streambox(self, benchmark, ysb_streams, ysb_query, workers):
        engine = StreamBoxEngine(batch_size=8192, workers=workers)
        benchmark.pedantic(lambda: engine.run(ysb_query, ysb_streams), rounds=1, iterations=1)
        record_throughput(
            benchmark, f"Fig8/ysb streambox workers={workers}", _events(ysb_streams)
        )

    def test_trill(self, benchmark, ysb_streams, ysb_query, workers):
        # Trill has no intra-partition parallelism: extra workers change nothing
        engine = TrillEngine(batch_size=8192, workers=workers)
        benchmark.pedantic(lambda: engine.run(ysb_query, ysb_streams), rounds=1, iterations=1)
        record_throughput(benchmark, f"Fig8/ysb trill workers={workers}", _events(ysb_streams))
