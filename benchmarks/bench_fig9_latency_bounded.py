"""Figure 9: latency-bounded throughput of Trill and TiLT.

The paper sweeps the batch / snapshot-buffer size from 10 to 1M events on
the eight real-world applications and reports throughput at each point:
Trill collapses at small batches (per-batch overheads dominate) while TiLT
stays essentially flat across the whole latency spectrum.

Here the batch size is swept over {100, 1000, full dataset}:

* for the Trill-like engine the knob is the micro-batch size;
* for TiLT it is the partition interval, converted from events to seconds at
  the stream's event rate (the "user-defined interval size" of Section 6.2).

Run with ``pytest benchmarks/bench_fig9_latency_bounded.py --benchmark-only -s``
and read one series per (application, engine) pair, one point per batch size.
"""

from __future__ import annotations

import pytest

from repro.apps import REAL_WORLD_APPLICATIONS
from repro.core.runtime.engine import TiltEngine
from repro.metrics.latency import events_to_interval
from repro.spe import TrillEngine

from benchutil import record_throughput, tilt_native_inputs

NUM_EVENTS = 8_000
BATCH_SIZES = [100, 1_000, NUM_EVENTS]
WORKERS = 2

APP_IDS = [app.name for app in REAL_WORLD_APPLICATIONS]


def _events(streams):
    return sum(len(s) for s in streams.values())


@pytest.mark.parametrize("batch", BATCH_SIZES)
@pytest.mark.parametrize("app", REAL_WORLD_APPLICATIONS, ids=APP_IDS)
class TestLatencyBoundedThroughput:
    def test_trill(self, benchmark, app, batch):
        streams = app.streams(NUM_EVENTS, seed=0)
        engine = TrillEngine(batch_size=batch, workers=WORKERS)
        query = app.query()
        benchmark.pedantic(lambda: engine.run(query, streams), rounds=1, iterations=1)
        record_throughput(benchmark, f"Fig9/{app.name} trill batch={batch}", _events(streams))

    def test_tilt(self, benchmark, app, batch):
        streams = app.streams(NUM_EVENTS, seed=0)
        interval = events_to_interval(streams, batch)
        engine = TiltEngine(workers=WORKERS, partition_interval=interval)
        compiled = engine.compile(app.program())
        inputs = tilt_native_inputs(streams)
        benchmark.pedantic(lambda: engine.run(compiled, inputs), rounds=2, iterations=1)
        record_throughput(benchmark, f"Fig9/{app.name} tilt batch={batch}", _events(streams))
