"""Multi-tenant serving: aggregate throughput and per-tenant latency vs.
tenant count and scheduler policy.

Beyond the paper: the `repro.serve.QueryService` packs many tenant queries
onto one shared engine, which is exactly the deployment TiLT's
synchronization-free partition parallelism enables — ticks of independent
tenants are embarrassingly parallel work for one worker pool.  This
benchmark sweeps tenant count × scheduler policy over a deliberately
**skewed** fleet (every fourth tenant runs the heavy YSB query over 8×
the events of the light trading/normalization tenants) and reports:

* aggregate service throughput (total events / wall-clock to drain all
  tenants);
* per-tenant p99 *emit gap* — the wall-clock interval between a tenant's
  consecutive output emissions, i.e. the staleness a tenant observes under
  contention.  This is where the policies differ: round-robin gives every
  tenant a turn per cycle regardless of cost, so heavy tenants inflate the
  light tenants' gaps; deficit fair-share charges tenants their measured
  tick cost and schedules the expensive ones less often, cutting the light
  tenants' p99 while fairness (Jain's index over weighted busy time) rises.

Run directly::

    PYTHONPATH=src python benchmarks/bench_multitenant.py [--json results.json]

or under pytest (one quick configuration)::

    pytest benchmarks/bench_multitenant.py -s
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

from repro.apps import get_application
from repro.datagen.sources import sources_for_streams
from repro.serve import QueryService

TENANT_SWEEP = [4, 12, 20]
POLICIES = ["round_robin", "fair"]
WORKERS = 4
HEAVY_EVENTS = 24_000
LIGHT_EVENTS = 3_000
LIGHT_APPS = ["trading", "normalize", "wsum"]


def tenant_plan(n_tenants: int) -> List[Dict]:
    """A skewed fleet: every fourth tenant is a heavy YSB query."""
    plan = []
    for i in range(n_tenants):
        if i % 4 == 3:
            plan.append(
                {"app": "ysb", "events": HEAVY_EVENTS, "tick": 4_000, "kind": "heavy"}
            )
        else:
            plan.append(
                {
                    "app": LIGHT_APPS[i % len(LIGHT_APPS)],
                    "events": LIGHT_EVENTS,
                    "tick": 500,
                    "kind": "light",
                }
            )
    return plan


def run_config(policy: str, n_tenants: int, *, workers: int = WORKERS) -> Dict:
    """Drain a full skewed fleet under one policy; return the stats row."""
    plan = tenant_plan(n_tenants)
    service = QueryService(workers=workers, policy=policy, max_tenants=n_tenants)
    programs: Dict[str, object] = {}
    total_events = 0
    try:
        for i, spec in enumerate(plan):
            app = get_application(spec["app"])
            programs.setdefault(spec["app"], app.program())
            streams = app.streams(spec["events"], seed=i)
            total_events += sum(len(s) for s in streams.values())
            service.submit(
                programs[spec["app"]],
                name=f"{spec['kind']}-{spec['app']}-{i}",
                sources=sources_for_streams(streams, events_per_poll=spec["tick"]),
                retain_output=False,
            )
        started = time.perf_counter()
        service.run_until_idle()
        wall = time.perf_counter() - started
        stats = service.stats()
        light_p99 = [
            t["emit_gap_p99"]
            for name, t in stats.tenants.items()
            if name.startswith("light")
        ]
        heavy_p99 = [
            t["emit_gap_p99"]
            for name, t in stats.tenants.items()
            if name.startswith("heavy")
        ]
        return {
            "policy": policy,
            "tenants": n_tenants,
            "workers": workers,
            "events": total_events,
            "wall_seconds": wall,
            "events_per_second": total_events / wall if wall > 0 else float("inf"),
            "light_emit_gap_p99": max(light_p99) if light_p99 else 0.0,
            "heavy_emit_gap_p99": max(heavy_p99) if heavy_p99 else 0.0,
            "tick_latency_p99": stats.fleet.tick_latency_p99,
            "fairness": stats.fleet.fairness,
            "per_tenant": {
                name: {
                    "events_per_second": t["events_per_second"],
                    "tick_latency_p99": t["tick_latency_p99"],
                    "emit_gap_p99": t["emit_gap_p99"],
                }
                for name, t in stats.tenants.items()
            },
        }
    finally:
        service.close()


def run_sweep(tenant_sweep=TENANT_SWEEP, policies=POLICIES, workers=WORKERS) -> List[Dict]:
    rows = []
    print(
        f"{'policy':>12} {'tenants':>8} {'M ev/s':>8} {'light p99 gap (ms)':>19} "
        f"{'heavy p99 gap (ms)':>19} {'fairness':>9}"
    )
    for n_tenants in tenant_sweep:
        for policy in policies:
            row = run_config(policy, n_tenants, workers=workers)
            rows.append(row)
            print(
                f"{policy:>12} {n_tenants:>8d} "
                f"{row['events_per_second'] / 1e6:>8.3f} "
                f"{row['light_emit_gap_p99'] * 1e3:>19.2f} "
                f"{row['heavy_emit_gap_p99'] * 1e3:>19.2f} "
                f"{row['fairness']:>9.3f}"
            )
    return rows


def test_multitenant_smoke():
    """Quick CI-sized configuration: 4 skewed tenants, both policies."""
    for policy in POLICIES:
        row = run_config(policy, 4, workers=2)
        assert row["events_per_second"] > 0
        assert 0.0 < row["fairness"] <= 1.0
        print(
            f"\n[multitenant] {policy}: {row['events_per_second'] / 1e6:.3f} M ev/s, "
            f"light p99 gap {row['light_emit_gap_p99'] * 1e3:.1f} ms, "
            f"fairness {row['fairness']:.3f}"
        )


def main() -> None:
    import benchutil

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, nargs="*", default=TENANT_SWEEP)
    parser.add_argument("--policies", nargs="*", default=POLICIES, choices=POLICIES)
    parser.add_argument("--workers", type=int, default=WORKERS)
    benchutil.add_json_option(parser)
    args = parser.parse_args()
    rows = run_sweep(args.tenants, args.policies, args.workers)
    if args.json:
        for row in rows:
            benchutil.record_result(
                "multitenant/skewed",
                params={
                    "policy": row["policy"],
                    "tenants": row["tenants"],
                    "workers": row["workers"],
                },
                events=row["events"],
                events_per_sec=row["events_per_second"],
                latency_percentiles={
                    "tick_p99": row["tick_latency_p99"],
                    "light_emit_gap_p99": row["light_emit_gap_p99"],
                    "heavy_emit_gap_p99": row["heavy_emit_gap_p99"],
                },
                extra={
                    "fairness": row["fairness"],
                    "per_tenant": row["per_tenant"],
                },
            )
        benchutil.write_json(args.json)


if __name__ == "__main__":
    main()
