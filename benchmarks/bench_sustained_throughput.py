"""Sustained streaming throughput: steady-state events/sec of a
StreamingSession vs. micro-batch (tick) size and worker count.

The one-shot benchmarks measure a single run over a preloaded dataset.  A
production stream processor instead runs forever, so the number that matters
is the *steady-state* ingest rate: events per second of tick time once the
session is warmed up (kernels compiled, carry-over state populated).  The
tick size plays the role the batch size plays in the Figure 9 latency-bounded
sweep — smaller ticks bound result staleness but expose per-tick overheads —
and the worker count exercises the same synchronization-free partition
parallelism as Figure 8, applied within each tick.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sustained_throughput.py

or under pytest (one quick configuration)::

    pytest benchmarks/bench_sustained_throughput.py -s
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro.apps import YSB
from repro.core.runtime.engine import TiltEngine
from repro.datagen import GeneratorSource, ysb_stream

WORKER_SWEEP = [1, 2, 4]
TICK_EVENT_SWEEP = [1_000, 5_000, 20_000]
CHUNK_EVENTS = 20_000
WARMUP_TICKS = 3
MEASURED_TICKS = 12


def ysb_sources(events_per_tick: int) -> List[GeneratorSource]:
    """An unbounded YSB ad-event source delivering one micro-batch per tick."""
    return [
        GeneratorSource(
            lambda i: ysb_stream(CHUNK_EVENTS, seed=i),
            name="ads",
            events_per_poll=events_per_tick,
        )
    ]


def measure_steady_state(
    workers: int,
    events_per_tick: int,
    *,
    warmup_ticks: int = WARMUP_TICKS,
    measured_ticks: int = MEASURED_TICKS,
) -> Dict[str, float]:
    """Steady-state ingest rate of one session configuration.

    Warmup ticks populate the carry-over state and amortize one-time costs,
    then throughput is read from the rolling window over the measured ticks.
    """
    engine = TiltEngine(workers=workers)
    try:
        session = engine.open_session(
            YSB.program(), ysb_sources(events_per_tick), retain_output=False
        )
        for _ in range(warmup_ticks):
            session.tick()
        baseline_events = session.metrics.input_events
        baseline_busy = session.metrics.busy_seconds
        for _ in range(measured_ticks):
            session.tick()
        events = session.metrics.input_events - baseline_events
        busy = session.metrics.busy_seconds - baseline_busy
        return {
            "workers": float(workers),
            "events_per_tick": float(events_per_tick),
            "events_per_second": events / busy if busy > 0 else float("inf"),
            "tick_p50_ms": session.metrics.latency.p50 * 1e3,
            "tick_p99_ms": session.metrics.latency.p99 * 1e3,
            "retained_snapshots": float(session.retained_snapshots()),
        }
    finally:
        engine.close()


def run_sweep(worker_sweep=WORKER_SWEEP, tick_sweep=TICK_EVENT_SWEEP) -> List[Dict[str, float]]:
    rows = []
    print(
        f"{'workers':>8} {'tick events':>12} {'M events/s':>12} "
        f"{'tick p50 (ms)':>14} {'tick p99 (ms)':>14} {'retained':>9}"
    )
    for workers in worker_sweep:
        for events_per_tick in tick_sweep:
            row = measure_steady_state(workers, events_per_tick)
            rows.append(row)
            print(
                f"{workers:>8d} {events_per_tick:>12,d} "
                f"{row['events_per_second'] / 1e6:>12.3f} "
                f"{row['tick_p50_ms']:>14.2f} {row['tick_p99_ms']:>14.2f} "
                f"{int(row['retained_snapshots']):>9d}"
            )
    return rows


def test_sustained_throughput_smoke():
    """Quick CI-sized configuration: two worker counts, one tick size."""
    rows = [measure_steady_state(w, 5_000, warmup_ticks=1, measured_ticks=3) for w in (1, 2)]
    for row in rows:
        assert row["events_per_second"] > 0
        print(
            f"\n[sustained/ysb] workers={int(row['workers'])} "
            f"tick={int(row['events_per_tick'])}: "
            f"{row['events_per_second'] / 1e6:.3f} M events/s "
            f"(p99 tick {row['tick_p99_ms']:.1f} ms)"
        )


def main() -> None:
    import benchutil

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, nargs="*", default=WORKER_SWEEP)
    parser.add_argument("--tick-events", type=int, nargs="*", default=TICK_EVENT_SWEEP)
    benchutil.add_json_option(parser)
    args = parser.parse_args()
    rows = run_sweep(args.workers, args.tick_events)
    if args.json:
        for row in rows:
            benchutil.record_result(
                "sustained/ysb",
                params={
                    "workers": int(row["workers"]),
                    "events_per_tick": int(row["events_per_tick"]),
                },
                events_per_sec=row["events_per_second"],
                latency_percentiles={
                    "p50": row["tick_p50_ms"] / 1e3,
                    "p99": row["tick_p99_ms"] / 1e3,
                },
            )
        benchutil.write_json(args.json)


if __name__ == "__main__":
    main()
