"""Sustained streaming throughput: steady-state events/sec of a
StreamingSession vs. micro-batch (tick) size and worker count.

The one-shot benchmarks measure a single run over a preloaded dataset.  A
production stream processor instead runs forever, so the number that matters
is the *steady-state* ingest rate: events per second of tick time once the
session is warmed up (kernels compiled, carry-over state populated).  The
tick size plays the role the batch size plays in the Figure 9 latency-bounded
sweep — smaller ticks bound result staleness but expose per-tick overheads —
and the worker count exercises the same synchronization-free partition
parallelism as Figure 8, applied within each tick.

``--lookback-sweep`` adds the incremental-vs-recompute window-depth sweep,
``--trace-overhead`` measures the cost of span tracing (steady-state ev/s
with tracing off vs. on, plus the derived per-call-site cost of the
disabled no-op path), and ``--telemetry-overhead`` measures the cost of
watching a fleet: a single-tenant ``QueryService`` bare vs. SLO-monitored
with its telemetry endpoint being scraped throughout.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sustained_throughput.py

or under pytest (one quick configuration)::

    pytest benchmarks/bench_sustained_throughput.py -s
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

import numpy as np

from repro.apps import YSB, get_application
from repro.core.codegen.compiled import compile_program
from repro.core.codegen.native import native_available
from repro.core.ir import IRBuilder
from repro.core.runtime.engine import TiltEngine
from repro.core.runtime.stream import EventStream
from repro.datagen import GeneratorSource, ysb_stream
from repro.windowing import MEAN

WORKER_SWEEP = [1, 2, 4]
TICK_EVENT_SWEEP = [1_000, 5_000, 20_000]
CHUNK_EVENTS = 20_000
WARMUP_TICKS = 3
MEASURED_TICKS = 12

# --- codegen tier sweep ----------------------------------------------------
# kernel-bound windowed-aggregate workloads: repeated execution of a warm
# compiled query over a preloaded window — the partition path process-pool
# workers run, where kernel time (not per-tick session bookkeeping)
# dominates and the native tier's single-pass lowering shows its real
# advantage.  Warm-up (JIT compile + first run) happens outside the timed
# region; throughput is best-of-reps to filter scheduler noise.
KERNEL_BOUND_APPS = ["trading", "normalize", "rsi"]
KERNEL_BOUND_EVENTS = 200_000
KERNEL_BOUND_REPS = 5


def available_tiers() -> List[str]:
    """Codegen tiers this host can measure; native is skipped (not silently
    measured as numpy) when the cffi + C-compiler toolchain is absent."""
    return ["numpy"] + (["native"] if native_available() else [])

# --- trace overhead --------------------------------------------------------
# one mid-sweep configuration measured with tracing off and on; interleaved
# repetitions (best-of) filter out scheduler noise so the reported overhead
# reflects the instrumentation, not the machine.
TRACE_OVERHEAD_WORKERS = 2
TRACE_OVERHEAD_TICK_EVENTS = 5_000
TRACE_OVERHEAD_REPS = 3

# --- incremental lookback sweep -------------------------------------------
# window depth in *events*; the event period converts it to seconds.  Depths
# start where the O(depth) recompute term overtakes the fixed per-tick cost
# (ingest, grid, emission — a few ms) that both modes share.
LOOKBACK_SWEEP = [10_000, 40_000, 160_000, 640_000]
LOOKBACK_PERIOD = 0.01
LOOKBACK_TICK_EVENTS = 1_000
LOOKBACK_WARMUP_POLL = 50_000
LOOKBACK_MEASURED_TICKS = 15


def ysb_sources(events_per_tick: int) -> List[GeneratorSource]:
    """An unbounded YSB ad-event source delivering one micro-batch per tick."""
    return [
        GeneratorSource(
            lambda i: ysb_stream(CHUNK_EVENTS, seed=i),
            name="ads",
            events_per_poll=events_per_tick,
        )
    ]


def measure_steady_state(
    workers: int,
    events_per_tick: int,
    *,
    warmup_ticks: int = WARMUP_TICKS,
    measured_ticks: int = MEASURED_TICKS,
    trace: bool = None,
    codegen_tier: str = "numpy",
) -> Dict[str, float]:
    """Steady-state ingest rate of one session configuration.

    Warmup ticks populate the carry-over state and amortize one-time costs
    (including native-tier JIT compilation), then throughput is read from
    the rolling window over the measured ticks.  ``trace`` is forwarded to
    :class:`TiltEngine` (``None`` resolves from ``REPRO_TRACE``, so the
    default sweep measures whatever the environment asks for).
    """
    engine = TiltEngine(workers=workers, trace=trace, codegen_tier=codegen_tier)
    try:
        session = engine.open_session(
            YSB.program(), ysb_sources(events_per_tick), retain_output=False
        )
        for _ in range(warmup_ticks):
            session.tick()
        baseline_events = session.metrics.input_events
        baseline_busy = session.metrics.busy_seconds
        for _ in range(measured_ticks):
            session.tick()
        events = session.metrics.input_events - baseline_events
        busy = session.metrics.busy_seconds - baseline_busy
        spans = len(engine.tracer.snapshot()) if engine.tracer.enabled else 0
        return {
            "workers": float(workers),
            "tier": codegen_tier,
            "events_per_tick": float(events_per_tick),
            "events_per_second": events / busy if busy > 0 else float("inf"),
            "tick_p50_ms": session.metrics.latency.p50 * 1e3,
            "tick_p99_ms": session.metrics.latency.p99 * 1e3,
            "retained_snapshots": float(session.retained_snapshots()),
            "spans_recorded": float(spans),
        }
    finally:
        engine.close()


def run_sweep(
    worker_sweep=WORKER_SWEEP, tick_sweep=TICK_EVENT_SWEEP, tiers=("numpy",)
) -> List[Dict[str, float]]:
    rows = []
    print(
        f"{'workers':>8} {'tier':>7} {'tick events':>12} {'M events/s':>12} "
        f"{'tick p50 (ms)':>14} {'tick p99 (ms)':>14} {'retained':>9}"
    )
    for tier in tiers:
        for workers in worker_sweep:
            for events_per_tick in tick_sweep:
                row = measure_steady_state(workers, events_per_tick, codegen_tier=tier)
                rows.append(row)
                print(
                    f"{workers:>8d} {tier:>7} {events_per_tick:>12,d} "
                    f"{row['events_per_second'] / 1e6:>12.3f} "
                    f"{row['tick_p50_ms']:>14.2f} {row['tick_p99_ms']:>14.2f} "
                    f"{int(row['retained_snapshots']):>9d}"
                )
    return rows


def measure_kernel_throughput(
    app_name: str,
    codegen_tier: str,
    *,
    n_events: int = KERNEL_BOUND_EVENTS,
    reps: int = KERNEL_BOUND_REPS,
) -> Dict[str, float]:
    """Sustained ev/s of a warm compiled query over a preloaded window.

    This is the partition execution path (``CompiledQuery.run`` over
    snapshot buffers already in memory) — what each pool worker runs per
    partition, with session/tick bookkeeping excluded.  Compilation and a
    first full run happen outside the timed region, so the native tier's
    JIT cost never leaks into the measurement; best-of-``reps`` filters
    scheduler noise.
    """
    import benchutil

    app = get_application(app_name)
    inputs = benchutil.tilt_native_inputs(app.streams(n_events, seed=7))
    events = sum(len(buf) for buf in inputs.values())
    t_end = max(float(buf.times[-1]) for buf in inputs.values()) + 1.0
    compiled = compile_program(app.program(), codegen_tier=codegen_tier)
    compiled.run(inputs, 0.0, t_end)  # warm-up: JIT compile + allocator
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        compiled.run(inputs, 0.0, t_end)
        best = min(best, time.perf_counter() - start)
    return {
        "app": app_name,
        "tier": codegen_tier,
        "events": float(events),
        "events_per_second": events / best,
        "run_ms": best * 1e3,
    }


def run_kernel_bound_sweep(
    apps=KERNEL_BOUND_APPS,
    tiers=None,
    *,
    n_events: int = KERNEL_BOUND_EVENTS,
    reps: int = KERNEL_BOUND_REPS,
) -> List[Dict[str, float]]:
    """Kernel-bound windowed-aggregate workloads, one row per (app, tier)."""
    tiers = available_tiers() if tiers is None else list(tiers)
    rows = []
    print(f"{'app':>10} {'tier':>7} {'M events/s':>12} {'run (ms)':>10} {'speedup':>8}")
    for app_name in apps:
        per_tier = {}
        for tier in tiers:
            row = measure_kernel_throughput(app_name, tier, n_events=n_events, reps=reps)
            per_tier[tier] = row
            rows.append(row)
            speedup = (
                f"{row['events_per_second'] / per_tier['numpy']['events_per_second']:>7.2f}x"
                if tier != "numpy" and "numpy" in per_tier
                else f"{'—':>8}"
            )
            print(
                f"{app_name:>10} {tier:>7} {row['events_per_second'] / 1e6:>12.3f} "
                f"{row['run_ms']:>10.2f} {speedup}"
            )
    return rows


def run_trace_overhead(
    workers: int = TRACE_OVERHEAD_WORKERS,
    events_per_tick: int = TRACE_OVERHEAD_TICK_EVENTS,
    reps: int = TRACE_OVERHEAD_REPS,
) -> List[Dict[str, float]]:
    """Span-tracing cost: steady-state ev/s with tracing disabled vs enabled.

    ``trace=False`` exercises the strict no-op path every instrumented call
    site takes in production (shared null tracer, no records); ``trace=True``
    additionally allocates and buffers a span record per instrumented region.
    Modes are interleaved and the best of ``reps`` repetitions kept per mode,
    so the percentage reported is the instrumentation overhead rather than
    run-to-run drift.

    Disabled-mode overhead cannot be measured as a run-to-run delta (both
    runs would take the same no-op path), so it is derived instead: the null
    span context manager is micro-timed, multiplied by the spans-per-tick
    count observed in the traced run, and expressed against the untraced
    median tick — the cost the instrumented call sites add when tracing is
    off.
    """
    best: Dict[bool, Dict[str, float]] = {}
    for _ in range(reps):
        for traced in (False, True):
            row = measure_steady_state(workers, events_per_tick, trace=traced)
            if traced not in best or row["events_per_second"] > best[traced]["events_per_second"]:
                best[traced] = row
    off, on = best[False], best[True]
    measured_ticks = WARMUP_TICKS + MEASURED_TICKS
    spans_per_tick = on["spans_recorded"] / measured_ticks
    null_cost = _null_span_cost()
    disabled_pct = (spans_per_tick * null_cost) / (off["tick_p50_ms"] / 1e3) * 100.0
    enabled_pct = (
        (off["events_per_second"] - on["events_per_second"])
        / off["events_per_second"] * 100.0
    )
    print(f"{'tracing':>8} {'M events/s':>12} {'tick p50 (ms)':>14} {'overhead':>9}")
    print(
        f"{'off':>8} {off['events_per_second'] / 1e6:>12.3f} "
        f"{off['tick_p50_ms']:>14.2f} {disabled_pct:>8.3f}%"
    )
    print(
        f"{'on':>8} {on['events_per_second'] / 1e6:>12.3f} "
        f"{on['tick_p50_ms']:>14.2f} {enabled_pct:>8.2f}%"
    )
    print(
        f"  (disabled overhead = {spans_per_tick:.0f} no-op spans/tick × "
        f"{null_cost * 1e9:.0f} ns against the untraced tick)"
    )
    base = {"workers": float(workers), "events_per_tick": float(events_per_tick)}
    return [
        {**base, **off, "traced": 0.0, "overhead_pct": disabled_pct,
         "null_span_ns": null_cost * 1e9, "spans_per_tick": spans_per_tick},
        {**base, **on, "traced": 1.0, "overhead_pct": enabled_pct},
    ]


def measure_service_steady_state(
    workers: int,
    events_per_tick: int,
    *,
    observed: bool,
    warmup_ticks: int = WARMUP_TICKS,
    measured_ticks: int = MEASURED_TICKS,
) -> Dict[str, float]:
    """Steady-state ev/s of a single-tenant QueryService, watched or not.

    ``observed=True`` runs the full fleet-health stack — SLO monitor plus a
    live telemetry endpoint being scraped (``/metrics`` and ``/healthz``)
    from another thread throughout the measurement; ``observed=False`` is
    the same service bare.  Time is wall-clock around the step loop, so
    scheduler + SLO bookkeeping count toward the measured cost.
    """
    import threading
    import urllib.request

    from repro.serve import QueryService

    svc = QueryService(
        workers=workers,
        slo=True if observed else None,
        telemetry_port=0 if observed else None,
    )
    stop = threading.Event()
    scraper = None
    try:
        svc.submit(
            YSB.program(),
            name="bench",
            sources=ysb_sources(events_per_tick),
            retain_output=False,
        )
        if observed:
            base = svc.telemetry.url

            def scrape() -> None:
                # ~20 scrapes/s — far hotter than a real Prometheus
                # interval, but paced so the measurement reflects serving
                # cost rather than a spin-loop fighting for the GIL
                while not stop.is_set():
                    for route in ("/metrics", "/healthz"):
                        try:
                            urllib.request.urlopen(base + route, timeout=1).read()
                        except Exception:
                            pass
                    stop.wait(0.05)

            scraper = threading.Thread(target=scrape, daemon=True)
            scraper.start()
        for _ in range(warmup_ticks):
            svc.step()
        before = svc.stats().tenants["bench"]["input_events"]
        samples = []
        start = time.perf_counter()
        for _ in range(measured_ticks):
            t0 = time.perf_counter()
            svc.step()
            samples.append(time.perf_counter() - t0)
        wall = time.perf_counter() - start
        events = svc.stats().tenants["bench"]["input_events"] - before
        return {
            "workers": float(workers),
            "events_per_tick": float(events_per_tick),
            "events_per_second": events / wall if wall > 0 else float("inf"),
            "tick_p50_ms": float(np.median(samples)) * 1e3,
        }
    finally:
        stop.set()
        if scraper is not None:
            scraper.join()
        svc.close()


def run_telemetry_overhead(
    workers: int = TRACE_OVERHEAD_WORKERS,
    events_per_tick: int = TRACE_OVERHEAD_TICK_EVENTS,
    reps: int = TRACE_OVERHEAD_REPS,
) -> List[Dict[str, float]]:
    """Fleet-health cost: service ev/s bare vs. SLO + scraped endpoint.

    Like :func:`run_trace_overhead`, modes are interleaved and the best of
    ``reps`` kept per mode, and the headline number is *derived* rather
    than a run-to-run delta: the per-tick SLO observation path (one
    ``record_tick`` into the burn windows) is micro-timed and expressed
    against the unobserved median tick — run-to-run drift on a busy CI
    machine easily exceeds the real cost, a microbenchmark does not.
    """
    best: Dict[bool, Dict[str, float]] = {}
    for _ in range(reps):
        for observed in (False, True):
            row = measure_service_steady_state(
                workers, events_per_tick, observed=observed
            )
            if (
                observed not in best
                or row["events_per_second"] > best[observed]["events_per_second"]
            ):
                best[observed] = row
    off, on = best[False], best[True]
    slo_cost = _slo_observation_cost()
    derived_pct = slo_cost / (off["tick_p50_ms"] / 1e3) * 100.0
    measured_pct = (
        (off["events_per_second"] - on["events_per_second"])
        / off["events_per_second"] * 100.0
    )
    print(f"{'observed':>9} {'M events/s':>12} {'tick p50 (ms)':>14} {'overhead':>9}")
    print(
        f"{'no':>9} {off['events_per_second'] / 1e6:>12.3f} "
        f"{off['tick_p50_ms']:>14.2f} {'—':>9}"
    )
    print(
        f"{'yes':>9} {on['events_per_second'] / 1e6:>12.3f} "
        f"{on['tick_p50_ms']:>14.2f} {measured_pct:>8.2f}%"
    )
    print(
        f"  (derived per-tick SLO observation cost {slo_cost * 1e6:.1f} µs "
        f"= {derived_pct:.3f}% of the unobserved tick)"
    )
    base = {"workers": float(workers), "events_per_tick": float(events_per_tick)}
    return [
        {**base, **off, "observed": 0.0, "overhead_pct": derived_pct,
         "slo_observation_us": slo_cost * 1e6},
        {**base, **on, "observed": 1.0, "overhead_pct": measured_pct},
    ]


def _slo_observation_cost(iterations: int = 20_000) -> float:
    """Seconds per SLO tick observation: what the serving layer adds to each
    tick when ``slo=`` is enabled (the subscriber's ``record_tick`` into the
    fast/slow burn windows, gap computation included)."""
    from repro.obs.slo import SLOMonitor

    monitor = SLOMonitor()
    monitor.watch("bench")
    start = time.perf_counter()
    for i in range(iterations):
        monitor.record_tick("bench", seconds=0.001, emitted=True, emit_gap=0.002)
    return (time.perf_counter() - start) / iterations


def _null_span_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled-tracer span: the full no-op path an instrumented
    call site pays when tracing is off (attr kwargs included, matching the
    hot sites in ``session.tick``/``engine.run``)."""
    from repro.obs.trace import NULL_TRACER

    start = time.perf_counter()
    for i in range(iterations):
        with NULL_TRACER.span("bench.null", tick=i, backend="thread"):
            pass
    return (time.perf_counter() - start) / iterations


def _lookback_program(depth_events: int):
    b = IRBuilder()
    x = b.stream("x")
    window = x.window(-depth_events * LOOKBACK_PERIOD, 0.0)
    b.define("out", window.reduce(MEAN), precision=LOOKBACK_PERIOD)
    return b.build(output="out")


def _lookback_source(events_per_tick: int) -> GeneratorSource:
    def chunk(i: int) -> EventStream:
        rng = np.random.default_rng(1_000 + i)
        return EventStream.from_samples(
            rng.uniform(0.5, 2.0, CHUNK_EVENTS), period=LOOKBACK_PERIOD, name="x"
        )

    return GeneratorSource(chunk, name="x", events_per_poll=events_per_tick)


def measure_lookback(
    depth_events: int,
    incremental: bool,
    *,
    events_per_tick: int = LOOKBACK_TICK_EVENTS,
    measured_ticks: int = LOOKBACK_MEASURED_TICKS,
) -> Dict[str, float]:
    """Median tick latency at one window depth, incremental or recompute.

    Warmup ingests in large polls until the carry-over covers the full
    lookback (so full recompute pays its real O(depth) cost without the
    warmup itself taking O(depth²)), then each measured tick pulls the
    steady-state micro-batch and is individually wall-clocked; the median
    filters allocator/GC noise.
    """
    engine = TiltEngine(workers=1, incremental=incremental)
    try:
        session = engine.open_session(
            _lookback_program(depth_events),
            [_lookback_source(LOOKBACK_WARMUP_POLL)],
            retain_output=False,
        )
        ingested = 0
        while ingested < depth_events + LOOKBACK_WARMUP_POLL:
            session.tick()
            ingested += LOOKBACK_WARMUP_POLL
        samples = []
        for _ in range(measured_ticks):
            start = time.perf_counter()
            session.tick(max_events=events_per_tick)
            samples.append(time.perf_counter() - start)
        return {
            "depth_events": float(depth_events),
            "incremental": float(incremental),
            "tick_p50_ms": float(np.median(samples)) * 1e3,
            "events_per_second": events_per_tick / float(np.median(samples)),
            "retained_snapshots": float(session.retained_snapshots()),
        }
    finally:
        engine.close()


def run_lookback_sweep(depth_sweep=LOOKBACK_SWEEP) -> List[Dict[str, float]]:
    """Tick cost vs. window depth: full recompute degrades with the lookback
    while incremental execution stays flat at O(events per tick)."""
    rows = []
    print(
        f"{'depth (events)':>14} {'recompute p50 (ms)':>19} "
        f"{'incremental p50 (ms)':>21} {'speedup':>8}"
    )
    for depth in depth_sweep:
        full = measure_lookback(depth, incremental=False)
        inc = measure_lookback(depth, incremental=True)
        rows.extend([full, inc])
        print(
            f"{depth:>14,d} {full['tick_p50_ms']:>19.3f} "
            f"{inc['tick_p50_ms']:>21.3f} "
            f"{full['tick_p50_ms'] / inc['tick_p50_ms']:>7.1f}x"
        )
    return rows


def test_sustained_throughput_smoke():
    """Quick CI-sized configuration: two worker counts, one tick size."""
    rows = [measure_steady_state(w, 5_000, warmup_ticks=1, measured_ticks=3) for w in (1, 2)]
    for row in rows:
        assert row["events_per_second"] > 0
        print(
            f"\n[sustained/ysb] workers={int(row['workers'])} "
            f"tick={int(row['events_per_tick'])}: "
            f"{row['events_per_second'] / 1e6:.3f} M events/s "
            f"(p99 tick {row['tick_p99_ms']:.1f} ms)"
        )


def test_kernel_bound_tier_smoke():
    """CI-sized kernel-bound point: both tiers run and produce output; the
    native-vs-numpy speedup itself is asserted on the committed baseline
    (full-size runs), not here where the dataset is too small to be stable."""
    rows = run_kernel_bound_sweep(apps=["trading"], n_events=40_000, reps=2)
    assert all(row["events_per_second"] > 0 for row in rows)
    tiers = {row["tier"] for row in rows}
    assert "numpy" in tiers
    if native_available():
        assert "native" in tiers


def test_incremental_lookback_smoke():
    """CI-sized lookback point: incremental must not be slower than full
    recompute once the window is a few ticks deep."""
    full = measure_lookback(600, incremental=False, events_per_tick=200, measured_ticks=4)
    inc = measure_lookback(600, incremental=True, events_per_tick=200, measured_ticks=4)
    assert inc["tick_p50_ms"] > 0 and full["tick_p50_ms"] > 0
    print(
        f"\n[sustained/lookback] depth=600: recompute {full['tick_p50_ms']:.2f} ms, "
        f"incremental {inc['tick_p50_ms']:.2f} ms per tick"
    )


def test_trace_overhead_smoke():
    """CI-sized check: instrumentation must be near-free when tracing is off
    (the derived no-op call-site cost stays under the 2% budget)."""
    rows = run_trace_overhead(workers=1, events_per_tick=2_000, reps=1)
    off = rows[0]
    assert off["overhead_pct"] < 2.0, f"disabled-mode tracing overhead {off['overhead_pct']:.3f}%"
    assert rows[1]["spans_recorded"] > 0


def test_telemetry_overhead_smoke():
    """CI-sized check: watching a fleet (SLO monitor + scraped endpoint)
    must cost under the 2% budget — asserted on the derived per-tick SLO
    observation cost, which is immune to run-to-run drift."""
    rows = run_telemetry_overhead(workers=1, events_per_tick=2_000, reps=1)
    derived = rows[0]
    assert derived["overhead_pct"] < 2.0, (
        f"per-tick SLO observation cost {derived['overhead_pct']:.3f}% "
        f"({derived['slo_observation_us']:.1f} µs) exceeds the 2% budget"
    )
    assert rows[1]["events_per_second"] > 0


def main() -> None:
    import benchutil

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, nargs="*", default=WORKER_SWEEP)
    parser.add_argument("--tick-events", type=int, nargs="*", default=TICK_EVENT_SWEEP)
    parser.add_argument(
        "--tiers", nargs="*", default=None,
        help="codegen tiers to sweep (default: numpy plus native when the "
        "toolchain is available)",
    )
    parser.add_argument(
        "--kernel-bound",
        action="store_true",
        help="also measure the kernel-bound windowed-aggregate workloads "
        "(warm compiled-query throughput per codegen tier)",
    )
    parser.add_argument(
        "--lookback-sweep",
        action="store_true",
        help="also sweep window depth: incremental vs. full-recompute tick cost",
    )
    parser.add_argument(
        "--depths", type=int, nargs="*", default=LOOKBACK_SWEEP,
        help="window depths (in events) for --lookback-sweep",
    )
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="also measure steady-state ev/s with span tracing off vs. on "
        "(plus the derived no-op call-site cost of the disabled path)",
    )
    parser.add_argument(
        "--telemetry-overhead",
        action="store_true",
        help="also measure service ev/s bare vs. SLO-monitored + scraped "
        "telemetry endpoint (plus the derived per-tick SLO cost)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: small sweep, fewer measured ticks (what the "
        "bench-regression gate compares against the committed baseline)",
    )
    benchutil.add_json_option(parser)
    args = parser.parse_args()
    if args.quick:
        args.workers = [1, 2]
        args.tick_events = [5_000]
        args.kernel_bound = True
    tiers = available_tiers() if args.tiers is None else args.tiers
    rows = run_sweep(args.workers, args.tick_events, tiers)
    kernel_rows = run_kernel_bound_sweep(tiers=tiers) if args.kernel_bound else []
    lookback_rows = run_lookback_sweep(args.depths) if args.lookback_sweep else []
    trace_rows = run_trace_overhead() if args.trace_overhead else []
    telemetry_rows = run_telemetry_overhead() if args.telemetry_overhead else []
    if args.json:
        for row in rows:
            benchutil.record_result(
                "sustained/ysb",
                params={
                    "workers": int(row["workers"]),
                    "events_per_tick": int(row["events_per_tick"]),
                    "tier": row["tier"],
                },
                events_per_sec=row["events_per_second"],
                latency_percentiles={
                    "p50": row["tick_p50_ms"] / 1e3,
                    "p99": row["tick_p99_ms"] / 1e3,
                },
            )
        for row in kernel_rows:
            benchutil.record_result(
                "sustained/kernel-bound",
                params={"app": row["app"], "tier": row["tier"]},
                events=int(row["events"]),
                events_per_sec=row["events_per_second"],
                extra={"run_ms": row["run_ms"]},
            )
        for row in lookback_rows:
            benchutil.record_result(
                "sustained/lookback",
                params={
                    "depth_events": int(row["depth_events"]),
                    "mode": "incremental" if row["incremental"] else "recompute",
                },
                events_per_sec=row["events_per_second"],
                latency_percentiles={"p50": row["tick_p50_ms"] / 1e3},
            )
        for row in trace_rows:
            extra = {"overhead_pct": row["overhead_pct"]}
            if "spans_per_tick" in row:
                extra["spans_per_tick"] = row["spans_per_tick"]
                extra["null_span_ns"] = row["null_span_ns"]
            benchutil.record_result(
                "sustained/trace-overhead",
                params={
                    "workers": int(row["workers"]),
                    "events_per_tick": int(row["events_per_tick"]),
                    "trace": "on" if row["traced"] else "off",
                },
                events_per_sec=row["events_per_second"],
                latency_percentiles={"p50": row["tick_p50_ms"] / 1e3},
                extra=extra,
            )
        for row in telemetry_rows:
            extra = {"overhead_pct": row["overhead_pct"]}
            if "slo_observation_us" in row:
                extra["slo_observation_us"] = row["slo_observation_us"]
            benchutil.record_result(
                "sustained/telemetry-overhead",
                params={
                    "workers": int(row["workers"]),
                    "events_per_tick": int(row["events_per_tick"]),
                    "observed": "yes" if row["observed"] else "no",
                },
                events_per_sec=row["events_per_second"],
                latency_percentiles={"p50": row["tick_p50_ms"] / 1e3},
                extra=extra,
            )
        benchutil.write_json(args.json)


if __name__ == "__main__":
    main()
