"""Table 1: Yahoo Streaming Benchmark throughput across engines.

The paper's Table 1 reports YSB throughput (million events/sec) for
scale-out engines (Spark, Flink — not reproducible on a single process and
omitted here) and scale-up engines: Trill, StreamBox, Grizzly, LightSaber,
plus TiLT.  This benchmark reproduces the scale-up columns: the expected
*shape* is interpreted engines (Trill/StreamBox) slowest, the vectorized
aggregation-only engines (Grizzly/LightSaber) in between, and TiLT fastest.

Run with ``pytest benchmarks/bench_table1_ysb.py --benchmark-only -s``.
"""

from __future__ import annotations

import pytest

from repro.apps import YSB
from repro.core.runtime.engine import TiltEngine
from repro.spe import GrizzlyEngine, LightSaberEngine, StreamBoxEngine, TrillEngine

from benchutil import record_throughput, tilt_native_inputs

NUM_EVENTS = 60_000
WORKERS = 4


@pytest.fixture(scope="module")
def ysb_streams():
    return YSB.streams(NUM_EVENTS, seed=0)


@pytest.fixture(scope="module")
def ysb_query():
    return YSB.query()


def _events(streams):
    return sum(len(s) for s in streams.values())


class TestTable1:
    def test_trill(self, benchmark, ysb_streams, ysb_query):
        engine = TrillEngine(batch_size=8192, workers=WORKERS)
        benchmark.pedantic(lambda: engine.run(ysb_query, ysb_streams), rounds=2, iterations=1)
        record_throughput(benchmark, "Table1/YSB trill", _events(ysb_streams))

    def test_streambox(self, benchmark, ysb_streams, ysb_query):
        engine = StreamBoxEngine(batch_size=8192, workers=WORKERS)
        benchmark.pedantic(lambda: engine.run(ysb_query, ysb_streams), rounds=2, iterations=1)
        record_throughput(benchmark, "Table1/YSB streambox", _events(ysb_streams))

    def test_grizzly(self, benchmark, ysb_streams, ysb_query):
        engine = GrizzlyEngine(workers=WORKERS)
        benchmark.pedantic(lambda: engine.run(ysb_query, ysb_streams), rounds=3, iterations=1)
        record_throughput(benchmark, "Table1/YSB grizzly", _events(ysb_streams))

    def test_lightsaber(self, benchmark, ysb_streams, ysb_query):
        engine = LightSaberEngine(workers=WORKERS)
        benchmark.pedantic(lambda: engine.run(ysb_query, ysb_streams), rounds=3, iterations=1)
        record_throughput(benchmark, "Table1/YSB lightsaber", _events(ysb_streams))

    def test_tilt(self, benchmark, ysb_streams):
        engine = TiltEngine(workers=WORKERS)
        compiled = engine.compile(YSB.program())
        inputs = tilt_native_inputs(ysb_streams)
        benchmark.pedantic(
            lambda: engine.run(compiled, inputs), rounds=5, iterations=1
        )
        record_throughput(benchmark, "Table1/YSB tilt", _events(ysb_streams))
