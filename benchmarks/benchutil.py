"""Helpers shared by the benchmark files.

Besides the console table rows, every benchmark result can be captured as a
machine-readable record (name, params, events/sec, latency percentiles) and
written to a JSON file, so a perf trajectory can be recorded across
commits:

* argparse-driven scripts (``bench_sustained_throughput.py``,
  ``bench_multitenant.py``) take ``--json PATH`` (see :func:`add_json_option`);
* pytest-benchmark suites (the ``bench_fig*`` files) take
  ``pytest --bench-json PATH`` (wired in ``conftest.py``) — every
  :func:`record_throughput` row is collected automatically.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from typing import Dict, List, Optional

#: machine-readable results collected during this process (one dict per
#: benchmark row; see :func:`record_result` for the schema)
RECORDS: List[dict] = []

#: the engine-behaviour env knobs worth recording with a perf number — a
#: result measured under the process executor or incremental ticks is not
#: comparable to one measured without
_ENV_KNOBS = ("REPRO_EXECUTOR", "REPRO_INCREMENTAL", "REPRO_TRACE")

_METADATA: Optional[dict] = None


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except Exception:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def hardware_score(repeats: int = 5) -> float:
    """A dimensionless single-core speed score for this machine.

    Times a small fixed NumPy kernel (best-of-``repeats``, so scheduler
    noise only ever makes the machine look *slower*) and returns work per
    second, scaled so ~1.0 lands on a mid-range 2020s core.  Recorded into
    every result file, it lets :mod:`check_regression` compare a number
    measured on a laptop against a baseline seeded in CI: throughput is
    expected to scale roughly with this score, and the gate calibrates by
    the ratio instead of hard-failing on hardware difference.
    """
    import numpy as np

    rng = np.random.default_rng(0)
    a = rng.standard_normal(200_000)
    b = rng.standard_normal(200_000)
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        c = np.cumsum(a * b)
        s = float(np.sort(c)[::4].sum())
        best = min(best, time.perf_counter() - t0)
        assert s == s  # keep the work observable
    return round(0.002 / best, 3)


def run_metadata(refresh: bool = False) -> dict:
    """Provenance of this benchmark process, computed once and attached to
    every recorded row: a result file must identify the commit, machine and
    engine configuration it was measured under to be comparable later."""
    global _METADATA
    if _METADATA is None or refresh:
        import numpy as np

        _METADATA = {
            "git_sha": _git_sha(),
            "hostname": socket.gethostname(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "env": {k: os.environ[k] for k in _ENV_KNOBS if k in os.environ},
            "hardware_score": hardware_score(),
        }
    return dict(_METADATA)


def record_result(
    name: str,
    *,
    params: Optional[Dict] = None,
    events: Optional[int] = None,
    events_per_sec: Optional[float] = None,
    latency_percentiles: Optional[Dict[str, float]] = None,
    extra: Optional[Dict] = None,
) -> dict:
    """Append one benchmark row to the in-process :data:`RECORDS` registry.

    The schema is intentionally flat and stable: ``name`` identifies the
    benchmark and series, ``params`` the configuration axes (workers, tick
    size, tenant count, policy, ...), ``events_per_sec`` the headline
    throughput, and ``latency_percentiles`` a ``{"p50": ..., "p99": ...}``
    mapping in seconds.
    """
    record = {
        "name": name,
        "params": dict(params or {}),
        "events": events,
        "events_per_sec": events_per_sec,
        "latency_percentiles": dict(latency_percentiles or {}),
        "meta": run_metadata(),
    }
    if extra:
        record["extra"] = dict(extra)
    RECORDS.append(record)
    return record


def write_json(path: str, records: Optional[List[dict]] = None) -> None:
    """Write collected benchmark records to ``path`` as a JSON document."""
    payload = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "meta": run_metadata(),
        "results": list(RECORDS if records is None else records),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[benchutil] wrote {len(payload['results'])} result(s) to {path}")


def add_json_option(parser) -> None:
    """Add the standard ``--json PATH`` flag to an argparse parser."""
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write machine-readable results (name, params, events/sec, "
        "latency percentiles) to this JSON file",
    )


def record_throughput(benchmark, label: str, input_events: int) -> float:
    """Attach throughput info to a finished benchmark and print a table row.

    The paper reports throughput as input events processed per second of
    query execution; ``benchmark.stats`` holds the measured execution times.
    The row is also appended to :data:`RECORDS`, so ``--bench-json`` can
    dump the whole run.
    """
    mean_seconds = benchmark.stats.stats.mean
    throughput = input_events / mean_seconds if mean_seconds > 0 else float("inf")
    benchmark.extra_info["events"] = input_events
    benchmark.extra_info["events_per_sec"] = round(throughput)
    benchmark.extra_info["million_events_per_sec"] = round(throughput / 1e6, 4)
    print(
        f"\n[{label}] {throughput / 1e6:.3f} M events/s "
        f"({input_events} events, {mean_seconds * 1e3:.1f} ms)"
    )
    record_result(
        label,
        events=input_events,
        events_per_sec=throughput,
        extra={"mean_seconds": mean_seconds},
    )
    return throughput


def tilt_native_inputs(streams):
    """Convert event streams to snapshot buffers outside the timed region.

    The paper measures query execution on a dataset already loaded in memory
    in each engine's native format; for TiLT that format is the snapshot
    buffer, so benchmarks convert once before timing (the baselines receive
    their native event batches the same way).
    """
    from repro.core.runtime.ssbuf import ssbuf_from_stream, ssbufs_from_stream

    inputs = {}
    for name, stream in streams.items():
        if stream.is_structured:
            for col, buf in ssbufs_from_stream(stream).items():
                field = col.split(".", 1)[1]
                inputs[f"{name}.{field}"] = buf
        else:
            inputs[name] = ssbuf_from_stream(stream)
    return inputs
