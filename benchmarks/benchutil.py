"""Helpers shared by the benchmark files."""

from __future__ import annotations


def record_throughput(benchmark, label: str, input_events: int) -> float:
    """Attach throughput info to a finished benchmark and print a table row.

    The paper reports throughput as input events processed per second of
    query execution; ``benchmark.stats`` holds the measured execution times.
    """
    mean_seconds = benchmark.stats.stats.mean
    throughput = input_events / mean_seconds if mean_seconds > 0 else float("inf")
    benchmark.extra_info["events"] = input_events
    benchmark.extra_info["events_per_sec"] = round(throughput)
    benchmark.extra_info["million_events_per_sec"] = round(throughput / 1e6, 4)
    print(
        f"\n[{label}] {throughput / 1e6:.3f} M events/s "
        f"({input_events} events, {mean_seconds * 1e3:.1f} ms)"
    )
    return throughput


def tilt_native_inputs(streams):
    """Convert event streams to snapshot buffers outside the timed region.

    The paper measures query execution on a dataset already loaded in memory
    in each engine's native format; for TiLT that format is the snapshot
    buffer, so benchmarks convert once before timing (the baselines receive
    their native event batches the same way).
    """
    from repro.core.runtime.ssbuf import ssbuf_from_stream, ssbufs_from_stream

    inputs = {}
    for name, stream in streams.items():
        if stream.is_structured:
            for col, buf in ssbufs_from_stream(stream).items():
                field = col.split(".", 1)[1]
                inputs[f"{name}.{field}"] = buf
        else:
            inputs[name] = ssbuf_from_stream(stream)
    return inputs
