"""Perf-regression gate: compare a benchmark result file against a baseline.

The benchmark scripts record machine-readable rows (``--json`` /
``--bench-json``; see :mod:`benchutil`).  This script compares a freshly
measured file against a committed baseline and **fails** (exit code 1)
when any shared benchmark's throughput dropped past the tolerance — so a
change that quietly costs 20% of sustained events/sec is caught by CI
instead of discovered three PRs later in a perf trajectory plot.

Rows are matched by ``(name, params)``; a row present in the baseline but
missing from the current run also fails (silently dropping a benchmark
must not read as "no regressions").  Rows only the current file has are
reported but never fail — adding benchmarks is how the baseline grows.

Hardware calibration: machines differ, and a baseline seeded in CI would
otherwise hard-fail on any slower laptop.  Both files carry the
``hardware_score`` of the machine that produced them (a fixed NumPy
kernel timed at import of :func:`benchutil.run_metadata`); the expected
throughput is scaled by the score ratio (clamped, so a bogus score cannot
waive the gate entirely) before the tolerance applies.

Usage::

    python benchmarks/bench_sustained_throughput.py --quick --json current.json
    python benchmarks/check_regression.py benchmarks/results/baseline_sustained.json current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

#: throughput may drop this fraction below the (calibrated) baseline
DEFAULT_TOLERANCE = 0.15

#: the hardware-score ratio is clamped to this band: outside it the two
#: machines are too different for linear scaling to mean anything, and an
#: uncalibratable comparison should stay strict rather than waive itself
CALIBRATION_CLAMP = (0.25, 4.0)

_Key = Tuple[str, str]


def load_results(path: str) -> Tuple[Dict[_Key, dict], dict]:
    """Read a benchutil JSON file: ``({(name, params_key): row}, meta)``."""
    with open(path) as fh:
        doc = json.load(fh)
    rows: Dict[_Key, dict] = {}
    for row in doc.get("results", []):
        key = (row.get("name", "?"), json.dumps(row.get("params", {}), sort_keys=True))
        rows[key] = row
    return rows, doc.get("meta", {})


def calibration_factor(
    baseline_meta: dict,
    current_meta: dict,
    *,
    clamp: Tuple[float, float] = CALIBRATION_CLAMP,
) -> float:
    """Expected current/baseline throughput ratio from the hardware scores.

    1.0 when either file predates the score (no calibration — strict
    comparison); otherwise ``current_score / baseline_score`` clamped to
    ``clamp``.
    """
    base = baseline_meta.get("hardware_score")
    cur = current_meta.get("hardware_score")
    if not base or not cur:
        return 1.0
    ratio = float(cur) / float(base)
    return max(clamp[0], min(clamp[1], ratio))


def compare(
    baseline: Dict[_Key, dict],
    current: Dict[_Key, dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    calibration: float = 1.0,
) -> List[dict]:
    """One finding per baseline row (plus a note per new current-only row).

    A row fails when ``current < baseline * calibration * (1 - tolerance)``
    on ``events_per_sec``; baseline rows without a throughput number are
    informational only.
    """
    if not (0.0 <= tolerance < 1.0):
        raise ValueError("tolerance must be in [0, 1)")
    findings: List[dict] = []
    for key, base_row in sorted(baseline.items()):
        name, params_key = key
        base_eps = base_row.get("events_per_sec")
        finding = {
            "name": name,
            "params": base_row.get("params", {}),
            "baseline_events_per_sec": base_eps,
        }
        cur_row = current.get(key)
        if cur_row is None:
            finding.update(status="missing", detail="benchmark absent from current run")
            findings.append(finding)
            continue
        cur_eps = cur_row.get("events_per_sec")
        finding["current_events_per_sec"] = cur_eps
        if base_eps is None or cur_eps is None:
            finding.update(status="info", detail="no throughput number to compare")
            findings.append(finding)
            continue
        floor = float(base_eps) * calibration * (1.0 - tolerance)
        finding["floor_events_per_sec"] = floor
        finding["ratio"] = float(cur_eps) / (float(base_eps) * calibration)
        if float(cur_eps) < floor:
            finding.update(
                status="fail",
                detail=(
                    f"throughput {cur_eps:,.0f} ev/s below floor {floor:,.0f} "
                    f"(baseline {base_eps:,.0f} × calibration {calibration:.2f} "
                    f"× (1 − {tolerance:.2f}))"
                ),
            )
        else:
            finding.update(status="pass", detail="")
        findings.append(finding)
    for key in sorted(set(current) - set(baseline)):
        findings.append(
            {
                "name": key[0],
                "params": current[key].get("params", {}),
                "status": "new",
                "detail": "not in baseline (informational)",
                "current_events_per_sec": current[key].get("events_per_sec"),
            }
        )
    return findings


def check(
    baseline_path: str,
    current_path: str,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    calibrate: bool = True,
) -> Tuple[bool, List[dict], float]:
    """Load, calibrate and compare; ``(ok, findings, calibration_factor)``."""
    baseline, base_meta = load_results(baseline_path)
    current, cur_meta = load_results(current_path)
    factor = calibration_factor(base_meta, cur_meta) if calibrate else 1.0
    findings = compare(baseline, current, tolerance=tolerance, calibration=factor)
    ok = not any(f["status"] in ("fail", "missing") for f in findings)
    return ok, findings, factor


def _format_finding(f: dict) -> str:
    mark = {"pass": "ok  ", "fail": "FAIL", "missing": "MISS", "new": "new ", "info": "info"}
    line = f"[{mark.get(f['status'], '????')}] {f['name']} {f.get('params', {})}"
    if f.get("ratio") is not None:
        line += f"  {f['ratio'] * 100:.1f}% of calibrated baseline"
    if f.get("detail"):
        line += f"  — {f['detail']}"
    return line


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("baseline", help="committed baseline JSON (benchutil schema)")
    parser.add_argument("current", help="freshly measured JSON to gate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional throughput drop (default %(default)s)",
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="skip hardware-score calibration (strict same-machine compare)",
    )
    args = parser.parse_args(argv)
    ok, findings, factor = check(
        args.baseline,
        args.current,
        tolerance=args.tolerance,
        calibrate=not args.no_calibrate,
    )
    print(f"calibration factor (current/baseline hardware): {factor:.3f}")
    for f in findings:
        print(_format_finding(f))
    failed = [f for f in findings if f["status"] in ("fail", "missing")]
    print(
        f"{len(findings)} finding(s), {len(failed)} failing "
        f"(tolerance {args.tolerance:.0%})"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
