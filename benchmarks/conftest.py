"""Shared fixtures for the benchmark suite.

Run the whole suite with::

    pytest benchmarks/ --benchmark-only -s

Each benchmark prints a one-line row with its throughput in million events
per second, reproducing the rows/series of the corresponding paper table or
figure, and attaches the same numbers to ``benchmark.extra_info`` so they
also appear in the pytest-benchmark JSON/console output.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def benchmark_events() -> int:
    """Default dataset size for the benchmark workloads."""
    return 20_000
