"""Shared fixtures for the benchmark suite.

Run the whole suite with::

    pytest benchmarks/ --benchmark-only -s

Each benchmark prints a one-line row with its throughput in million events
per second, reproducing the rows/series of the corresponding paper table or
figure, and attaches the same numbers to ``benchmark.extra_info`` so they
also appear in the pytest-benchmark JSON/console output.  Pass
``--bench-json PATH`` to additionally dump every collected row as a
machine-readable JSON document (see ``benchutil.write_json``).
"""

from __future__ import annotations

import pytest

import benchutil


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write the machine-readable benchmark records collected by "
        "benchutil (name, params, events/sec, latency percentiles) to this "
        "JSON file at the end of the run",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if path and benchutil.RECORDS:
        benchutil.write_json(path)


@pytest.fixture(scope="session")
def benchmark_events() -> int:
    """Default dataset size for the benchmark workloads."""
    return 20_000
