"""Static analysis of TiLT programs: bounds proofs before any kernel runs.

Runs the ``repro.analysis`` program analyzer over every shipped benchmark
application and prints each report: the bounds-safety verdict (can every
``~stream[t+k]`` / window read be served from the partition margins the
boundary planner will materialize?), hygiene findings (dead definitions,
unused inputs), numeric-domain warnings (unguarded divide / sqrt / log),
and the static cost estimate the scheduler seeds its fair-share EWMA with.

Then demonstrates the refusal path on a deliberately unsafe program: an
intermediate consumed 50 ticks in the past while carrying zero-margin
lineage — structurally valid, accepted by the type checker, but provably
reading outside what any partition will materialize.  The analyzer flags
it (``BS003``) and ``compile_program`` refuses to emit kernels for it.

Run with ``python examples/analyze_query.py``.
"""

from repro import TiltEngine
from repro.analysis import analyze_program
from repro.apps import ALL_APPLICATIONS
from repro.core.ir.nodes import BinOp, Const, TDom, TIndex, TemporalExpr, TiltProgram
from repro.errors import AnalysisError


def main() -> None:
    engine = TiltEngine()

    # -- 1. every shipped application is bounds-proven ------------------ #
    print("=" * 72)
    print("analyzer verdicts for the shipped benchmark applications")
    print("=" * 72)
    total_findings = 0
    for name in sorted(ALL_APPLICATIONS):
        program = ALL_APPLICATIONS[name].program()
        report = engine.analyze(program)
        verdict = "REFUSED" if report.has_errors else "proven safe"
        summary = report.summary()
        total_findings += len(report.findings)
        print(
            f"  {name:<12} {verdict:<12} "
            f"errors={summary['errors']} warnings={summary['warnings']} "
            f"infos={summary['infos']}  proof={report.proof_token()}"
        )
        for finding in report.errors() + report.warnings():
            print(f"      {finding.format()}")
    print(f"\n  {len(ALL_APPLICATIONS)} programs, {total_findings} findings total")

    # -- 2. one report in full ------------------------------------------ #
    print()
    print("=" * 72)
    print("full report for the 'trading' application")
    print("=" * 72)
    print(engine.analyze(ALL_APPLICATIONS["trading"].program()).format())

    # -- 3. the refusal path -------------------------------------------- #
    print()
    print("=" * 72)
    print("an unsafe program: intermediate consumed outside materialization")
    print("=" * 72)
    td = TDom(precision=1.0)
    unsafe = TiltProgram(
        ("x",),
        (
            TemporalExpr("mid", td, Const(5.0)),
            TemporalExpr(
                "out", td, BinOp("+", TIndex("x", 0.0), TIndex("mid", -50.0))
            ),
        ),
        "out",
    )
    report = analyze_program(unsafe)
    print(report.format())
    try:
        # optimize=False: constant propagation would legitimately repair
        # this one — the gate judges the program it will actually lower
        from repro.core.codegen.compiled import compile_program

        compile_program(unsafe, optimize=False)
    except AnalysisError as err:
        print(f"\ncompile_program refused it:\n  {err}")
    else:
        raise SystemExit("expected the analyzer gate to refuse this program")


if __name__ == "__main__":
    main()
