"""Extending TiLT: custom reduction functions and hand-written IR.

Shows the two extension points a downstream user is most likely to need:

1. a user-defined aggregate (the Init/Acc/Result/Deacc template of
   Section 6.1.2) used inside a windowed aggregation — here, the kurtosis of
   a vibration signal;
2. authoring a query directly in TiLT IR with the :class:`IRBuilder`, below
   the event-centric frontend, and compiling it.

Run with ``python examples/custom_operators.py``.
"""

import numpy as np

from repro import IRBuilder, TiltEngine, when
from repro.core.ir import format_program
from repro.datagen import vibration_stream
from repro.windowing import custom_aggregate

# ---------------------------------------------------------------------- #
# 1. a custom aggregate: kurtosis from raw moments
# ---------------------------------------------------------------------- #
kurtosis = custom_aggregate(
    name="kurtosis",
    init=lambda: (0.0, 0.0, 0.0, 0.0, 0.0),
    acc=lambda s, v: (s[0] + 1, s[1] + v, s[2] + v * v, s[3] + v ** 3, s[4] + v ** 4),
    result=lambda s: 0.0 if s[0] < 2 or (s[2] / s[0] - (s[1] / s[0]) ** 2) <= 0 else (
        (s[4] / s[0] - 4 * (s[1] / s[0]) * (s[3] / s[0])
         + 6 * (s[1] / s[0]) ** 2 * (s[2] / s[0]) - 3 * (s[1] / s[0]) ** 4)
        / (s[2] / s[0] - (s[1] / s[0]) ** 2) ** 2
    ),
    vector_eval=lambda vals: float(np.mean((vals - vals.mean()) ** 4) / max(np.var(vals) ** 2, 1e-30)),
)


def main() -> None:
    # 2. write the query directly in TiLT IR
    builder = IRBuilder()
    vib = builder.stream("vibration")
    kurt = builder.define(
        "kurt", vib.window(-0.125, 0.0).reduce(kurtosis), precision=0.125
    )
    builder.define("alerts", when(kurt.at() > 4.0, kurt.at()), precision=0.125)
    program = builder.build(output="alerts")
    print("=== hand-written TiLT IR ===")
    print(format_program(program))

    stream = vibration_stream(80_000, seed=11, frequency_hz=8192.0)
    engine = TiltEngine(workers=4)
    result = engine.run(program, {"vibration": stream})
    alerts = result.to_stream("alerts").events
    print(f"\nprocessed {result.input_events:,} samples at "
          f"{result.throughput/1e6:.2f} M samples/s")
    print(f"{len(alerts)} windows exceeded the kurtosis alert threshold; first three:")
    for event in alerts[:3]:
        print(f"  ({event.start:.3f}s, {event.end:.3f}s]  kurtosis = {event.payload:.2f}")


if __name__ == "__main__":
    main()
