"""Watching a live fleet over HTTP: SLOs, health checks, Prometheus.

Runs a mixed fleet of benchmark applications on a :class:`QueryService`
configured with the two fleet-health knobs this example demonstrates:

* ``slo=...`` — per-tenant service-level objectives (tick latency,
  shedding budget) evaluated with multi-window burn-rate logic; and
* ``telemetry_port=0`` — a zero-dependency HTTP endpoint on an ephemeral
  loopback port serving ``/metrics`` (Prometheus text), ``/healthz``
  (200/503 from the SLO verdict), ``/slo``, ``/tenants`` and ``/trace``.

The script scrapes every route the way an external monitor would (plain
``urllib`` — the endpoint speaks ordinary HTTP), then *breaks* a tenant on
purpose — pushing overlapping events that blow up inside its tick — and
shows ``/healthz`` flip from ``200 healthy`` to ``503 degraded`` while the
rest of the fleet keeps running to byte-identical results.  The serving
layer's error path is routed through ``configure_json_logging``, so the
isolation event lands as one machine-parseable JSON record instead of a
multi-line traceback splat.

Run with ``python examples/fleet_health.py``.
"""

import json
import urllib.error
import urllib.request

from repro.apps import get_application
from repro.core.runtime.engine import TiltEngine
from repro.core.runtime.stream import Event
from repro.datagen.sources import sources_for_streams
from repro.obs import configure_json_logging
from repro.serve import QueryService

EVENTS_PER_TENANT = 4_000
APPS = ["trading", "rsi", "normalize", "ysb", "frauddet", "wsum"]


def get(base: str, route: str):
    """(status, body) of one scrape, treating HTTP errors as responses."""
    try:
        with urllib.request.urlopen(base + route, timeout=5) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def main() -> None:
    # one JSON log record per event on the "repro" logger tree (the tenant
    # isolation below shows up as a single structured line on stderr)
    configure_json_logging("repro")
    engine = TiltEngine(workers=4, trace=True)
    service = QueryService(
        engine,
        policy="fair",
        slo={"tick_p99_seconds": 0.25, "max_shed_ratio": 0.05},
        telemetry_port=0,  # ephemeral loopback port; real deployments pin one
    )

    datasets = {}
    for i, app_name in enumerate(APPS):
        app = get_application(app_name)
        streams = app.streams(EVENTS_PER_TENANT, seed=i)
        name = f"{app_name}-{i}"
        datasets[name] = (app, streams)
        service.submit(
            app.program(),
            name=name,
            sources=sources_for_streams(streams, events_per_poll=1_000),
        )

    base = service.telemetry.url
    print(f"fleet of {len(service.tenants())} tenants, telemetry at {base}\n")

    service.run_until_idle()

    # -- scrape every route like an external monitor would ---------------- #
    for route in ("/", "/healthz", "/slo", "/tenants", "/metrics", "/trace"):
        status, body = get(base, route)
        print(f"GET {route:<9} -> {status}  ({len(body):,} bytes)")
    status, body = get(base, "/healthz")
    print(f"\n/healthz says: {json.loads(body)['status']} (HTTP {status})")

    sample = [
        line
        for line in get(base, "/metrics")[1].decode().splitlines()
        if line.startswith(("repro_ticks_total", "repro_slo", "repro_active_tenants"))
    ]
    print("\na few scraped series:")
    for line in sample:
        print(f"  {line}")

    # -- now break a tenant on purpose ------------------------------------ #
    print("\ninjecting a poisoned tenant (overlapping events) ...")
    service.submit(get_application("trading").program(), name="poisoned")
    # start-ordered but overlapping: passes push-time validation, then
    # raises inside the tick — the service isolates the tenant as FAILED
    service.ingest("poisoned", [Event(0.0, 10.0, 1.0), Event(5.0, 15.0, 2.0)])
    service.run_until_idle()

    status, body = get(base, "/healthz")
    doc = json.loads(body)
    print(
        f"/healthz says: {doc['status']} (HTTP {status}), "
        f"failed tenants: {doc['failed_tenants']}"
    )
    breaches = service.stats().slo.recent_breaches
    for b in breaches:
        print(f"  breach event: tenant={b.tenant} objective={b.objective} ({b.kind})")

    # -- the rest of the fleet was untouched ------------------------------- #
    check = TiltEngine(workers=1)
    clean = 0
    for name, (app, streams) in datasets.items():
        alone = check.run(app.program(), streams)
        assert service.result(name).output == alone.output, name
        clean += 1
    check.close()
    print(f"\n{clean} healthy tenants match their standalone runs byte-for-byte")

    service.close()
    engine.close()
    print(f"telemetry endpoint closed (running={service.telemetry.running})")


if __name__ == "__main__":
    main()
