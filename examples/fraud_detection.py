"""Banking scenario: credit-card fraud detection with the μ + 3σ rule.

Runs the fraud-detection query from the benchmark suite on a synthetic
transaction stream and reports how many of the injected anomalous
transactions were flagged (recall) and how many flags were false alarms.

Run with ``python examples/fraud_detection.py``.
"""

import numpy as np

from repro import TiltEngine
from repro.apps.finance import FRAUD_DETECTION
from repro.datagen import credit_card_stream


def main() -> None:
    stream = credit_card_stream(50_000, seed=3, fraud_fraction=0.004)
    streams = {"transactions": stream}
    injected = int(np.sum(stream.values("is_fraud") > 0))
    print(f"input: {len(stream):,} transactions, {injected} injected anomalies")

    engine = TiltEngine(workers=4)
    result = engine.run(FRAUD_DETECTION.program(), streams)
    flagged = result.to_stream("suspected_fraud").events
    print(f"TiLT flagged {len(flagged)} transactions "
          f"({result.throughput/1e6:.2f} M events/s)")

    # match flags against the injected anomalies by time
    fraud_times = [e.start for e in stream.events if e.field("is_fraud") > 0]
    flagged_starts = np.array([e.start for e in flagged]) if flagged else np.array([])
    caught = sum(
        1 for t in fraud_times
        if len(flagged_starts) and np.min(np.abs(flagged_starts - t)) < 1e-6
    )
    print(f"recall on injected anomalies: {caught}/{injected}")
    print(f"other flagged transactions (legitimate but unusually large): "
          f"{len(flagged) - caught}")


if __name__ == "__main__":
    main()
