"""Healthcare scenario: QRS (heartbeat) detection on an ECG stream.

Runs the Pan-Tompkins pipeline (band-pass → derivative → squaring →
moving-window integration → threshold) from the benchmark suite on a
synthetic ECG waveform, estimates the heart rate from the detections, and
cross-checks the TiLT result against the Trill-like baseline engine.

Run with ``python examples/healthcare_ecg.py``.
"""

from repro import TiltEngine
from repro.apps.healthcare import ECG_FREQUENCY_HZ, PAN_TOMPKINS
from repro.spe import TrillEngine


def main() -> None:
    seconds = 60
    num_samples = int(ECG_FREQUENCY_HZ * seconds)
    streams = PAN_TOMPKINS.streams(num_samples, seed=42)
    print(f"ECG input: {num_samples} samples at {ECG_FREQUENCY_HZ:.0f} Hz ({seconds} s)")

    # TiLT execution
    engine = TiltEngine(workers=4)
    result = engine.run(PAN_TOMPKINS.program(), streams)
    detections = result.to_stream("qrs").events
    print(f"TiLT: {result.throughput/1e6:.2f} M samples/s, {len(detections)} detection events")

    # group contiguous detections into beats and estimate the heart rate
    beats = 1
    for prev, cur in zip(detections, detections[1:]):
        if cur.start - prev.end > 0.3:
            beats += 1
    print(f"estimated heart rate: {beats / (seconds / 60.0):.0f} bpm")

    # the same query, same data, on the event-centric interpreted baseline
    trill_out = PAN_TOMPKINS.run_baseline(TrillEngine(batch_size=4096), streams)
    print(f"Trill-like baseline produced {len(trill_out)} detection events "
          "(same result, interpreted event-at-a-time)")


if __name__ == "__main__":
    main()
