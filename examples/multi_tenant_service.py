"""Multi-tenant serving: ~20 heterogeneous queries on one shared engine.

`examples/streaming_session.py` drives a single continuous query from a
hand-written loop.  This example runs a whole fleet instead: every
application in the benchmark suite — trading, RSI, signal processing, ECG,
vibration, fraud detection, YSB and the primitive operators — is submitted
as a tenant of one :class:`~repro.serve.QueryService`, which multiplexes
their micro-batch ticks over a single 4-worker engine under the deficit
fair-share scheduler.  One extra tenant is *push-fed* through the service's
admission-controlled ingest path while the rest replay their synthetic
datasets.

Run with ``python examples/multi_tenant_service.py``.
"""

from repro.apps import ALL_APPLICATIONS, get_application
from repro.datagen.sources import sources_for_streams
from repro.serve import QueryService

EVENTS_PER_TENANT = 4_000


def main() -> None:
    service = QueryService(workers=4, policy="fair", max_tenants=32)

    # one pull-fed tenant per benchmark application (plus repeats of the
    # light ones to reach ~20), weights favouring the trading queries
    app_names = list(ALL_APPLICATIONS) + ["trading", "rsi", "normalize", "wsum", "ysb", "select"]
    programs = {}
    for i, app_name in enumerate(app_names):
        app = get_application(app_name)
        programs.setdefault(app_name, app.program())
        service.submit(
            programs[app_name],
            name=f"{app_name}-{i}",
            sources=sources_for_streams(
                app.streams(EVENTS_PER_TENANT, seed=i), events_per_poll=800
            ),
            weight=2.0 if app_name in ("trading", "rsi") else 1.0,
            retain_output=False,
        )

    # ... and one push-fed tenant, ingesting through admission control
    trading = get_application("trading")
    service.submit(programs["trading"], name="pushed-trading", deadline=0.5)
    feed = trading.streams(EVENTS_PER_TENANT, seed=99)["stock"].events

    print(f"serving {len(service.tenants())} tenants on 4 shared workers\n")
    pushed = 0
    round_no = 0
    while service.active_tenants():
        if pushed < len(feed):
            service.ingest("pushed-trading", feed[pushed : pushed + 400])
            pushed += 400
            if pushed >= len(feed):
                service.close_input("pushed-trading")
        ran = service.run_until_idle(max_ticks=40)
        round_no += 1
        if round_no % 4 == 0 or ran == 0:
            print(f"round {round_no:>3}: {service.stats().format()}")

    stats = service.stats()
    print(f"\nall tenants drained: {stats.format()}")
    print(f"\n{'tenant':>24} {'ev/s':>12} {'ticks':>6} {'tick p99 (ms)':>14}")
    for name, row in sorted(stats.tenants.items()):
        print(
            f"{name:>24} {row['events_per_second']:>12,.0f} "
            f"{int(row['ticks_scheduled']):>6d} {row['tick_latency_p99'] * 1e3:>14.2f}"
        )
    service.close()


if __name__ == "__main__":
    main()
