"""Observability end to end: a traced multi-tenant fleet, inspected.

Runs a handful of benchmark applications as tenants of a
:class:`~repro.serve.QueryService` on a *tracing* engine, then walks every
exporter the observability layer offers:

* the span tree of a recent tick, printed stage by stage (session tick →
  ingest/emit → executor dispatch → kernel partitions);
* the flight recorder's slow-tick pins (this example sets an aggressive
  ``slow_tick_threshold`` so some ticks trip it);
* a Chrome trace-event JSON dump loadable in ``chrome://tracing`` or
  Perfetto;
* the unified metrics registry, as Prometheus exposition text and as a
  JSON snapshot.

Run with ``python examples/observability.py``.  Artifacts land in
``results/`` (``observability_trace.json``, ``observability_metrics.json``).
"""

import json
import os

from repro.apps import get_application
from repro.core.runtime.engine import TiltEngine
from repro.datagen.sources import sources_for_streams
from repro.obs import build_span_trees
from repro.serve import QueryService

EVENTS_PER_TENANT = 6_000
APPS = ["trading", "rsi", "normalize", "ysb"]
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def main() -> None:
    engine = TiltEngine(workers=4, trace=True)
    service = QueryService(engine, policy="fair", slow_tick_threshold=0.002)

    for i, app_name in enumerate(APPS):
        app = get_application(app_name)
        service.submit(
            app.program(),
            name=f"{app_name}-{i}",
            sources=sources_for_streams(
                app.streams(EVENTS_PER_TENANT, seed=i), events_per_poll=1_000
            ),
            retain_output=False,
        )

    print(f"serving {len(service.tenants())} traced tenants\n")
    service.run_until_idle()
    stats = service.stats()

    # -- span tree of a recent tick -------------------------------------- #
    tenant = next(iter(stats.tenants))
    recent = service.recorder.recent(tenant)
    print(f"span tree of {tenant!r}'s most recent tick:")
    print(recent[-1].format(indent=1))

    # -- slow-tick pins --------------------------------------------------- #
    flight = stats.flight
    print(f"\nflight recorder: {len(flight['pinned_slow_ticks'])} pinned slow ticks "
          f"(threshold {flight['slow_tick_threshold'] * 1e3:.1f} ms)")
    for pin in flight["pinned_slow_ticks"][:3]:
        print(f"  tenant={pin['tenant']} tick={pin['tick_index']} "
              f"{pin['duration'] * 1e3:.2f} ms kernels={list(pin['context'].get('kernels', {}))}")

    # -- artifacts: Chrome trace + metrics snapshot ----------------------- #
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trace_path = os.path.join(RESULTS_DIR, "observability_trace.json")
    with open(trace_path, "w") as fh:
        json.dump(service.recorder.to_chrome_trace(), fh)
    metrics_path = os.path.join(RESULTS_DIR, "observability_metrics.json")
    with open(metrics_path, "w") as fh:
        fh.write(engine.registry.to_json_str(indent=2))

    trees = build_span_trees([])  # tracer already drained into the recorder
    assert trees == []
    print(f"\nwrote {os.path.relpath(trace_path)} (open in chrome://tracing)")
    print(f"wrote {os.path.relpath(metrics_path)}")

    # -- Prometheus text --------------------------------------------------- #
    text = engine.registry.to_prometheus()
    headline = [
        line
        for line in text.splitlines()
        if line.startswith(("repro_ticks_total", "repro_ingested_events_total",
                            "repro_kernel_seconds_total", "repro_compile_cache"))
    ]
    print("\nregistry headline samples:")
    for line in headline:
        print(f"  {line}")

    print(f"\nfleet: {stats.format()}")
    service.close()


if __name__ == "__main__":
    main()
