"""Quickstart: the paper's trend-analysis query end to end.

Builds the stock trend query of Figure 2/3 with the event-centric frontend,
shows the TiLT IR before and after optimization (operator fusion across the
window/join pipeline breakers), resolves its boundary conditions, and runs it
in parallel on a synthetic stock stream.

Run with ``python examples/quickstart.py``.
"""

from repro import LEFT, PAYLOAD as E, RIGHT, TiltEngine, compile_program, source
from repro.core.ir import format_program
from repro.core.optimizer import optimize
from repro.datagen import stock_price_stream
from repro.windowing import MEAN


def main() -> None:
    # 1. write the query with the familiar event-centric operators
    stock = source("stock")
    short_avg = stock.window(10, 1).aggregate(MEAN).named("avg_short")
    long_avg = stock.window(20, 1).aggregate(MEAN).named("avg_long")
    uptrend = short_avg.join(long_avg, LEFT - RIGHT).where(E > 0).named("uptrend")

    # 2. translate to TiLT IR (Figure 3a) and inspect it
    program = uptrend.to_program()
    print("=== TiLT IR (translated) ===")
    print(format_program(program))

    # 3. the optimizer fuses the whole query into one temporal expression (Figure 3c)
    fused = optimize(program)
    print("\n=== TiLT IR (after operator fusion) ===")
    print(format_program(fused))

    # 4. compilation resolves boundary conditions (Figure 3b) and generates kernels
    compiled = compile_program(program)
    print("\nboundary conditions:", compiled.boundary.describe())
    print("kernels generated:", len(compiled.kernels), "(fused)" if compiled.fused else "")

    # 5. run in parallel on synthetic stock ticks
    engine = TiltEngine(workers=4)
    streams = {"stock": stock_price_stream(100_000, seed=7)}
    result = engine.run(compiled, streams)
    print(f"\nprocessed {result.input_events:,} events in {result.elapsed_seconds*1e3:.1f} ms "
          f"({result.throughput/1e6:.2f} M events/s, {result.num_partitions} partitions)")

    uptrends = result.to_stream("uptrend")
    print(f"detected {len(uptrends)} upward-trend intervals; first three:")
    for event in uptrends.events[:3]:
        print(f"  ({event.start:.0f}s, {event.end:.0f}s]  short-long gap = {event.payload:.3f}")


if __name__ == "__main__":
    main()
