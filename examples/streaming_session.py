"""Continuous streaming: the trend query over an unbounded stock feed.

Where ``examples/quickstart.py`` runs the trend-analysis query once over a
finite buffer, this example opens a :class:`~repro.StreamingSession`: the
query is compiled once, then advanced in micro-batch ticks over an unbounded
synthetic tick stream.  Each tick ingests newly arrived events, re-plans only
the new output interval behind the watermark, and emits an incremental
output delta — while the live metrics track rolling throughput and per-tick
latency percentiles.

Run with ``python examples/streaming_session.py``.
"""

from repro import LEFT, PAYLOAD as E, RIGHT, TiltEngine, source
from repro.datagen import GeneratorSource, stock_price_stream
from repro.windowing import MEAN


def main() -> None:
    # the paper's trend query: short moving average above long moving average
    stock = source("stock")
    trend = (
        stock.window(10, 1).aggregate(MEAN)
        .join(stock.window(20, 1).aggregate(MEAN), LEFT - RIGHT)
        .where(E > 0)
        .named("uptrend")
    )

    # an unbounded source: deterministic 20k-event chunks stitched end to
    # end, released 5k events per tick (the simulated arrival rate)
    feed = GeneratorSource(
        lambda i: stock_price_stream(20_000, seed=i),
        name="stock",
        events_per_poll=5_000,
    )

    engine = TiltEngine(workers=4)
    session = engine.open_session(trend.to_program(), [feed], retain_output=False)
    print("boundary:", session.boundary.describe())
    print(f"carry-over per tick: lookback={session.boundary.max_lookback:g}s of input\n")

    for _ in range(20):
        tick = session.tick()
        if tick.index % 5 == 4:
            print(
                f"tick {tick.index:>3}: watermark={tick.watermark:>9,.0f}s  "
                f"+{len(tick.delta)} output snapshots  |  {session.metrics.format()}"
            )

    final = session.close(drain=False)
    print(
        f"\nclosed after {session.ticks} ticks; final flush emitted "
        f"{len(final.delta)} snapshots through t={final.watermark:,.0f}s"
    )
    print(f"retained carry-over at close: {session.retained_snapshots()} input snapshots")
    engine.close()


if __name__ == "__main__":
    main()
