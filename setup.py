"""Packaging metadata for the TiLT reproduction.

The single source of truth for the version is ``repro.__version__``
(``src/repro/__init__.py``); it is read textually here so ``setup.py`` works
before the package's dependencies are installed.
"""

import os
import re

from setuptools import find_packages, setup

HERE = os.path.abspath(os.path.dirname(__file__))


def read(*parts: str) -> str:
    with open(os.path.join(HERE, *parts), encoding="utf-8") as fh:
        return fh.read()


def find_version() -> str:
    match = re.search(
        r'^__version__\s*=\s*["\']([^"\']+)["\']',
        read("src", "repro", "__init__.py"),
        re.MULTILINE,
    )
    if not match:
        raise RuntimeError("unable to find repro.__version__")
    return match.group(1)


setup(
    name="tilt-repro",
    version=find_version(),
    description=(
        "Python reproduction of TiLT (ASPLOS 2023): a time-centric IR, "
        "optimizer and parallel runtime for stream queries, with a "
        "continuous micro-batch streaming session layer"
    ),
    long_description=read("README.md"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    install_requires=["numpy>=1.20"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
    ],
)
