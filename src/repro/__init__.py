"""repro — a Python reproduction of TiLT (ASPLOS 2023).

TiLT is a time-centric intermediate representation, optimizer and parallel
runtime for stream queries.  This package provides:

* ``repro.core`` — the TiLT IR, the event-centric frontend, boundary
  resolution, the optimizer (operator fusion across pipeline breakers), the
  code-generating and interpreted backends, and the partition-parallel
  engine;
* ``repro.windowing`` — sliding-window aggregation algorithms and the
  Init/Acc/Result/Deacc aggregate template;
* ``repro.spe`` — event-centric baseline engines modelled after Trill,
  StreamBox, Grizzly and LightSaber;
* ``repro.datagen`` — synthetic data generators standing in for the paper's
  datasets;
* ``repro.apps`` — the Yahoo Streaming Benchmark and the eight real-world
  applications of the paper's evaluation;
* ``repro.metrics`` — throughput and latency-bounded-throughput harnesses,
  plus live session and fleet metrics;
* ``repro.serve`` — the multi-tenant streaming query service: tick
  scheduling (round-robin / deficit fair-share), admission control and
  fleet-level observability over one shared engine;
* ``repro.obs`` — the cross-cutting observability layer: span tracing
  (``TiltEngine(trace=True)`` / ``REPRO_TRACE=1``), the unified
  :class:`~repro.obs.MetricsRegistry` with Prometheus/JSON exporters,
  Chrome trace-event export and the per-tenant flight recorder.

Quickstart::

    from repro import TiltEngine, source, PAYLOAD as E, LEFT, RIGHT
    from repro.windowing import MEAN
    from repro.datagen import stock_price_stream

    stock = source("stock")
    trend = (stock.window(10, 1).aggregate(MEAN)
                  .join(stock.window(20, 1).aggregate(MEAN), LEFT - RIGHT)
                  .where(E > 0))
    engine = TiltEngine(workers=4)
    result = engine.run(trend.to_program(), {"stock": stock_price_stream(10_000)})
    print(result.throughput, "events/sec")
"""

from .core import (
    LEFT,
    PAYLOAD,
    RIGHT,
    CompiledQuery,
    Event,
    EventStream,
    IRBuilder,
    Interpreter,
    QueryResult,
    SSBuf,
    StreamingSession,
    TickResult,
    TiltEngine,
    TiltProgram,
    compile_program,
    optimize,
    resolve_boundaries,
    source,
    when,
)
from .analysis import ProgramReport, analyze_program
from .errors import TiltError
from .obs import MetricsRegistry, Tracer
from .serve import QueryService, ServiceStats

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TiltError",
    "CompiledQuery",
    "Interpreter",
    "compile_program",
    "source",
    "PAYLOAD",
    "LEFT",
    "RIGHT",
    "IRBuilder",
    "TiltProgram",
    "when",
    "resolve_boundaries",
    "optimize",
    "Event",
    "EventStream",
    "SSBuf",
    "QueryResult",
    "TiltEngine",
    "StreamingSession",
    "TickResult",
    "QueryService",
    "ServiceStats",
    "MetricsRegistry",
    "Tracer",
    "ProgramReport",
    "analyze_program",
]
