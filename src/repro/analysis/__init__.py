"""Static analysis over TiLT programs and over the codebase itself.

Two prongs (see ``docs/architecture.md`` §10):

* :mod:`repro.analysis.program` — a diagnostics pass over validated
  :class:`~repro.core.ir.nodes.TiltProgram` objects producing a structured
  :class:`~repro.analysis.findings.ProgramReport`.  Its centerpiece is the
  *bounds-safety proof*: an independent re-composition of every
  ``TWindow``/``TIndex`` extent that is cross-checked against the resolved
  boundary plan and the margins the partitioner will actually materialize,
  so both codegen tiers compile only access-proven kernels.
* :mod:`repro.analysis.lint` — an AST-based checker suite encoding repo
  invariants (no blocking calls under a held lock, no shared-state mutation
  from generated-kernel helpers, Prometheus metric-name discipline), run
  over ``src/repro`` in CI via ``python -m repro.analysis --self``.
"""

from __future__ import annotations

from .findings import Finding, ProgramReport, Severity
from .program import analyze_program, check_boundary, program_digest

__all__ = [
    "Finding",
    "ProgramReport",
    "Severity",
    "analyze_program",
    "check_boundary",
    "program_digest",
]
