"""CLI for the static analysis layer — the CI lint/verification gate.

Usage::

    python -m repro.analysis PATH [PATH ...]   # lint specific files/dirs
    python -m repro.analysis --self            # lint the repro package itself
    python -m repro.analysis --apps            # analyze all benchmark programs

Exit status is 0 when no error-severity finding (or lint violation) was
produced, 1 otherwise — so each mode drops straight into CI as a hard gate.
``--apps`` additionally proves the bounds-safety obligation for every
program in :data:`repro.apps.ALL_APPLICATIONS`, in both the raw and the
optimized (fused) form the compiler actually lowers.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from .lint import lint_paths


def _run_lint(paths: List[Path]) -> int:
    violations = lint_paths(paths)
    for v in violations:
        print(v.format())
    n_files = sum(1 for p in paths for _ in ([p] if p.is_file() else p.rglob("*.py")))
    print(f"lint: {len(violations)} violation(s) across {n_files} file(s)")
    return 1 if violations else 0


def _run_apps(verbose: bool) -> int:
    # imported lazily: --self/path lint must not require numpy
    from ..apps import ALL_APPLICATIONS
    from ..core.optimizer.passes import default_pass_manager
    from ..core.ir.validation import validate_program
    from .program import analyze_program

    failures = 0
    for name, app in ALL_APPLICATIONS.items():
        program = app.program()
        validate_program(program)
        optimized = default_pass_manager(enable_fusion=True).run(program)
        for label, variant in (("raw", program), ("optimized", optimized)):
            report = analyze_program(variant)
            status = "FAIL" if report.has_errors else "ok"
            summary = report.summary()
            print(
                f"{name:>12s} [{label:9s}] {status}: "
                f"{summary['errors']} error(s), {summary['warnings']} warning(s)"
            )
            if verbose or report.has_errors:
                for finding in report.findings:
                    print("    " + finding.format())
            if report.has_errors:
                failures += 1
    print(
        f"analyzer: {len(ALL_APPLICATIONS)} program(s), "
        f"{failures} variant(s) with errors"
    )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Codebase lint and TiLT program analyzer (CI gate).",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories to lint")
    parser.add_argument(
        "--self",
        action="store_true",
        dest="lint_self",
        help="lint the installed repro package source tree",
    )
    parser.add_argument(
        "--apps",
        action="store_true",
        help="run the program analyzer over every repro.apps program",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="print full reports with --apps"
    )
    args = parser.parse_args(argv)

    if not (args.paths or args.lint_self or args.apps):
        parser.error("nothing to do: pass paths, --self, or --apps")

    status = 0
    paths = list(args.paths)
    if args.lint_self:
        paths.append(Path(__file__).resolve().parent.parent)
    if paths:
        status |= _run_lint(paths)
    if args.apps:
        status |= _run_apps(args.verbose)
    return status


if __name__ == "__main__":
    sys.exit(main())
