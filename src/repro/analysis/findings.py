"""Structured diagnostics: findings, severities, and program reports.

Every diagnostic the program analyzer emits is a :class:`Finding` with a
*stable code* (``BS003``, ``DOM001``, ...) so tests, CI gates and the
telemetry ``/analyze`` route can match on identity rather than message
text.  A :class:`ProgramReport` aggregates the findings of one program
together with the program digest the analyzer cached them under.

Severity semantics
------------------
``error``
    The program violates a safety property the runtime relies on
    (uncovered windowed access, unbounded extent).  ``compile_program``
    refuses to lower such a program; the native tier additionally refuses
    any spec that does not carry the resulting bounds proof.
``warning``
    Legal but suspicious (dead definition, unguarded NaN-producing site).
    Compilation proceeds.
``info``
    Neutral facts surfaced for other subsystems (per-kernel static cost
    estimates seeding the scheduler's cost EWMA).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(str, enum.Enum):
    """Severity of a finding; ``str``-valued so it JSON-serializes as-is."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a stable code, a severity, and where it applies.

    ``site`` names the temporal expression (or input stream) the finding
    anchors to, empty for whole-program findings.  ``data`` carries
    machine-readable details (offsets, margins, cost estimates) for
    programmatic consumers; the human-readable ``message`` embeds the same
    numbers.
    """

    code: str
    severity: Severity
    message: str
    site: str = ""
    data: Dict[str, object] = field(default_factory=dict, compare=False, hash=False)

    def format(self) -> str:
        where = f" [~{self.site}]" if self.site else ""
        return f"{self.code} {self.severity.value}{where}: {self.message}"


@dataclass
class ProgramReport:
    """All findings of one analyzed program, plus its identifying digest."""

    digest: str
    findings: List[Finding] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.INFO]

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.code == code]

    def codes(self) -> List[str]:
        """Distinct finding codes, in first-occurrence order."""
        seen: Dict[str, None] = {}
        for f in self.findings:
            seen.setdefault(f.code)
        return list(seen)

    # ------------------------------------------------------------------ #
    def proof_token(self) -> Optional[str]:
        """Certificate prefix for bounds-proven kernel specs.

        ``None`` while any error finding stands — a program that failed its
        bounds-safety check has no proof, and the native tier will refuse
        specs without one.
        """
        if self.has_errors:
            return None
        return f"bounds-proof:{self.digest[:16]}"

    def summary(self) -> Dict[str, object]:
        """Compact JSON-friendly rollup for telemetry and flight contexts."""
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return {
            "digest": self.digest[:16],
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "infos": len(self.infos()),
            "codes": counts,
        }

    def to_dict(self) -> Dict[str, object]:
        """Full JSON document (the ``/analyze`` telemetry route payload)."""
        return {
            "digest": self.digest,
            "summary": self.summary(),
            "findings": [
                {
                    "code": f.code,
                    "severity": f.severity.value,
                    "site": f.site,
                    "message": f.message,
                    "data": dict(f.data),
                }
                for f in self.findings
            ],
        }

    def format(self) -> str:
        """Multi-line human-readable report."""
        s = self.summary()
        head = (
            f"program {self.digest[:16]}: "
            f"{s['errors']} error(s), {s['warnings']} warning(s), {s['infos']} info"
        )
        lines = [head]
        lines.extend("  " + f.format() for f in self.findings)
        return "\n".join(lines)
