"""AST-based codebase lint encoding this repo's hard-learned invariants.

Each checker exists because a production-shaped bug of its class was fixed
by hand in an earlier PR and the discipline was, until now, enforced only
by memory:

``LNT101`` — blocking call while a ``Lock``/``RLock`` is held
    Calling ``queue.put``/``get`` with a timeout, ``time.sleep``,
    ``Thread.join``, ``compile``/``exec``/``open``, socket or subprocess
    operations inside a ``with <lock>:`` block serializes the fleet behind
    one tenant (the serving layer's "never block under the service lock"
    rule).  ``lock.acquire``/``cv.wait`` on the *held* object itself is
    exempt (that is what conditions are for).
``LNT102`` — mutation of module-level shared state from generated-kernel
    helper modules
    ``runtime_support.py`` / ``incremental.py`` objects are shared by every
    compiled kernel across every session and thread; their functions must
    stay re-entrant (``global`` rebinding or mutating a module-level
    container is a cross-tenant race).
``LNT103`` — Prometheus metric-name discipline
    Counter names end in ``_total``; gauge/histogram names never do; all
    names are ``snake_case`` (the PR 8 exporter contract — a scraper-facing
    API that silently breaks dashboards when drifted).

A violation line can be suppressed explicitly with a trailing
``# lint: allow(LNT101)`` comment; the suppression is itself visible in
review, which is the point.

``python -m repro.analysis <paths>`` runs these checkers; ``--self`` runs
them over the installed ``repro`` package (the CI gate).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

__all__ = ["LintViolation", "lint_file", "lint_paths", "lint_source"]

#: modules whose functions are helpers for *generated* kernels (shared by
#: every compiled kernel in the process) — the LNT102 re-entrancy scope
KERNEL_HELPER_MODULES = (
    "core/codegen/runtime_support.py",
    "core/codegen/incremental.py",
)

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([A-Z0-9,\s]+)\)")
_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: bare-name calls that perform I/O or heavy compilation
_BLOCKING_BUILTINS = {"open", "compile", "exec", "input", "breakpoint"}
#: attribute calls that block unconditionally
_BLOCKING_ATTRS = {"sleep", "recv", "send", "sendall", "connect", "accept"}
#: attribute calls that block when aimed at a queue/socket-ish object or
#: carry a timeout/block keyword
_QUEUE_ATTRS = {"get", "put"}
_SUBPROCESS_ATTRS = {"run", "call", "check_call", "check_output", "Popen"}


@dataclass(frozen=True)
class LintViolation:
    """One finding of the codebase lint: where, which rule, and why."""

    path: str
    line: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _terminal_name(expr: ast.expr) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain (else None)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _is_lock_expr(expr: ast.expr) -> bool:
    name = _terminal_name(expr)
    if name is None:
        return False
    lowered = name.lower()
    return "lock" in lowered or "mutex" in lowered


def _expr_key(expr: ast.expr) -> str:
    """Structural identity of an expression (for 'same object' tests)."""
    return ast.dump(expr)


def _base_name(expr: ast.expr) -> Optional[str]:
    """The leftmost identifier of a Name/Attribute/Subscript chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


# ---------------------------------------------------------------------- #
# LNT101: blocking calls under a held lock
# ---------------------------------------------------------------------- #
class _LockDiscipline(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: List[LintViolation] = []
        self._held: List[str] = []  # _expr_key of each held lock expr

    # -- scope resets: nested defs do not execute under the lock --------- #
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        saved, self._held = self._held, []
        self.generic_visit(node)
        self._held = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # noqa: N815
    visit_Lambda = visit_FunctionDef  # noqa: N815

    # -- lock tracking --------------------------------------------------- #
    def _visit_with(self, node) -> None:
        acquired: List[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            if _is_lock_expr(item.context_expr):
                acquired.append(_expr_key(item.context_expr))
        self._held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            del self._held[-len(acquired):]

    visit_With = _visit_with  # noqa: N815
    visit_AsyncWith = _visit_with  # noqa: N815

    # -- call inspection ------------------------------------------------- #
    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        if self._held:
            reason = self._blocking_reason(node)
            if reason is not None:
                self.violations.append(
                    LintViolation(
                        path=self.path,
                        line=node.lineno,
                        code="LNT101",
                        message=f"{reason} while a lock is held",
                    )
                )
        self.generic_visit(node)

    def _blocking_reason(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_BUILTINS:
                return f"call to blocking builtin {func.id}()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        value = func.value
        # operations on the held object itself are the lock's own protocol
        if _expr_key(value) in self._held:
            return None
        if attr in _BLOCKING_ATTRS:
            return f"call to blocking .{attr}()"
        if attr in ("wait", "acquire") and _is_lock_expr(value):
            return f"call to .{attr}() on another lock (lock-ordering hazard)"
        if attr == "join":
            # discriminate Thread.join() from str.join(iterable): thread
            # joins take no argument or a numeric/None timeout
            timeout_kw = any(kw.arg in ("timeout", None) for kw in node.keywords)
            numeric_arg = (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, (int, float, type(None)))
            )
            if not node.args and not node.keywords or timeout_kw or numeric_arg:
                if not isinstance(value, ast.Constant):
                    return "call to blocking .join()"
            return None
        if attr in _QUEUE_ATTRS:
            base = _terminal_name(value) or ""
            queueish = "queue" in base.lower() or base.lower().endswith("_q")
            has_blocking_kw = any(
                kw.arg in ("timeout", "block") for kw in node.keywords
            )
            if queueish or has_blocking_kw:
                return f"call to queue .{attr}()"
            return None
        if attr in _SUBPROCESS_ATTRS and isinstance(value, ast.Name):
            if value.id == "subprocess":
                return f"call to subprocess.{attr}()"
        return None


# ---------------------------------------------------------------------- #
# LNT102: shared-state mutation in generated-kernel helper modules
# ---------------------------------------------------------------------- #
class _SharedStateDiscipline(ast.NodeVisitor):
    _MUTATORS = {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "clear", "remove", "discard",
    }

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.violations: List[LintViolation] = []
        self._module_state = self._collect_module_state(tree)
        self._depth = 0  # function nesting depth

    @staticmethod
    def _collect_module_state(tree: ast.Module) -> set:
        names = set()
        for stmt in tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            for t in targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
        return names

    def _flag(self, node: ast.AST, what: str) -> None:
        self.violations.append(
            LintViolation(
                path=self.path,
                line=node.lineno,
                code="LNT102",
                message=(
                    f"{what} in a generated-kernel helper module; these "
                    "functions are shared by every compiled kernel and must "
                    "stay re-entrant"
                ),
            )
        )

    def visit_FunctionDef(self, node) -> None:  # noqa: N802
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # noqa: N815

    def visit_Global(self, node: ast.Global) -> None:  # noqa: N802
        if self._depth:
            self._flag(node, f"'global {', '.join(node.names)}' rebinding")

    def _check_store(self, target: ast.expr, node: ast.AST) -> None:
        if not self._depth:
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = _base_name(target)
            if base in self._module_state:
                self._flag(node, f"mutation of module-level {base!r}")

    def visit_Assign(self, node: ast.Assign) -> None:  # noqa: N802
        for t in node.targets:
            self._check_store(t, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:  # noqa: N802
        self._check_store(node.target, node)
        if self._depth and isinstance(node.target, ast.Name):
            if node.target.id in self._module_state:
                self._flag(node, f"augmented rebinding of module-level {node.target.id!r}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        if self._depth and isinstance(node.func, ast.Attribute):
            if node.func.attr in self._MUTATORS and isinstance(node.func.value, ast.Name):
                if node.func.value.id in self._module_state:
                    self._flag(
                        node,
                        f"call to {node.func.value.id}.{node.func.attr}() "
                        f"mutating module-level state",
                    )
        self.generic_visit(node)


# ---------------------------------------------------------------------- #
# LNT103: Prometheus metric-name discipline
# ---------------------------------------------------------------------- #
class _MetricNameDiscipline(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: List[LintViolation] = []

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("counter", "gauge", "histogram"):
            if node.args and isinstance(node.args[0], ast.Constant):
                name = node.args[0].value
                if isinstance(name, str):
                    self._check(func.attr, name, node)
        self.generic_visit(node)

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            LintViolation(path=self.path, line=node.lineno, code="LNT103", message=message)
        )

    def _check(self, kind: str, name: str, node: ast.AST) -> None:
        if not _METRIC_NAME_RE.match(name):
            self._flag(node, f"metric name {name!r} is not snake_case")
            return
        if kind == "counter" and not name.endswith("_total"):
            self._flag(node, f"counter {name!r} must end in '_total'")
        elif kind in ("gauge", "histogram") and name.endswith("_total"):
            self._flag(node, f"{kind} {name!r} must not end in '_total'")


# ---------------------------------------------------------------------- #
# driver
# ---------------------------------------------------------------------- #
def lint_source(source: str, path: str = "<string>") -> List[LintViolation]:
    """Run every checker over one file's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintViolation(
                path=path,
                line=exc.lineno or 1,
                code="LNT000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    checkers: List[ast.NodeVisitor] = [
        _LockDiscipline(path),
        _MetricNameDiscipline(path),
    ]
    normalized = path.replace("\\", "/")
    if any(normalized.endswith(helper) for helper in KERNEL_HELPER_MODULES):
        checkers.append(_SharedStateDiscipline(path, tree))
    violations: List[LintViolation] = []
    for checker in checkers:
        checker.visit(tree)
        violations.extend(checker.violations)

    # apply `# lint: allow(CODE)` suppressions
    lines = source.splitlines()
    kept: List[LintViolation] = []
    for v in violations:
        line_text = lines[v.line - 1] if 0 < v.line <= len(lines) else ""
        m = _ALLOW_RE.search(line_text)
        allowed = set()
        if m:
            allowed = {c.strip() for c in m.group(1).split(",")}
        if v.code not in allowed:
            kept.append(v)
    kept.sort(key=lambda v: (v.path, v.line, v.code))
    return kept


def lint_file(path: Path) -> List[LintViolation]:
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable[Path]) -> List[LintViolation]:
    """Lint every ``.py`` file under the given files/directories."""
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    violations: List[LintViolation] = []
    for f in files:
        violations.extend(lint_file(f))
    return violations
