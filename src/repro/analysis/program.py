"""The TiLT program analyzer: bounds-safety proof + diagnostics.

``analyze_program`` runs a battery of checks over a *validated* program and
returns a :class:`~repro.analysis.findings.ProgramReport`.  The checks, by
finding code:

Bounds safety (the proof obligation of the margin contract)
    * ``BS001`` (error) — an input stream has an unbounded composed extent;
      the query cannot be partitioned at all.
    * ``BS002`` (error) — the resolved boundary plan's margins (and the
      concrete input interval :meth:`BoundarySpec.input_interval` hands the
      partitioner) do not cover an input's composed access extent.
    * ``BS003`` (error) — an intermediate (materialized) expression is
      *consumed* outside the interval ``CompiledQuery.run`` materializes it
      over (``(Ts - max_lookback, Te + max_lookahead]``); the runtime would
      silently read φ where a value was expected.
    * ``BS004`` (warning) — an expression's time-domain precision does not
      divide the partition alignment grid; partition edges may land between
      its output points.

Hygiene
    * ``DD001`` (warning) — dead definition: a temporal expression not
      reachable from the output (it still costs a kernel evaluation).
    * ``DD002`` (warning) — an input stream never referenced.

Domain analysis
    * ``DOM001``/``DOM002``/``DOM003`` (warning) — an unguarded ``/``/``%``,
      ``sqrt``, or ``log`` whose operand is not provably in-domain and whose
      result is not observed through ``IsValid``/``Coalesce``.  The NumPy
      lowering masks these lanes to φ (see ``repro.core.ops``), so the
      symptom is silently missing values rather than NaNs.

Cost
    * ``CE001`` (info) — static per-kernel cost estimate (window depth ×
      op count), also stamped on :class:`KernelSpec` for the scheduler.

The composed extents used by the BS checks are *recomputed here* from
``ir/analysis.reference_extents`` — deliberately not by calling
``lineage.boundary.compose_extents`` — so the analyzer is an independent
cross-check of the boundary resolver rather than a restatement of it.

Reports are cached by program digest (analysis is pure), so the
compile-time hook costs one dict lookup for every recompilation of an
already-seen program.
"""

from __future__ import annotations

import hashlib
import math
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..core.ir.analysis import (
    estimate_static_cost,
    reference_extents,
    referenced_streams,
    topological_order,
)
from ..core.ir.nodes import (
    BinOp,
    Call,
    Coalesce,
    Const,
    Expr,
    IsValid,
    Reduce,
    TiltProgram,
    UnaryOp,
)
from ..core.ir.visitor import ExprVisitor
from ..core.lineage.boundary import BoundarySpec, resolve_boundaries
from ..errors import BoundaryResolutionError
from .findings import Finding, ProgramReport, Severity

__all__ = ["analyze_program", "check_boundary", "program_digest", "clear_cache"]

#: tolerance for float comparisons of time offsets / margins
_EPS = 1e-9

_CACHE_LIMIT = 256
_CACHE: "OrderedDict[Tuple[str, Optional[str]], ProgramReport]" = OrderedDict()
_CACHE_LOCK = threading.Lock()


def program_digest(program: TiltProgram) -> str:
    """Content digest of a program (IR nodes repr stably; aggregates by name)."""
    return hashlib.sha256(repr(program).encode()).hexdigest()


def clear_cache() -> None:
    """Drop all cached reports (tests / memory pressure)."""
    with _CACHE_LOCK:
        _CACHE.clear()


# ---------------------------------------------------------------------- #
# composed extents, recomputed independently of lineage.boundary
# ---------------------------------------------------------------------- #
def _own_extents(program: TiltProgram) -> Dict[str, Dict[str, Tuple[float, float]]]:
    return {te.name: reference_extents(te.expr) for te in program.exprs}


def _compose_input_extents(
    program: TiltProgram,
    own: Dict[str, Dict[str, Tuple[float, float]]],
    order: List[str],
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Per defined expression, the (lo, hi) offsets it may read of each *input*."""
    inputs = set(program.inputs)
    resolved: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for name in order:
        total: Dict[str, Tuple[float, float]] = {}
        for ref, (lo, hi) in own[name].items():
            if ref in inputs:
                _merge(total, ref, lo, hi)
            else:
                for in_name, (ilo, ihi) in resolved.get(ref, {}).items():
                    _merge(total, in_name, lo + ilo, hi + ihi)
        resolved[name] = total
    return resolved


def _consumed_extents(
    program: TiltProgram,
    own: Dict[str, Dict[str, Tuple[float, float]]],
    order: List[str],
) -> Dict[str, Tuple[float, float]]:
    """Per defined expression, the offsets (relative to output time) at which
    its materialized values are actually *consumed*.

    ``Rd(output) = (0, 0)``; walking the dependency chain backwards from the
    output, a consumer read at ``(a, b)`` of ``e`` extends ``Rd(e)`` by
    ``(Rd(consumer).lo + a, Rd(consumer).hi + b)``.  Expressions never
    consumed (dead definitions) are absent from the result.
    """
    defined = set(program.defined_names())
    consumed: Dict[str, Tuple[float, float]] = {program.output: (0.0, 0.0)}
    for name in reversed(order):
        if name not in consumed:
            continue  # dead: nothing downstream reads it
        rd_lo, rd_hi = consumed[name]
        for ref, (lo, hi) in own[name].items():
            if ref in defined and ref != name:
                _merge(consumed, ref, rd_lo + lo, rd_hi + hi)
    return consumed


def _merge(acc: Dict[str, Tuple[float, float]], name: str, lo: float, hi: float) -> None:
    cur = acc.get(name)
    if cur is None:
        acc[name] = (lo, hi)
    else:
        acc[name] = (min(cur[0], lo), max(cur[1], hi))


# ---------------------------------------------------------------------- #
# domain analysis
# ---------------------------------------------------------------------- #
class _DomainChecker(ExprVisitor):
    """Flag unguarded φ/NaN-producing sites (``/``, ``%``, sqrt, log).

    A site is *guarded* when an enclosing ``IsValid`` or ``Coalesce``
    observes its φ, or when the critical operand is a constant provably in
    the operation's domain.  ``abs(x)`` feeding ``sqrt`` also counts.
    """

    def __init__(self) -> None:
        self.sites: List[Tuple[str, str]] = []  # (code, description)
        self._guard_depth = 0

    # guards ----------------------------------------------------------- #
    def visit_isvalid(self, node: IsValid) -> None:
        self._guard_depth += 1
        self.visit(node.operand)
        self._guard_depth -= 1

    def visit_coalesce(self, node: Coalesce) -> None:
        self._guard_depth += 1
        self.visit(node.operand)
        self._guard_depth -= 1
        self.visit(node.default)

    def visit_reduce(self, node: Reduce) -> None:
        self.visit(node.window)
        if node.element is not None:
            self.visit(node.element)

    # sites ------------------------------------------------------------ #
    def visit_binop(self, node: BinOp) -> None:
        if node.op in ("/", "%") and self._guard_depth == 0:
            if not self._nonzero_const(node.rhs):
                self.sites.append(
                    ("DOM001", f"'{node.op}' with a possibly-zero divisor")
                )
        self.visit(node.lhs)
        self.visit(node.rhs)

    def visit_unaryop(self, node: UnaryOp) -> None:
        self._check_unary(node.op, node.operand)
        self.visit(node.operand)

    def visit_call(self, node: Call) -> None:
        if node.args:
            self._check_unary(node.func, node.args[0])
        for arg in node.args:
            self.visit(arg)

    def _check_unary(self, op: str, operand: Expr) -> None:
        if self._guard_depth:
            return
        if op == "sqrt" and not self._nonnegative(operand):
            self.sites.append(("DOM002", "sqrt of a possibly-negative operand"))
        elif op == "log" and not self._positive_const(operand):
            self.sites.append(("DOM003", "log of a possibly-non-positive operand"))

    # operand facts ---------------------------------------------------- #
    @staticmethod
    def _nonzero_const(expr: Expr) -> bool:
        return isinstance(expr, Const) and expr.value != 0.0

    @staticmethod
    def _nonnegative(expr: Expr) -> bool:
        if isinstance(expr, Const):
            return expr.value >= 0.0
        if isinstance(expr, UnaryOp) and expr.op == "abs":
            return True
        if isinstance(expr, IsValid):
            return True  # 0.0 or 1.0
        if isinstance(expr, BinOp) and expr.op == "*" and expr.lhs == expr.rhs:
            return True  # x * x
        return False

    @staticmethod
    def _positive_const(expr: Expr) -> bool:
        return isinstance(expr, Const) and expr.value > 0.0


# ---------------------------------------------------------------------- #
# boundary cross-checks (reusable against an arbitrary BoundarySpec)
# ---------------------------------------------------------------------- #
def check_boundary(program: TiltProgram, boundary: BoundarySpec) -> List[Finding]:
    """Cross-check ``boundary`` against the program's recomputed extents.

    Returns the BS00x findings (empty when the plan is proven sufficient).
    This is the same obligation ``analyze_program`` discharges, exposed
    separately so tests can probe deliberately-weakened boundary specs.
    """
    findings: List[Finding] = []
    own = _own_extents(program)
    order = topological_order(program)
    composed = _compose_input_extents(program, own, order)
    output_extents = composed.get(program.output, {})

    # BS001/BS002: every input's composed extent must be finite and covered
    # by both the margin pair and the concrete interval handed to the
    # partitioner for a symbolic partition (0, P].
    for name in program.inputs:
        lo, hi = output_extents.get(name, (0.0, 0.0))
        if not (math.isfinite(lo) and math.isfinite(hi)):
            findings.append(
                Finding(
                    code="BS001",
                    severity=Severity.ERROR,
                    site=name,
                    message=(
                        f"input ~{name} has an unbounded composed extent "
                        f"({lo:g}, {hi:g}); the query cannot be partitioned"
                    ),
                    data={"extent": (lo, hi)},
                )
            )
            continue
        lookback = boundary.lookback(name)
        lookahead = boundary.lookahead(name)
        span = 1.0  # symbolic partition (0, 1]
        int_lo, int_hi = boundary.input_interval(name, 0.0, span)
        required_lo = min(lo, 0.0)
        required_hi = span + max(hi, 0.0)
        margin_ok = lookback >= -min(lo, 0.0) - _EPS and lookahead >= max(hi, 0.0) - _EPS
        interval_ok = int_lo <= required_lo + _EPS and int_hi >= required_hi - _EPS
        if not (margin_ok and interval_ok):
            findings.append(
                Finding(
                    code="BS002",
                    severity=Severity.ERROR,
                    site=name,
                    message=(
                        f"boundary margins (lookback={lookback:g}, "
                        f"lookahead={lookahead:g}) do not cover ~{name}'s composed "
                        f"access extent ({lo:g}, {hi:g}); a partition would read "
                        "input snapshots outside its materialized slice"
                    ),
                    data={
                        "extent": (lo, hi),
                        "lookback": lookback,
                        "lookahead": lookahead,
                    },
                )
            )

    # BS003: every *consumed* read of a materialized intermediate must fall
    # inside the interval CompiledQuery.run materializes intermediates over.
    max_lb = boundary.max_lookback
    max_la = boundary.max_lookahead
    consumed = _consumed_extents(program, own, order)
    for name, (lo, hi) in consumed.items():
        if name == program.output:
            continue
        if not (math.isfinite(lo) and math.isfinite(hi)):
            findings.append(
                Finding(
                    code="BS003",
                    severity=Severity.ERROR,
                    site=name,
                    message=(
                        f"intermediate ~{name} is consumed over an unbounded "
                        f"offset range ({lo:g}, {hi:g})"
                    ),
                    data={"consumed": (lo, hi)},
                )
            )
            continue
        if lo < -max_lb - _EPS or hi > max_la + _EPS:
            findings.append(
                Finding(
                    code="BS003",
                    severity=Severity.ERROR,
                    site=name,
                    message=(
                        f"intermediate ~{name} is consumed at offsets "
                        f"({lo:g}, {hi:g}) but is only materialized over "
                        f"(Ts-{max_lb:g}, Te+{max_la:g}]; reads outside would "
                        "silently yield φ"
                    ),
                    data={
                        "consumed": (lo, hi),
                        "materialized": (-max_lb, max_la),
                    },
                )
            )
    return findings


# ---------------------------------------------------------------------- #
# the analyzer
# ---------------------------------------------------------------------- #
def analyze_program(
    program: TiltProgram, boundary: Optional[BoundarySpec] = None
) -> ProgramReport:
    """Analyze a validated program; never raises on findings.

    ``boundary`` is the already-resolved plan when called from
    ``compile_program`` (so the analyzer checks exactly the spec the
    partitioner will use); standalone callers leave it ``None`` and the
    analyzer resolves one itself, converting a
    :class:`BoundaryResolutionError` into a ``BS001`` finding instead of
    raising.
    """
    digest = program_digest(program)
    cache_key = (digest, _boundary_key(boundary))
    with _CACHE_LOCK:
        cached = _CACHE.get(cache_key)
        if cached is not None:
            _CACHE.move_to_end(cache_key)
            return cached

    report = _analyze_uncached(program, boundary, digest)

    with _CACHE_LOCK:
        _CACHE[cache_key] = report
        _CACHE.move_to_end(cache_key)
        while len(_CACHE) > _CACHE_LIMIT:
            _CACHE.popitem(last=False)
    return report


def _boundary_key(boundary: Optional[BoundarySpec]) -> Optional[str]:
    if boundary is None:
        return None
    return repr(sorted(boundary.margins.items()))


def _analyze_uncached(
    program: TiltProgram, boundary: Optional[BoundarySpec], digest: str
) -> ProgramReport:
    findings: List[Finding] = []

    if boundary is None:
        try:
            boundary = resolve_boundaries(program)
        except BoundaryResolutionError as exc:
            findings.append(
                Finding(
                    code="BS001",
                    severity=Severity.ERROR,
                    message=f"boundary resolution failed: {exc}",
                )
            )

    if boundary is not None:
        findings.extend(check_boundary(program, boundary))

        # BS004: every expression's precision should nest into the partition
        # alignment grid (the max precision — see TiltEngine._partition).
        precisions = [te.tdom.precision for te in program.exprs]
        align = max((p for p in precisions if p > 0), default=0.0)
        for te in program.exprs:
            p = te.tdom.precision
            if p > 0 and align > 0:
                ratio = align / p
                if abs(ratio - round(ratio)) > _EPS:
                    findings.append(
                        Finding(
                            code="BS004",
                            severity=Severity.WARNING,
                            site=te.name,
                            message=(
                                f"~{te.name}'s precision {p:g} does not divide the "
                                f"partition alignment grid {align:g}; partition "
                                "edges may fall between its output points"
                            ),
                            data={"precision": p, "alignment": align},
                        )
                    )

    # DD001/DD002: dead definitions and unused inputs.
    reachable = {program.output}
    by_name = {te.name: te for te in program.exprs}
    stack = [program.output]
    used_inputs = set()
    while stack:
        te = by_name.get(stack.pop())
        if te is None:
            continue
        for ref in referenced_streams(te.expr):
            if ref in program.inputs:
                used_inputs.add(ref)
            elif ref not in reachable:
                reachable.add(ref)
                stack.append(ref)
    for te in program.exprs:
        if te.name not in reachable:
            findings.append(
                Finding(
                    code="DD001",
                    severity=Severity.WARNING,
                    site=te.name,
                    message=(
                        f"~{te.name} is never consumed by ~{program.output}; its "
                        "kernel still runs every partition"
                    ),
                )
            )
    for name in program.inputs:
        if name not in used_inputs:
            findings.append(
                Finding(
                    code="DD002",
                    severity=Severity.WARNING,
                    site=name,
                    message=f"input ~{name} is never referenced",
                )
            )

    # DOM001-003: unguarded NaN/φ-producing sites.
    for te in program.exprs:
        checker = _DomainChecker()
        checker.visit(te.expr)
        for code, desc in checker.sites:
            findings.append(
                Finding(
                    code=code,
                    severity=Severity.WARNING,
                    site=te.name,
                    message=(
                        f"unguarded {desc} in ~{te.name}; the lowering masks the "
                        "lane to φ — wrap in IsValid/Coalesce if intended"
                    ),
                )
            )

    # CE001: static cost estimates (info), one per temporal expression.
    for te in program.exprs:
        cost = estimate_static_cost(te)
        findings.append(
            Finding(
                code="CE001",
                severity=Severity.INFO,
                site=te.name,
                message=f"static cost estimate {cost:g} (window depth × op count)",
                data={"cost": cost},
            )
        )

    return ProgramReport(digest=digest, findings=findings)
