"""Benchmark applications: YSB, primitive operators and the eight real-world queries."""

from typing import Dict, List

from .base import StreamingApplication
from .finance import FRAUD_DETECTION, fraud_detection_query
from .healthcare import PAN_TOMPKINS, pan_tompkins_query
from .manufacturing import VIBRATION, vibration_query
from .primitives import (
    JOIN_OP,
    PRIMITIVE_OPERATIONS,
    SELECT_OP,
    WHERE_OP,
    WINDOW_SUM_OP,
    join_query,
    select_query,
    where_query,
    window_sum_query,
)
from .signal import (
    IMPUTATION,
    NORMALIZATION,
    RESAMPLING,
    imputation_query,
    normalization_query,
    resampling_query,
)
from .trading import RSI, TREND_TRADING, rsi_query, trend_trading_query
from .ysb import YSB, ysb_query

#: the eight real-world applications of Table 2, in the paper's order
REAL_WORLD_APPLICATIONS: List[StreamingApplication] = [
    TREND_TRADING,
    RSI,
    NORMALIZATION,
    IMPUTATION,
    RESAMPLING,
    PAN_TOMPKINS,
    VIBRATION,
    FRAUD_DETECTION,
]

#: every application, keyed by its short name
ALL_APPLICATIONS: Dict[str, StreamingApplication] = {
    app.name: app
    for app in REAL_WORLD_APPLICATIONS + PRIMITIVE_OPERATIONS + [YSB]
}


def get_application(name: str) -> StreamingApplication:
    """Look up an application by its short name (raises ``KeyError`` if unknown)."""
    return ALL_APPLICATIONS[name]


__all__ = [
    "StreamingApplication",
    "REAL_WORLD_APPLICATIONS",
    "PRIMITIVE_OPERATIONS",
    "ALL_APPLICATIONS",
    "get_application",
    "TREND_TRADING",
    "RSI",
    "NORMALIZATION",
    "IMPUTATION",
    "RESAMPLING",
    "PAN_TOMPKINS",
    "VIBRATION",
    "FRAUD_DETECTION",
    "YSB",
    "SELECT_OP",
    "WHERE_OP",
    "WINDOW_SUM_OP",
    "JOIN_OP",
    "trend_trading_query",
    "rsi_query",
    "normalization_query",
    "imputation_query",
    "resampling_query",
    "pan_tompkins_query",
    "vibration_query",
    "fraud_detection_query",
    "ysb_query",
    "select_query",
    "where_query",
    "window_sum_query",
    "join_query",
]
