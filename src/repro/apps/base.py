"""Common structure of the benchmark applications.

Every application in the suite (Table 2 of the paper plus the Yahoo
Streaming Benchmark) is described by a :class:`StreamingApplication`: a
name, the frontend query DAG, and a synthetic data generator.  Because the
query is expressed once against the engine-agnostic frontend, the same
application object runs on TiLT (via ``to_program`` + ``TiltEngine``) and on
every baseline engine that supports its operators — mirroring how the paper
implements each benchmark in both Trill and TiLT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.frontend.query import QueryNode
from ..core.ir.nodes import TiltProgram
from ..core.runtime.engine import QueryResult, TiltEngine
from ..core.runtime.stream import EventStream

__all__ = ["StreamingApplication"]


@dataclass
class StreamingApplication:
    """One benchmark application.

    Attributes
    ----------
    name:
        Short identifier used by the benchmark harness (e.g. ``"trading"``).
    title:
        Human-readable title as it appears in Table 2.
    description:
        One-line description of what the query computes.
    operators:
        The operator vocabulary of the query, as listed in Table 2.
    dataset:
        Description of the (synthetic stand-in) dataset.
    build_query:
        Zero-argument callable returning the frontend query DAG.
    build_streams:
        Callable ``(num_events, seed) -> {input name: EventStream}``.
    default_events:
        Event count used by tests and the quick benchmark configuration.
    """

    name: str
    title: str
    description: str
    operators: str
    dataset: str
    build_query: Callable[[], QueryNode]
    build_streams: Callable[[int, int], Dict[str, EventStream]]
    default_events: int = 20_000

    # ------------------------------------------------------------------ #
    def query(self) -> QueryNode:
        """The frontend query DAG (fresh instance on every call)."""
        return self.build_query()

    def program(self) -> TiltProgram:
        """The query translated to TiLT IR."""
        return self.build_query().to_program()

    def streams(self, num_events: Optional[int] = None, seed: int = 0) -> Dict[str, EventStream]:
        """Synthetic input streams for this application."""
        return self.build_streams(num_events or self.default_events, seed)

    def total_events(self, streams: Dict[str, EventStream]) -> int:
        """Total number of input events across all streams."""
        return sum(len(s) for s in streams.values())

    # ------------------------------------------------------------------ #
    def run_tilt(
        self,
        streams: Dict[str, EventStream],
        *,
        workers: int = 1,
        **engine_kwargs,
    ) -> QueryResult:
        """Convenience: run the application on a fresh :class:`TiltEngine`."""
        engine = TiltEngine(workers=workers, **engine_kwargs)
        return engine.run(self.program(), streams)

    def run_baseline(self, engine, streams: Dict[str, EventStream]) -> EventStream:
        """Run the application on one of the baseline engines."""
        return engine.run(self.query(), streams)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamingApplication({self.name!r})"
