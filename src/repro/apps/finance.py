"""Financial application: credit-card fraud detection.

The fraud-detection rule of Table 2 flags transactions whose amount exceeds
``μ + 3σ`` of the recent purchasing behaviour: a moving average and moving
standard deviation over a long sliding window form the threshold, the
threshold is shifted so that a transaction is compared only against *past*
behaviour, and a temporal join + filter keep the transactions above it.
"""

from __future__ import annotations

from typing import Dict

from ..core.frontend.query import LEFT, PAYLOAD, RIGHT, QueryNode, source
from ..core.ir.nodes import when
from ..core.runtime.stream import EventStream
from ..datagen.generators import credit_card_stream
from ..windowing.functions import MEAN, STDDEV
from .base import StreamingApplication

__all__ = ["fraud_detection_query", "FRAUD_DETECTION"]

E = PAYLOAD


def fraud_detection_query(
    window: float = 3600.0,
    stride: float = 300.0,
    sigma_factor: float = 3.0,
) -> QueryNode:
    """Abnormal-amount detection: flag transactions above ``μ + 3σ``.

    ``window``/``stride`` default to an hour-long sliding window advancing
    every five minutes — the synthetic transaction stream is compressed in
    time relative to the paper's 10-day windows, but the operator chain
    (Avg, StdDev, Shift, Join, Where) and the window/stride ratio are
    preserved.
    """
    amount = source("transactions", field="amount")
    mean = amount.window(window, stride).aggregate(MEAN).named("amount_mean")
    std = amount.window(window, stride).aggregate(STDDEV).named("amount_std")
    threshold = mean.join(std, LEFT + sigma_factor * RIGHT).named("threshold")
    # compare each transaction against the *previous* window's threshold
    past_threshold = threshold.shift(stride).named("past_threshold")
    flagged = amount.join(past_threshold, when(LEFT > RIGHT, LEFT)).named("flagged_amount")
    return flagged.where(E > 0).named("suspected_fraud")


def _transaction_streams(num_events: int, seed: int) -> Dict[str, EventStream]:
    return {"transactions": credit_card_stream(num_events, seed=seed + 19)}


FRAUD_DETECTION = StreamingApplication(
    name="frauddet",
    title="Fraud detection",
    description="Credit card fraud detection via the mu + 3 sigma rule",
    operators="Avg, StdDev, Shift, Join",
    dataset="Synthetic credit card transactions (Kaggle stand-in)",
    build_query=fraud_detection_query,
    build_streams=_transaction_streams,
)
