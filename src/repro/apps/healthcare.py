"""Healthcare application: Pan-Tompkins QRS detection on ECG waveforms.

The Pan-Tompkins algorithm detects the QRS complexes (heartbeats) in an ECG
signal through a cascade of filtering stages: band-pass filtering, a
derivative, squaring, and moving-window integration followed by
thresholding.  Each stage maps onto a temporal operator: the band-pass is a
difference of two moving averages, the derivative is a custom window
aggregate, squaring is a Select, the integrator is another moving average,
and thresholding is a Where.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.frontend.query import LEFT, PAYLOAD, RIGHT, QueryNode, source
from ..core.runtime.stream import EventStream
from ..datagen.generators import ecg_stream
from ..windowing.functions import MEAN, custom_aggregate
from .base import StreamingApplication

__all__ = ["pan_tompkins_query", "PAN_TOMPKINS", "ECG_FREQUENCY_HZ", "five_point_derivative"]

E = PAYLOAD

#: sampling frequency of the synthetic ECG waveform
ECG_FREQUENCY_HZ = 128.0
_PERIOD = 1.0 / ECG_FREQUENCY_HZ

#: custom reduction: discrete derivative over a short window (last - first,
#: normalised by the window span).  State is (first, last, count).
five_point_derivative = custom_aggregate(
    name="window_derivative",
    init=lambda: (None, None, 0),
    acc=lambda s, v: (v if s[0] is None else s[0], v, s[2] + 1),
    result=lambda s: 0.0 if s[2] < 2 else (s[1] - s[0]) / max(s[2] - 1, 1),
    merge=lambda a, b: (
        a[0] if a[0] is not None else b[0],
        b[1] if b[1] is not None else a[1],
        a[2] + b[2],
    ),
    vector_eval=lambda vals: 0.0 if len(vals) < 2 else float(vals[-1] - vals[0]) / (len(vals) - 1),
)


def pan_tompkins_query(
    frequency_hz: float = ECG_FREQUENCY_HZ,
    threshold: float = 1e-4,
) -> QueryNode:
    """Pan-Tompkins QRS detection pipeline.

    Stage windows follow the classic algorithm scaled to the sampling
    frequency: ~0.125 s (16-sample) and ~0.625 s (80-sample) moving averages
    for the band-pass, a 5-sample derivative, squaring, and a ~0.156 s
    (20-sample) moving-window integrator.  The synthetic ECG is sampled at
    128 Hz so every window boundary is exactly representable in binary
    floating point, keeping the event-centric and time-centric engines in
    exact agreement.
    The final Where keeps the integrator output above ``threshold`` — the
    intervals of the output events mark detected QRS complexes.
    """
    period = 1.0 / frequency_hz
    ecg = source("ecg")
    narrow = ecg.window(16 * period, period).aggregate(MEAN).named("ma_narrow")
    wide = ecg.window(80 * period, period).aggregate(MEAN).named("ma_wide")
    bandpass = narrow.join(wide, LEFT - RIGHT).named("bandpass")
    derivative = bandpass.window(5 * period, period).aggregate(five_point_derivative).named(
        "derivative"
    )
    squared = derivative.select(E * E).named("squared")
    integrated = squared.window(20 * period, period).aggregate(MEAN).named("integrated")
    return integrated.where(E > threshold).named("qrs")


def _ecg_streams(num_events: int, seed: int) -> Dict[str, EventStream]:
    return {"ecg": ecg_stream(num_events, seed=seed + 13, frequency_hz=ECG_FREQUENCY_HZ)}


PAN_TOMPKINS = StreamingApplication(
    name="pantom",
    title="Pan-Tompkins algorithm",
    description="Detect QRS complexes in ECG",
    operators="Custom-Agg (3), Select, Avg",
    dataset="Synthetic ECG waveform (MIMIC-III stand-in)",
    build_query=pan_tompkins_query,
    build_streams=_ecg_streams,
    default_events=10_000,
)
