"""Manufacturing application: bearing vibration analysis.

Industrial vibration monitoring computes statistical health indicators over
short tumbling windows of a high-frequency accelerometer signal.  The query
follows Table 2: kurtosis (a custom aggregate), root-mean-square and crest
factor (peak divided by RMS) over 100-millisecond tumbling windows, joined
into a combined health indicator that is thresholded to raise alerts.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from ..core.frontend.query import LEFT, PAYLOAD, RIGHT, QueryNode, source
from ..core.runtime.stream import EventStream
from ..datagen.generators import vibration_stream
from ..windowing.functions import MAX, MEAN, custom_aggregate
from .base import StreamingApplication

__all__ = ["vibration_query", "VIBRATION", "VIBRATION_FREQUENCY_HZ", "kurtosis_aggregate"]

E = PAYLOAD

#: sampling frequency of the synthetic vibration signal
# 2**13 samples per second: every sample boundary is exactly representable
# in binary floating point, so window membership is unambiguous and the
# event-centric and time-centric engines agree bit-for-bit.
VIBRATION_FREQUENCY_HZ = 8192.0


def _kurtosis_from_moments(state) -> float:
    n, s1, s2, s3, s4 = state
    if n < 2:
        return 0.0
    mean = s1 / n
    m2 = s2 / n - mean ** 2
    if m2 <= 0:
        return 0.0
    m4 = s4 / n - 4 * mean * (s3 / n) + 6 * mean ** 2 * (s2 / n) - 3 * mean ** 4
    return m4 / (m2 ** 2)


#: custom reduction computing the (non-excess) kurtosis of a window from its
#: raw moments — the Custom-Agg of the vibration-analysis query.
kurtosis_aggregate = custom_aggregate(
    name="kurtosis",
    init=lambda: (0.0, 0.0, 0.0, 0.0, 0.0),
    acc=lambda s, v: (s[0] + 1, s[1] + v, s[2] + v * v, s[3] + v ** 3, s[4] + v ** 4),
    result=_kurtosis_from_moments,
    deacc=lambda s, v: (s[0] - 1, s[1] - v, s[2] - v * v, s[3] - v ** 3, s[4] - v ** 4),
    merge=lambda a, b: tuple(x + y for x, y in zip(a, b)),
    vector_eval=lambda vals: float(
        np.mean((vals - vals.mean()) ** 4) / max(np.var(vals) ** 2, 1e-30)
    )
    if len(vals) >= 2
    else 0.0,
)


def vibration_query(
    window: float = 0.125,
    frequency_hz: float = VIBRATION_FREQUENCY_HZ,
    alert_threshold: float = 4.0,
) -> QueryNode:
    """Vibration health monitoring over ``window``-second tumbling windows (default 125 ms).

    * RMS: square-root of the mean of squared samples (Avg with a squaring
      element map followed by a Select);
    * peak: windowed Max;
    * crest factor: peak / RMS (Join);
    * kurtosis: custom aggregate from raw moments;
    * alert: kurtosis + crest factor joined and thresholded (Join + Where).
    """
    vib = source("vibration")
    mean_square = vib.window(window, window).aggregate(MEAN, element=E * E).named("mean_square")
    rms = mean_square.select(E.sqrt()).named("rms")
    peak = vib.window(window, window).aggregate(MAX, element=abs(E)).named("peak")
    crest = peak.join(rms, LEFT / RIGHT).named("crest_factor")
    kurt = vib.window(window, window).aggregate(kurtosis_aggregate).named("kurtosis")
    indicator = kurt.join(crest, LEFT + RIGHT).named("health_indicator")
    return indicator.where(E > alert_threshold).named("alerts")


def _vibration_streams(num_events: int, seed: int) -> Dict[str, EventStream]:
    return {
        "vibration": vibration_stream(
            num_events, seed=seed + 17, frequency_hz=VIBRATION_FREQUENCY_HZ
        )
    }


VIBRATION = StreamingApplication(
    name="vibration",
    title="Vibration analysis",
    description="Monitor machine vibrations using kurtosis, RMS and crest factor",
    operators="Max, Avg (2), Join (2), Custom-Agg",
    dataset="Synthetic bearing vibration signal (8.192 kHz)",
    build_query=vibration_query,
    build_streams=_vibration_streams,
    default_events=20_000,
)
