"""Primitive temporal operations (Figure 1 / Figure 7a of the paper).

Four single-operator micro-benchmarks — Select, Where, Window-Sum and
temporal Join — measured on a synthetic scalar stream.  These are the
queries of the Figure 7a throughput comparison across all five engines.
"""

from __future__ import annotations

from typing import Dict

from ..core.frontend.query import LEFT, PAYLOAD, RIGHT, QueryNode, source
from ..core.runtime.stream import EventStream
from ..datagen.generators import uniform_value_stream
from .base import StreamingApplication

__all__ = [
    "select_query",
    "where_query",
    "window_sum_query",
    "join_query",
    "SELECT_OP",
    "WHERE_OP",
    "WINDOW_SUM_OP",
    "JOIN_OP",
    "PRIMITIVE_OPERATIONS",
]

E = PAYLOAD


def select_query() -> QueryNode:
    """Figure 1a: per-event projection ``e => e + 1``."""
    return source("values").select(E + 1.0).named("selected")


def where_query() -> QueryNode:
    """Figure 1b: per-event filter ``e => e % 2 == 0``."""
    return source("values").where((E % 2.0).eq(0.0)).named("filtered")


def window_sum_query(size: float = 10.0, stride: float = 5.0) -> QueryNode:
    """Figure 1d: sliding-window sum with a 10-second window and 5-second stride."""
    return source("values").sum(size, stride).named("wsum")


def join_query() -> QueryNode:
    """Figure 1c: temporal join ``(l, r) => l + r`` of two streams."""
    left = source("left")
    right = source("right")
    return left.join(right, LEFT + RIGHT).named("joined")


def _single_stream(num_events: int, seed: int) -> Dict[str, EventStream]:
    return {"values": uniform_value_stream(num_events, seed=seed + 29)}


def _integer_stream(num_events: int, seed: int) -> Dict[str, EventStream]:
    stream = uniform_value_stream(num_events, seed=seed + 29)
    rounded = [e for e in stream.events]
    from ..core.runtime.stream import Event

    rounded = [Event(e.start, e.end, float(round(e.value()))) for e in rounded]
    return {"values": EventStream(rounded, name="values", check_order=False)}


def _two_streams(num_events: int, seed: int) -> Dict[str, EventStream]:
    half = max(1, num_events // 2)
    return {
        "left": uniform_value_stream(half, seed=seed + 29, period=1.0, name="left"),
        "right": uniform_value_stream(half, seed=seed + 31, period=1.3, name="right"),
    }


SELECT_OP = StreamingApplication(
    name="select",
    title="Select",
    description="Per-event projection e => e + 1",
    operators="Select",
    dataset="Synthetic uniform values",
    build_query=select_query,
    build_streams=_single_stream,
)

WHERE_OP = StreamingApplication(
    name="where",
    title="Where",
    description="Per-event filter e => e % 2 == 0",
    operators="Where",
    dataset="Synthetic integer values",
    build_query=where_query,
    build_streams=_integer_stream,
)

WINDOW_SUM_OP = StreamingApplication(
    name="wsum",
    title="Window-Sum",
    description="Sliding window sum, size 10 stride 5",
    operators="Window, Sum",
    dataset="Synthetic uniform values",
    build_query=window_sum_query,
    build_streams=_single_stream,
)

JOIN_OP = StreamingApplication(
    name="join",
    title="Temporal Join",
    description="Temporal join (l, r) => l + r",
    operators="Join",
    dataset="Two synthetic uniform value streams",
    build_query=join_query,
    build_streams=_two_streams,
)

#: the four micro-benchmarks of Figure 7a, in presentation order
PRIMITIVE_OPERATIONS = [SELECT_OP, WHERE_OP, WINDOW_SUM_OP, JOIN_OP]
