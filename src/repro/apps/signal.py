"""Signal processing / data-preparation applications.

Three of the Table 2 queries operate on a synthetic 1000 Hz floating-point
signal: Z-score normalization, missing-value imputation and resampling.
"""

from __future__ import annotations

from typing import Dict

from ..core.frontend.query import LEFT, PAYLOAD, RIGHT, QueryNode, source
from ..core.runtime.stream import EventStream
from ..datagen.generators import random_signal_stream
from ..windowing.functions import MEAN, STDDEV
from .base import StreamingApplication

__all__ = [
    "normalization_query",
    "imputation_query",
    "resampling_query",
    "NORMALIZATION",
    "IMPUTATION",
    "RESAMPLING",
    "SIGNAL_FREQUENCY_HZ",
]

E = PAYLOAD

#: sampling frequency of the synthetic signal used by these applications
SIGNAL_FREQUENCY_HZ = 1000.0
_PERIOD = 1.0 / SIGNAL_FREQUENCY_HZ


def normalization_query(window: float = 10.0) -> QueryNode:
    """Standard-score normalization: ``(x - μ) / σ`` per tumbling window.

    The mean and standard deviation of the signal are computed over a
    ``window``-second tumbling window; every sample is normalized against the
    statistics of the window it falls into.
    """
    signal = source("signal")
    mean = signal.window(window, window).aggregate(MEAN).named("window_mean")
    std = signal.window(window, window).aggregate(STDDEV).named("window_std")
    centered = signal.join(mean, LEFT - RIGHT).named("centered")
    return centered.join(std, LEFT / RIGHT).named("zscore")


def imputation_query(window: float = 10.0) -> QueryNode:
    """Missing-value imputation: fill gaps with the tumbling-window average.

    Where the signal has events, their values pass through unchanged; where
    samples are missing, the average of the surrounding ``window``-second
    tumbling window is substituted.
    """
    signal = source("signal")
    fill = signal.window(window, window).aggregate(MEAN).named("fill_value")
    return signal.coalesce(fill).named("imputed")


def resampling_query(output_period: float = 0.0025, input_period: float = _PERIOD) -> QueryNode:
    """Signal resampling to a new output frequency.

    The value at each output sample is the midpoint average of the current
    and previous input sample (Select + Shift + Join), and the resulting
    temporal object is chopped onto the output period grid (Chop).  The paper
    uses linear interpolation; midpoint interpolation exercises exactly the
    same operator chain (Select, Join, Shift, Chop) with a simpler arithmetic
    kernel, which is what matters for the performance comparison.
    """
    signal = source("signal")
    prev = signal.shift(input_period).named("prev_sample")
    midpoint = signal.join(prev, (LEFT + RIGHT) / 2.0).named("midpoint")
    return midpoint.chop(output_period).named("resampled")


def _signal_streams(num_events: int, seed: int) -> Dict[str, EventStream]:
    return {
        "signal": random_signal_stream(
            num_events, seed=seed + 11, frequency_hz=SIGNAL_FREQUENCY_HZ
        )
    }


def _gappy_signal_streams(num_events: int, seed: int) -> Dict[str, EventStream]:
    return {
        "signal": random_signal_stream(
            num_events,
            seed=seed + 11,
            frequency_hz=SIGNAL_FREQUENCY_HZ,
            missing_fraction=0.05,
        )
    }


NORMALIZATION = StreamingApplication(
    name="normalize",
    title="Normalization",
    description="Normalize event values using Z-score",
    operators="Avg, StdDev, Join",
    dataset="Synthetic 1000 Hz floating-point signal",
    build_query=normalization_query,
    build_streams=_signal_streams,
)

IMPUTATION = StreamingApplication(
    name="impute",
    title="Signal imputation",
    description="Replace missing signal values with the window average",
    operators="Avg, Shift, Join",
    dataset="Synthetic 1000 Hz signal with 5% missing samples",
    build_query=imputation_query,
    build_streams=_gappy_signal_streams,
)

RESAMPLING = StreamingApplication(
    name="resample",
    title="Resampling",
    description="Change the signal sampling frequency",
    operators="Select, Join, Shift, Chop",
    dataset="Synthetic 1000 Hz floating-point signal",
    build_query=resampling_query,
    build_streams=_signal_streams,
)
