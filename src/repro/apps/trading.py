"""Stock-trading applications: trend-based trading and the relative strength index.

Both queries analyse a high-frequency stock tick stream (synthetic stand-in
for the NYSE feed) and are the first two rows of Table 2.
"""

from __future__ import annotations

from typing import Dict

from ..core.frontend.query import LEFT, PAYLOAD, RIGHT, QueryNode, source
from ..core.ir.nodes import when
from ..core.runtime.stream import EventStream
from ..datagen.generators import stock_price_stream
from ..windowing.functions import MEAN
from .base import StreamingApplication

__all__ = ["trend_trading_query", "rsi_query", "TREND_TRADING", "RSI"]

E = PAYLOAD


def trend_trading_query(short_window: float = 10.0, long_window: float = 20.0) -> QueryNode:
    """Moving-average trend detection (the paper's running example, Figure 2).

    Computes a short and a long moving average of the stock price, joins them
    into their difference and keeps only the periods where the short average
    exceeds the long one (an upward trend).
    """
    stock = source("stock")
    short_avg = stock.window(short_window, 1.0).aggregate(MEAN).named("avg_short")
    long_avg = stock.window(long_window, 1.0).aggregate(MEAN).named("avg_long")
    diff = short_avg.join(long_avg, LEFT - RIGHT).named("trend_diff")
    return diff.where(E > 0).named("uptrend")


def rsi_query(period: float = 14.0) -> QueryNode:
    """Relative strength index over a ``period``-second trading window.

    The per-tick price change is obtained by joining the price stream with a
    one-tick-shifted copy of itself (Shift + Join); gains and losses are
    separated with Selects, averaged over the RSI period, and combined into
    ``RSI = 100 - 100 / (1 + avg_gain / avg_loss)``.
    """
    price = source("stock")
    prev = price.shift(1.0).named("prev_price")
    change = price.join(prev, LEFT - RIGHT).named("price_change")
    gains = change.select(when(E > 0, E, 0.0)).named("gains")
    losses = change.select(when(E < 0, -E, 0.0)).named("losses")
    avg_gain = gains.window(period, 1.0).aggregate(MEAN).named("avg_gain")
    avg_loss = losses.window(period, 1.0).aggregate(MEAN).named("avg_loss")
    rsi = avg_gain.join(avg_loss, 100.0 - 100.0 / (1.0 + LEFT / RIGHT)).named("rsi")
    return rsi


def _stock_streams(num_events: int, seed: int) -> Dict[str, EventStream]:
    return {"stock": stock_price_stream(num_events, seed=seed + 7)}


TREND_TRADING = StreamingApplication(
    name="trading",
    title="Trend-based trading",
    description="Moving average trend in stock price",
    operators="Avg (2), Join, Where",
    dataset="Synthetic stock ticks (NYSE stand-in)",
    build_query=trend_trading_query,
    build_streams=_stock_streams,
)

RSI = StreamingApplication(
    name="rsi",
    title="Relative strength index",
    description="Stock price momentum indicator",
    operators="Shift, Join, Avg (2)",
    dataset="Synthetic stock ticks (NYSE stand-in)",
    build_query=rsi_query,
    build_streams=_stock_streams,
)
