"""Yahoo Streaming Benchmark (YSB).

The YSB query filters an ad-event stream down to view events, projects the
relevant field and counts the views per 10-second tumbling window (Select,
Where, tumbling-window Count — the composition described in Section 7 of the
paper).  Campaign-level grouping is not part of the temporal query: like the
scale-up engines the paper benchmarks, per-campaign parallelism would be
obtained by partitioning the input stream by campaign before the query; the
benchmark here counts across all campaigns so every engine executes exactly
the same work.
"""

from __future__ import annotations

from typing import Dict

from ..core.frontend.query import PAYLOAD, QueryNode, source
from ..core.runtime.stream import EventStream
from ..datagen.generators import ysb_stream
from .base import StreamingApplication

__all__ = ["ysb_query", "YSB", "YSB_EVENTS_PER_SECOND"]

E = PAYLOAD

#: event rate of the synthetic ad stream
YSB_EVENTS_PER_SECOND = 10_000.0


def ysb_query(window: float = 10.0) -> QueryNode:
    """The YSB query: project, filter view events, count per tumbling window."""
    ads = source("ads", field="event_type")
    views = ads.select(E * 1.0).where(E.eq(0)).named("views")
    return views.window(window, window).count().named("view_counts")


def _ysb_streams(num_events: int, seed: int) -> Dict[str, EventStream]:
    return {
        "ads": ysb_stream(num_events, seed=seed + 23, events_per_second=YSB_EVENTS_PER_SECOND)
    }


YSB = StreamingApplication(
    name="ysb",
    title="Yahoo Streaming Benchmark",
    description="Count ad view events per 10-second tumbling window",
    operators="Select, Where, Window-Count",
    dataset="Synthetic YSB ad events",
    build_query=ysb_query,
    build_streams=_ysb_streams,
    default_events=50_000,
)
