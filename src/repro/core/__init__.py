"""TiLT core: IR, frontend, lineage, optimizer, code generation and runtime."""

from .codegen import CompiledQuery, Interpreter, compile_program
from .frontend import LEFT, PAYLOAD, RIGHT, source
from .ir import IRBuilder, TiltProgram, when
from .lineage import BoundarySpec, resolve_boundaries
from .optimizer import optimize
from .runtime import Event, EventStream, SSBuf
from .runtime.engine import QueryResult, TiltEngine

# imported after the engine: the session module sits above the low-level
# runtime data structures (it imports the engine and, lazily, the metrics)
from .runtime.session import StreamingSession, TickResult

__all__ = [
    "StreamingSession",
    "TickResult",
    "CompiledQuery",
    "Interpreter",
    "compile_program",
    "source",
    "PAYLOAD",
    "LEFT",
    "RIGHT",
    "IRBuilder",
    "TiltProgram",
    "when",
    "BoundarySpec",
    "resolve_boundaries",
    "optimize",
    "Event",
    "EventStream",
    "SSBuf",
    "QueryResult",
    "TiltEngine",
]
