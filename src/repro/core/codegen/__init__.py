"""TiLT code generation and execution backends.

Two execution modes share identical semantics:

* the *interpreter* (:mod:`repro.core.codegen.interpreter`) materializes every
  temporal expression one at a time — the reference implementation and the
  "UnOpt TiLT" configuration;
* the *compiled* backend (:mod:`repro.core.codegen.compiled`) generates
  vectorized NumPy kernels from the (optimized, fused) program and executes
  them with symbolic partition boundaries.
"""

from .compiled import CompiledKernel, CompiledQuery, compile_program
from .grid import evaluation_times, evaluation_times_for_accesses, snap_to_precision
from .interpreter import Interpreter, evaluate_expr_at, evaluate_program, evaluate_temporal_expr
from .pysource import KernelSpec, generate_kernel_spec
from .runtime_support import KernelRuntime

__all__ = [
    "CompiledKernel",
    "CompiledQuery",
    "compile_program",
    "evaluation_times",
    "evaluation_times_for_accesses",
    "snap_to_precision",
    "Interpreter",
    "evaluate_expr_at",
    "evaluate_program",
    "evaluate_temporal_expr",
    "KernelSpec",
    "generate_kernel_spec",
    "KernelRuntime",
]
