"""Compilation of TiLT programs into executable query objects.

``compile_program`` is the counterpart of the paper's code-generation stage
(Section 6.1): it validates the program, runs the optimizer (fusion etc.),
resolves boundary conditions, generates one vectorized kernel per remaining
temporal expression and wraps everything into a :class:`CompiledQuery` whose
``run`` method executes the query over an arbitrary symbolic interval
``(Ts, Te]`` — exactly the callable-with-parametrized-boundaries artifact of
Figure 3d, which the parallel runtime then invokes once per partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ...errors import CompilationError, ExecutionError
from ..ir.analysis import topological_order
from ..ir.nodes import TemporalExpr, TiltProgram
from ..ir.validation import validate_program
from ..lineage.boundary import BoundarySpec, resolve_boundaries
from ..optimizer.passes import PassManager, default_pass_manager
from ..runtime.ssbuf import SSBuf
from .pysource import ELEMENT_FUNCTION_NAME, KERNEL_FUNCTION_NAME, KernelSpec, generate_kernel_spec
from .runtime_support import KernelRuntime

__all__ = ["CompiledKernel", "CompiledQuery", "compile_program"]


class CompiledKernel:
    """One executable kernel: generated source + its runtime support object."""

    def __init__(self, spec: KernelSpec):
        self.spec = spec
        element_functions = [
            self._compile_function(src, ELEMENT_FUNCTION_NAME, f"<tilt-element-{spec.name}-{i}>")
            for i, src in enumerate(spec.element_sources)
        ]
        self.runtime = KernelRuntime(spec.accesses, spec.tdom, spec.aggregates, element_functions)
        self._function = self._compile_function(
            spec.source, KERNEL_FUNCTION_NAME, f"<tilt-kernel-{spec.name}>"
        )

    @staticmethod
    def _compile_function(source: str, function_name: str, filename: str):
        namespace: Dict[str, object] = {}
        try:
            code = compile(source, filename, "exec")
            exec(code, namespace)  # noqa: S102 - intentional: this *is* the code generator
        except SyntaxError as exc:  # pragma: no cover - codegen bug guard
            raise CompilationError(f"generated source failed to compile: {exc}\n{source}") from exc
        return namespace[function_name]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def source(self) -> str:
        return self.spec.source

    def run(self, env: Mapping[str, SSBuf], t_start: float, t_end: float) -> SSBuf:
        """Execute the kernel over ``(t_start, t_end]``."""
        return self._function(env, t_start, t_end, self.runtime)


@dataclass
class CompiledQuery:
    """A fully compiled TiLT query, ready for (parallel) execution.

    Attributes
    ----------
    program:
        The optimized program the kernels were generated from.
    boundary:
        Resolved boundary conditions (drives partitioning).
    kernels:
        One kernel per temporal expression, in evaluation order.
    pass_manager:
        The pass manager that optimized the program (kept for its history /
        statistics; useful for the Figure 10 style sensitivity analysis).
    """

    program: TiltProgram
    boundary: BoundarySpec
    kernels: List[CompiledKernel]
    pass_manager: Optional[PassManager] = None

    @property
    def output(self) -> str:
        return self.program.output

    @property
    def fused(self) -> bool:
        """True when the whole query collapsed into a single kernel."""
        return len(self.kernels) == 1

    def kernel_named(self, name: str) -> CompiledKernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)

    def sources(self) -> str:
        """Concatenated generated sources (debugging / golden tests)."""
        return "\n\n".join(k.spec.describe() for k in self.kernels)

    def run(self, inputs: Mapping[str, SSBuf], t_start: float, t_end: float) -> SSBuf:
        """Execute the query over ``(t_start, t_end]`` and return the output buffer.

        Intermediate (non-output) expressions are materialized over an
        interval extended by the resolved margins so that downstream kernels
        can read into the past/future they need.
        """
        env: Dict[str, SSBuf] = dict(inputs)
        missing = [name for name in self.program.inputs if name not in env]
        if missing:
            raise ExecutionError(f"missing input streams: {missing}")
        lookback = self.boundary.max_lookback
        lookahead = self.boundary.max_lookahead
        for kernel in self.kernels:
            if kernel.name == self.program.output:
                env[kernel.name] = kernel.run(env, t_start, t_end)
            else:
                env[kernel.name] = kernel.run(env, t_start - lookback, t_end + lookahead)
        return env[self.program.output]


def compile_program(
    program: TiltProgram,
    *,
    optimize: bool = True,
    enable_fusion: bool = True,
    pass_manager: Optional[PassManager] = None,
) -> CompiledQuery:
    """Validate, optimize and lower a TiLT program to a :class:`CompiledQuery`.

    ``optimize=False`` skips the optimizer entirely (the "UnOpt" configuration
    of the Figure 10 study); ``enable_fusion=False`` keeps the cleanup passes
    but disables operator fusion.
    """
    validate_program(program)
    pm: Optional[PassManager] = None
    if optimize:
        pm = pass_manager or default_pass_manager(enable_fusion=enable_fusion)
        program = pm.run(program)
    boundary = resolve_boundaries(program)
    order = topological_order(program)
    by_name: Dict[str, TemporalExpr] = {te.name: te for te in program.exprs}
    kernels = [CompiledKernel(generate_kernel_spec(by_name[name])) for name in order]
    return CompiledQuery(program=program, boundary=boundary, kernels=kernels, pass_manager=pm)
