"""Compilation of TiLT programs into executable query objects.

``compile_program`` is the counterpart of the paper's code-generation stage
(Section 6.1): it validates the program, runs the optimizer (fusion etc.),
resolves boundary conditions, generates one vectorized kernel per remaining
temporal expression and wraps everything into a :class:`CompiledQuery` whose
``run`` method executes the query over an arbitrary symbolic interval
``(Ts, Te]`` — exactly the callable-with-parametrized-boundaries artifact of
Figure 3d, which the parallel runtime then invokes once per partition.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ...analysis.findings import ProgramReport
from ...analysis.program import analyze_program
from ...errors import AnalysisError, CompilationError, ExecutionError
from ..ir.analysis import topological_order
from ..ir.nodes import TemporalExpr, TiltProgram
from ..ir.validation import validate_program
from ..lineage.boundary import BoundarySpec, resolve_boundaries
from ..optimizer.passes import PassManager, default_pass_manager
from ..runtime.ssbuf import SSBuf
from . import native
from .native import NATIVE_TIER, NUMPY_TIER
from .pysource import ELEMENT_FUNCTION_NAME, KERNEL_FUNCTION_NAME, KernelSpec, generate_kernel_spec
from .runtime_support import KernelRuntime

__all__ = ["CompiledKernel", "CompiledQuery", "compile_program", "resolve_codegen_tier"]


def resolve_codegen_tier(codegen_tier: str) -> str:
    """Resolve a user-facing tier name to a concrete one.

    ``"auto"`` picks the native tier exactly when its toolchain is present;
    unknown names raise :class:`CompilationError`.
    """
    if codegen_tier not in native.CODEGEN_TIERS:
        raise CompilationError(
            f"unknown codegen tier {codegen_tier!r} (expected one of {native.CODEGEN_TIERS})"
        )
    if codegen_tier == "auto":
        return NATIVE_TIER if native.native_available() else NUMPY_TIER
    return codegen_tier

#: per-process kernel rebuild cache, keyed by spec content digest.  When a
#: pickled kernel arrives in a worker process (or is unpickled repeatedly in
#: one), the generated source is compiled once and the instantiated kernel
#: reused — rebuilding is the per-process analogue of the engine's compile
#: cache, and like it the cache is LRU-bounded so a long-lived worker
#: serving an unbounded stream of distinct queries releases old kernels
#: (owners of a live CompiledQuery keep their kernels referenced anyway).
_KERNEL_REBUILD_CACHE: "OrderedDict[Tuple[str, str], CompiledKernel]" = OrderedDict()
_KERNEL_REBUILD_LOCK = threading.Lock()
_KERNEL_REBUILD_LIMIT = 128


def _rebuild_kernel(spec: KernelSpec, tier: str = NUMPY_TIER) -> "CompiledKernel":
    """Unpickle hook for :class:`CompiledKernel` (module-level so it pickles
    by reference).  The requested codegen tier rides in the pickle, so a
    process-pool worker rebuilding a native-tier kernel re-instantiates it
    natively (hitting the shared disk cache rather than the C compiler)."""
    return CompiledKernel.from_spec(spec, tier=tier)


class CompiledKernel:
    """One executable kernel: generated source + its runtime support object.

    The class separates *what a kernel is* (the :class:`KernelSpec`: sources,
    aggregate descriptors, access pattern — picklable whenever its aggregates
    are) from *a kernel instantiated in this process* (the exec'd function
    and its :class:`KernelRuntime`, which never cross a process boundary).
    Pickling therefore ships only the spec; unpickling re-instantiates
    through the per-process rebuild cache.
    """

    def __init__(self, spec: KernelSpec, tier: str = NUMPY_TIER):
        self.spec = spec
        #: the *requested* codegen tier; :attr:`active_tier` is what actually
        #: serves ``run`` after any per-kernel fallback
        self.tier = tier
        element_functions = [
            self._compile_function(src, ELEMENT_FUNCTION_NAME, f"<tilt-element-{spec.name}-{i}>")
            for i, src in enumerate(spec.element_sources)
        ]
        self.runtime = KernelRuntime(spec.accesses, spec.tdom, spec.aggregates, element_functions)
        self._function = self._compile_function(
            spec.source, KERNEL_FUNCTION_NAME, f"<tilt-kernel-{spec.name}>"
        )
        self._native = None
        self.native_fallback_reason: Optional[str] = None
        self.native_build_seconds = 0.0
        if tier == NATIVE_TIER:
            import time as _time

            started = _time.perf_counter()
            self._native, self.native_fallback_reason = native.instantiate(spec)
            self.native_build_seconds = _time.perf_counter() - started
        self.active_tier = NATIVE_TIER if self._native is not None else NUMPY_TIER

    @classmethod
    def from_spec(cls, spec: KernelSpec, tier: str = NUMPY_TIER) -> "CompiledKernel":
        """Instantiate a kernel from its spec, reusing a previous
        instantiation of an identical (spec, tier) in this process."""
        key = (spec.digest(), tier)
        with _KERNEL_REBUILD_LOCK:
            kernel = _KERNEL_REBUILD_CACHE.get(key)
            if kernel is not None:
                _KERNEL_REBUILD_CACHE.move_to_end(key)
                return kernel
        # compile outside the lock: kernel compilation is the slow part and
        # two concurrent rebuilds of the same spec are merely redundant
        kernel = cls(spec, tier=tier)
        with _KERNEL_REBUILD_LOCK:
            existing = _KERNEL_REBUILD_CACHE.get(key)
            if existing is not None:
                _KERNEL_REBUILD_CACHE.move_to_end(key)
                return existing
            _KERNEL_REBUILD_CACHE[key] = kernel
            while len(_KERNEL_REBUILD_CACHE) > _KERNEL_REBUILD_LIMIT:
                _KERNEL_REBUILD_CACHE.popitem(last=False)
            return kernel

    def __reduce__(self):
        return (_rebuild_kernel, (self.spec, self.tier))

    @staticmethod
    def _compile_function(source: str, function_name: str, filename: str):
        namespace: Dict[str, object] = {}
        try:
            code = compile(source, filename, "exec")
            exec(code, namespace)  # noqa: S102 - intentional: this *is* the code generator
        except SyntaxError as exc:  # pragma: no cover - codegen bug guard
            raise CompilationError(f"generated source failed to compile: {exc}\n{source}") from exc
        return namespace[function_name]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def source(self) -> str:
        return self.spec.source

    def run(
        self,
        env: Mapping[str, SSBuf],
        t_start: float,
        t_end: float,
        runtime: Optional[KernelRuntime] = None,
    ) -> SSBuf:
        """Execute the kernel over ``(t_start, t_end]``.

        ``runtime`` substitutes a caller-owned runtime for the kernel's
        shared immutable one — incremental sessions pass their private
        :class:`~repro.core.codegen.incremental.IncrementalKernelRuntime`
        here so reductions hit persistent per-session state.  A runtime
        override therefore forces the NumPy path even on a native-tier
        kernel: the override's whole point is interposing on ``rt.reduce``
        calls, which the fused C loop does not make.
        """
        if runtime is None and self._native is not None:
            return self._native.run(env, t_start, t_end, self.runtime)
        return self._function(env, t_start, t_end, runtime if runtime is not None else self.runtime)


@dataclass
class CompiledQuery:
    """A fully compiled TiLT query, ready for (parallel) execution.

    Attributes
    ----------
    program:
        The optimized program the kernels were generated from.
    boundary:
        Resolved boundary conditions (drives partitioning).
    kernels:
        One kernel per temporal expression, in evaluation order.
    pass_manager:
        The pass manager that optimized the program (kept for its history /
        statistics; useful for the Figure 10 style sensitivity analysis).
    report:
        The static-analysis :class:`~repro.analysis.findings.ProgramReport`
        that proved the program's bounds safety (error-free by construction:
        ``compile_program`` raises :class:`AnalysisError` otherwise).

    A compiled query is picklable whenever all of its aggregates are
    (built-ins always; custom aggregates only when their callables are
    module-level functions).  Pickling ships the program, the boundary spec
    and the kernel *specs*; unpickling re-instantiates the kernels through
    the per-process rebuild cache.  :meth:`pickle_payload` is the
    process-backend entry point and degrades to ``None`` instead of raising
    when the query cannot cross a process boundary.
    """

    program: TiltProgram
    boundary: BoundarySpec
    kernels: List[CompiledKernel]
    pass_manager: Optional[PassManager] = None
    report: Optional[ProgramReport] = None

    def __getstate__(self):
        # the pass manager holds optimizer history (closures over pass
        # objects) that is neither needed by a worker nor reliably
        # picklable; the cached payload is process-local by definition.
        # The analysis report is likewise a coordinator-side artifact —
        # workers receive proof-stamped kernel specs, not the diagnostics.
        return {
            "program": self.program,
            "boundary": self.boundary,
            "kernels": self.kernels,
            "pass_manager": None,
            "report": None,
        }

    def __setstate__(self, state):
        self.__dict__.update(state)

    def pickle_payload(self) -> Optional[Tuple[str, bytes]]:
        """``(digest, pickled bytes)`` for process-pool dispatch, or ``None``.

        The bytes are computed once and cached: a long-running query is
        serialized a single time no matter how many partitions are shipped.
        ``None`` means the query's artifacts cannot cross a process boundary
        (e.g. lambda-based custom aggregates) and the caller should fall
        back to in-process execution.
        """
        payload = self.__dict__.get("_payload", False)
        if payload is False:
            try:
                blob = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
                payload = (hashlib.sha256(blob).hexdigest(), blob)
            except (pickle.PicklingError, TypeError, AttributeError, ValueError):
                # the unpicklable-artifact cases (lambda aggregates and the
                # like); anything else — MemoryError, a bug in a component's
                # __reduce__ — propagates instead of being silently cached
                # as "cannot use the process backend"
                payload = None
            self.__dict__["_payload"] = payload
        return payload

    @property
    def picklable(self) -> bool:
        """True when this query can be dispatched to a process pool."""
        return self.pickle_payload() is not None

    @property
    def output(self) -> str:
        return self.program.output

    @property
    def fused(self) -> bool:
        """True when the whole query collapsed into a single kernel."""
        return len(self.kernels) == 1

    @property
    def codegen_tiers(self) -> Dict[str, str]:
        """Per-kernel *active* tier (post-fallback), keyed by kernel name."""
        return {k.name: k.active_tier for k in self.kernels}

    def kernel_named(self, name: str) -> CompiledKernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)

    def sources(self) -> str:
        """Concatenated generated sources (debugging / golden tests)."""
        return "\n\n".join(k.spec.describe() for k in self.kernels)

    def run(self, inputs: Mapping[str, SSBuf], t_start: float, t_end: float) -> SSBuf:
        """Execute the query over ``(t_start, t_end]`` and return the output buffer.

        Intermediate (non-output) expressions are materialized over an
        interval extended by the resolved margins so that downstream kernels
        can read into the past/future they need.
        """
        env: Dict[str, SSBuf] = dict(inputs)
        missing = [name for name in self.program.inputs if name not in env]
        if missing:
            raise ExecutionError(f"missing input streams: {missing}")
        lookback = self.boundary.max_lookback
        lookahead = self.boundary.max_lookahead
        for kernel in self.kernels:
            if kernel.name == self.program.output:
                env[kernel.name] = kernel.run(env, t_start, t_end)
            else:
                env[kernel.name] = kernel.run(env, t_start - lookback, t_end + lookahead)
        return env[self.program.output]


def compile_program(
    program: TiltProgram,
    *,
    optimize: bool = True,
    enable_fusion: bool = True,
    pass_manager: Optional[PassManager] = None,
    codegen_tier: str = NUMPY_TIER,
) -> CompiledQuery:
    """Validate, optimize and lower a TiLT program to a :class:`CompiledQuery`.

    ``optimize=False`` skips the optimizer entirely (the "UnOpt" configuration
    of the Figure 10 study); ``enable_fusion=False`` keeps the cleanup passes
    but disables operator fusion.  ``codegen_tier`` selects the lowering
    tier per kernel (``"numpy"``, ``"native"`` or ``"auto"``); native-tier
    kernels that cannot be lowered fall back to NumPy individually.
    """
    tier = resolve_codegen_tier(codegen_tier)
    validate_program(program)
    pm: Optional[PassManager] = None
    if optimize:
        pm = pass_manager or default_pass_manager(enable_fusion=enable_fusion)
        program = pm.run(program)
    boundary = resolve_boundaries(program)
    # bounds-safety gate: the analyzer independently re-composes every
    # access extent and cross-checks it against the boundary plan; kernels
    # are generated only for proven programs, and each spec carries the
    # proof token the native tier demands before lowering to raw-array C.
    # Reports are cached by program digest, so recompilation is one lookup.
    report = analyze_program(program, boundary=boundary)
    if report.has_errors:
        details = "; ".join(f.format() for f in report.errors())
        raise AnalysisError(
            f"static analysis refused the program: {details}", report=report
        )
    proof = report.proof_token()
    order = topological_order(program)
    by_name: Dict[str, TemporalExpr] = {te.name: te for te in program.exprs}
    specs = [generate_kernel_spec(by_name[name]) for name in order]
    for spec in specs:
        spec.bounds_proof = f"{proof}:{spec.name}"
    kernels = [CompiledKernel(spec, tier=tier) for spec in specs]
    return CompiledQuery(
        program=program, boundary=boundary, kernels=kernels, pass_manager=pm, report=report
    )
