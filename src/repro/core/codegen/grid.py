"""Evaluation-grid computation for temporal expressions.

Section 6.1.3: naively evaluating a temporal expression at every tick of its
time-domain precision is wasteful because the output can only change when one
of its inputs changes.  The code generator therefore advances the loop
counter directly to the next time at which an *enclosing snapshot* of any
input access changes:

* a point access ``~x[t+o]`` changes at ``c - o`` for every change time ``c``
  of ``~x``;
* a window access ``~x[t+a : t+b]`` changes when a snapshot enters
  (``c - b``) or leaves (``c - a``) the window.

When the time domain has a non-zero precision ``p``, candidate times are
snapped *up* to the next multiple of ``p`` (the output is only allowed to
change on the precision grid).  The domain end ``t_end`` is always included
so a materialized buffer covers its whole output interval, which downstream
(un-fused) consumers rely on.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from ..ir.nodes import Expr, TDom
from ..lineage.boundary import AccessPattern, collect_accesses
from ..runtime.ssbuf import SSBuf

__all__ = ["evaluation_times", "evaluation_times_for_accesses", "snap_to_precision"]


def snap_to_precision(times: np.ndarray, precision: float) -> np.ndarray:
    """Snap candidate times up to the next multiple of ``precision``."""
    if precision <= 0 or len(times) == 0:
        return times
    snapped = np.ceil(times / precision - 1e-9) * precision
    return snapped


def evaluation_times_for_accesses(
    accesses: Mapping[str, AccessPattern],
    env: Mapping[str, SSBuf],
    tdom: TDom,
    t_start: float,
    t_end: float,
) -> np.ndarray:
    """Output timestamps at which an expression with the given access pattern
    must be evaluated over ``(t_start, t_end]``."""
    if t_end <= t_start:
        return np.empty(0)
    candidates = [np.array([t_end])]
    for ref, pattern in accesses.items():
        buf = env.get(ref)
        if buf is None or len(buf) == 0:
            continue
        for offset in pattern.boundary_offsets():
            # input changes at time c make the output change at c - offset;
            # the buffer's start_time is an implicit change point (φ → first
            # value), so it is included as well.
            changes = buf.change_times_in(t_start + offset, t_end + offset)
            pieces = [changes - offset] if len(changes) else []
            if t_start + offset < buf.start_time <= t_end + offset:
                pieces.append(np.array([buf.start_time - offset]))
            candidates.extend(pieces)
    times = np.unique(np.concatenate(candidates))
    times = snap_to_precision(times, tdom.precision)
    if tdom.precision > 0:
        # the value *before* a change must also be materialized on the grid:
        # if the output changes at grid point g, the old value's last holding
        # point g - precision needs an explicit snapshot.
        times = np.concatenate([times, times - tdom.precision])
    times = np.unique(times)
    mask = (times > t_start + 1e-12) & (times <= t_end + 1e-12)
    times = times[mask]
    if len(times) == 0 or times[-1] < t_end:
        times = np.append(times, t_end)
    return times


def evaluation_times(
    expr: Expr,
    env: Mapping[str, SSBuf],
    tdom: TDom,
    t_start: float,
    t_end: float,
) -> np.ndarray:
    """Convenience wrapper: derive the access pattern of ``expr`` first."""
    return evaluation_times_for_accesses(collect_accesses(expr), env, tdom, t_start, t_end)
