"""Persistent per-kernel window state for incremental tick execution.

A full-recompute streaming tick rebuilds every range-aggregation index over
the whole carry-over tail, so tick cost is O(lookback + new events).  The
classes here make tick cost O(new events): each reduction site of a kernel
(one ``rt.reduce`` call in the generated source, recorded in
:attr:`KernelSpec.reduce_sites <repro.core.codegen.pysource.KernelSpec>`)
owns a state object that *persists across ticks* and only ingests the input
snapshots that arrived since the previous tick.

Site strategies (the Init/Acc/Result/Deacc escalation of the paper's
aggregation template, Section 6.1.2):

* :class:`ExtendablePrefixIndex` — for aggregates with a prefix
  decomposition (Sum, Count, Mean, SumSquares, Variance, StdDev).  The
  growable counterpart of
  :class:`~repro.windowing.prefix.PrefixRangeIndex`: appending a tick's tail
  extends the component cumsums in O(new); queries use the identical
  ``searchsorted`` + prefix-difference math.  Extended-precision aggregates
  (variance/stddev) accumulate in longdouble around a *fixed* center — the
  per-buffer re-centering of ``_variance_prefix_arrays`` cannot be applied
  chunk-wise, but variance is shift-invariant so any fixed finite center
  preserves the result.
* :class:`OnlineSweepSite` — for everything else, a monotone two-pointer
  sweep over the site's retained snapshots driving one of the online
  aggregators from :mod:`repro.windowing.online`
  (:func:`~repro.windowing.online.make_online_aggregator` escalation:
  Subtract-on-Evict for invertible aggregates, two-stacks for mergeable
  ones, full re-folding otherwise).  Correct because a session's query
  windows are monotone: evaluation times strictly increase across ticks
  (every tick evaluates ``(t_emitted, w]`` with ``w`` advancing), so window
  edges only ever move forward.

Persistent sites apply only to reductions over *program inputs* evaluated by
the session's **output** kernel: input columns are append-only (which makes
"ingest the new tail" well-defined) and the output interval advances
monotonically (which the sweep pointers require).  Reductions over
intermediate expressions — which are rebuilt from scratch each tick over
their margin window — fall back to the per-invocation
:class:`~repro.windowing.sliding.RangeAggregator` path of the base runtime.

:class:`SessionStateStore` aggregates the per-kernel states for one
streaming session, keyed by the kernel's spec digest.  It also exposes the
*retention floor* the session's carry-over pruning must respect: input
snapshots newer than a site's ingest horizon have not been consumed yet and
must survive pruning (see ``StreamingSession._prune_floor``).
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Mapping, MutableMapping, Optional, Tuple

import numpy as np

from ...errors import ExecutionError
from ...windowing.functions import AggregateFunction
from ...windowing.online import make_online_aggregator
from ..runtime.ssbuf import SSBuf
from .runtime_support import KernelRuntime

__all__ = [
    "site_strategy",
    "ExtendablePrefixIndex",
    "OnlineSweepSite",
    "KernelIncrementalState",
    "IncrementalKernelRuntime",
    "SessionStateStore",
]

_INF = float("inf")

#: entries already dead at the front of a site's arrays are compacted away
#: only once they outnumber the live tail and exceed this count — pruning
#: is O(log n) per tick and O(live) amortized.
_COMPACT_MIN_DEAD = 256


def site_strategy(agg: AggregateFunction) -> str:
    """Incremental strategy used for a reduction over ``agg``.

    ``'prefix'`` → :class:`ExtendablePrefixIndex`; the online strategies all
    run through :class:`OnlineSweepSite` with the corresponding structure
    from :mod:`repro.windowing.online`.
    """
    if agg.prefix_arrays is not None and agg.prefix_result is not None:
        return "prefix"
    if agg.invertible:
        return "subtract-on-evict"
    if agg.mergeable:
        return "two-stacks"
    return "refold"


class _GrowableArray:
    """Append-only NumPy array with geometric growth and front compaction."""

    __slots__ = ("_data", "_n")

    def __init__(self, dtype=np.float64, seed: Optional[List[float]] = None):
        self._data = np.zeros(16, dtype=dtype)
        self._n = 0
        if seed:
            self.append(np.asarray(seed, dtype=dtype))

    def __len__(self) -> int:
        return self._n

    @property
    def view(self) -> np.ndarray:
        return self._data[: self._n]

    def append(self, arr: np.ndarray) -> None:
        m = len(arr)
        if m == 0:
            return
        if self._n + m > len(self._data):
            cap = max(len(self._data) * 2, self._n + m)
            grown = np.empty(cap, dtype=self._data.dtype)
            grown[: self._n] = self._data[: self._n]
            self._data = grown
        self._data[self._n : self._n + m] = arr
        self._n += m

    def drop_prefix(self, k: int) -> None:
        if k <= 0:
            return
        live = self._data[k : self._n].copy()
        self._n -= k
        self._data[: self._n] = live


class _SiteBase:
    """Shared ingest logic: consume the input column's new tail by time."""

    __slots__ = ("agg", "_elem_idx", "_ingested_through", "_times", "_istarts")

    def __init__(self, agg: AggregateFunction, elem_idx: int):
        self.agg = agg
        self._elem_idx = elem_idx
        self._ingested_through = -_INF
        self._times = _GrowableArray()
        self._istarts = _GrowableArray()

    @property
    def ingested_through(self) -> float:
        """Input time up to which this site has consumed snapshots."""
        return self._ingested_through

    def retained(self) -> int:
        """Snapshots currently held in the site's own arrays."""
        return len(self._times)

    def ingest(self, buf: SSBuf, rt: KernelRuntime) -> None:
        """Append every snapshot of ``buf`` newer than the ingest horizon.

        Idempotent within a tick (a second call over the same buffer is a
        no-op) and robust to carry-over pruning between ticks: snapshots the
        column dropped below the retention floor are — by the margin
        invariant — strictly older than any window a future tick queries.
        """
        times = buf.times
        n = len(times)
        idx = int(np.searchsorted(times, self._ingested_through, side="right"))
        if idx >= n:
            return
        new_times = np.asarray(times[idx:], dtype=np.float64)
        # interval starts of the tail, without materializing the whole
        # buffer's interval_starts (that would be O(retained) per tick)
        first_start = buf.start_time if idx == 0 else float(times[idx - 1])
        new_istarts = np.empty(n - idx, dtype=np.float64)
        new_istarts[0] = first_start
        new_istarts[1:] = times[idx : n - 1]
        values = np.asarray(buf.values[idx:], dtype=np.float64)
        ok = np.asarray(buf.valid[idx:], dtype=bool)
        if self._elem_idx >= 0:
            mapped, mapped_ok = rt.element_functions[self._elem_idx](values, rt)
            values = np.asarray(mapped, dtype=np.float64)
            ok = ok & np.asarray(mapped_ok, dtype=bool)
        self._times.append(new_times)
        self._istarts.append(new_istarts)
        self._extend(new_times, values, ok)
        self._ingested_through = float(new_times[-1])

    def _extend(self, times: np.ndarray, values: np.ndarray, ok: np.ndarray) -> None:
        raise NotImplementedError

    def _range_indices(
        self, window_starts: np.ndarray, window_ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        lo = np.searchsorted(self._times.view, window_starts, side="right")
        hi = np.searchsorted(self._istarts.view, window_ends, side="left")
        return lo, hi


class ExtendablePrefixIndex(_SiteBase):
    """Growable prefix-sum range index (see module docstring).

    Query math is identical to
    :class:`~repro.windowing.prefix.PrefixRangeIndex`; only the construction
    differs — component cumsums are *extended* per tick instead of rebuilt.
    Pruning rebases the cumsums to the new front so totals stay bounded by
    the retained window, which keeps floating-point drift of a long-running
    session within the tolerance of ``SSBuf.__eq__``.
    """

    __slots__ = ("dtype", "_center", "_prefixes", "_valid_prefix")

    strategy = "prefix"

    def __init__(self, agg: AggregateFunction, elem_idx: int):
        if agg.prefix_arrays is None or agg.prefix_result is None:
            raise ValueError(f"aggregate {agg.name!r} has no prefix decomposition")
        super().__init__(agg, elem_idx)
        self.dtype = np.longdouble if agg.prefix_extended_precision else np.float64
        self._center: Optional[float] = None
        self._prefixes: Optional[List[_GrowableArray]] = None
        self._valid_prefix = _GrowableArray(seed=[0.0])

    def _extend(self, times: np.ndarray, values: np.ndarray, ok: np.ndarray) -> None:
        masked = np.where(ok, values, 0.0).astype(self.dtype, copy=False)
        if self.agg.prefix_extended_precision:
            # fixed center (variance is shift-invariant); chosen from the
            # first chunk so components stay small for large-mean data
            if self._center is None:
                self._center = float(np.mean(np.asarray(masked, dtype=np.float64))) if len(masked) else 0.0
            centered = masked - self.dtype(self._center)
            components = (centered, centered * centered, np.ones(len(masked), dtype=self.dtype))
        else:
            components = self.agg.prefix_arrays(masked)
        if self._prefixes is None:
            self._prefixes = [
                _GrowableArray(dtype=self.dtype, seed=[0.0]) for _ in components
            ]
        for grow, comp in zip(self._prefixes, components):
            comp = np.where(ok, np.asarray(comp, dtype=self.dtype), 0.0)
            grow.append(np.cumsum(comp, dtype=self.dtype) + grow.view[-1])
        self._valid_prefix.append(
            np.cumsum(ok.astype(np.float64)) + self._valid_prefix.view[-1]
        )

    def query(
        self, window_starts: np.ndarray, window_ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate each window ``(ws_i, we_i]``; φ when no valid snapshot."""
        window_starts = np.asarray(window_starts, dtype=np.float64)
        window_ends = np.asarray(window_ends, dtype=np.float64)
        if self._prefixes is None:
            n = len(window_starts)
            return np.zeros(n), np.zeros(n, dtype=bool)
        lo, hi = self._range_indices(window_starts, window_ends)
        hi = np.maximum(hi, lo)
        vp = self._valid_prefix.view
        counts = vp[hi] - vp[lo]
        sums = [p.view[hi] - p.view[lo] for p in self._prefixes]
        with np.errstate(invalid="ignore", divide="ignore"):
            results = np.asarray(self.agg.prefix_result(*sums), dtype=np.float64)
        valid = counts > 0
        return np.where(valid, results, 0.0), valid

    def prune(self, t: float) -> None:
        """Drop (amortized) snapshots at or before ``t`` and rebase cumsums."""
        k = int(np.searchsorted(self._times.view, t, side="right"))
        if k < _COMPACT_MIN_DEAD or k * 2 < len(self._times):
            return
        self._times.drop_prefix(k)
        self._istarts.drop_prefix(k)
        self._valid_prefix.drop_prefix(k)
        self._valid_prefix.view[:] -= self._valid_prefix.view[0]
        if self._prefixes is not None:
            for p in self._prefixes:
                p.drop_prefix(k)
                p.view[:] -= p.view[0].copy()


class OnlineSweepSite(_SiteBase):
    """Monotone two-pointer sweep over one online aggregator.

    ``insert`` consumes snapshots entering the newest queried window,
    ``evict`` removes snapshots that fell out of the oldest edge; both
    pointers only move forward (session windows are monotone), so each
    retained snapshot is inserted and evicted at most once — amortized
    O(new events) per tick regardless of lookback depth.
    """

    __slots__ = ("strategy", "_aggregator", "_values", "_valid", "_insert_idx", "_evict_idx")

    def __init__(self, agg: AggregateFunction, elem_idx: int):
        super().__init__(agg, elem_idx)
        self.strategy = site_strategy(agg)
        self._aggregator = make_online_aggregator(agg)
        self._values = _GrowableArray()
        self._valid = _GrowableArray(dtype=bool)
        self._insert_idx = 0
        self._evict_idx = 0

    def _extend(self, times: np.ndarray, values: np.ndarray, ok: np.ndarray) -> None:
        self._values.append(values)
        self._valid.append(ok)

    def query(
        self, window_starts: np.ndarray, window_ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate each window ``(ws_i, we_i]``; φ when no valid snapshot.

        Windows that overlap no snapshot leave the sweep state untouched, so
        duplicate or empty queries are harmless.
        """
        window_starts = np.asarray(window_starts, dtype=np.float64)
        window_ends = np.asarray(window_ends, dtype=np.float64)
        lo, hi = self._range_indices(window_starts, window_ends)
        n = len(window_starts)
        out = np.zeros(n)
        ok = np.zeros(n, dtype=bool)
        values = self._values.view
        valid = self._valid.view
        state = self._aggregator
        insert_idx = self._insert_idx
        evict_idx = self._evict_idx
        for i in range(n):
            l, h = int(lo[i]), int(hi[i])
            if h <= l:
                continue
            while insert_idx < h:
                if valid[insert_idx]:
                    state.insert(float(values[insert_idx]))
                insert_idx += 1
            target = l if l < insert_idx else insert_idx
            while evict_idx < target:
                if valid[evict_idx]:
                    state.evict(float(values[evict_idx]))
                evict_idx += 1
            out[i], ok[i] = state.query()
        self._insert_idx = insert_idx
        self._evict_idx = evict_idx
        return out, ok

    def prune(self, t: float) -> None:
        """Drop (amortized) already-evicted snapshots at or before ``t``."""
        k = int(np.searchsorted(self._times.view, t, side="right"))
        k = min(k, self._evict_idx)
        if k < _COMPACT_MIN_DEAD or k * 2 < len(self._times):
            return
        self._times.drop_prefix(k)
        self._istarts.drop_prefix(k)
        self._values.drop_prefix(k)
        self._valid.drop_prefix(k)
        self._insert_idx -= k
        self._evict_idx -= k


class KernelIncrementalState:
    """Persistent reduction-site states for one kernel.

    Sites are created from the spec's ``reduce_sites`` descriptor for every
    reduction over a program input; prefix-capable aggregates share one
    index per ``(ref, aggregate, element-map)`` — the index is
    window-agnostic, exactly like the per-invocation aggregator cache of the
    base runtime — while sweep sites are per-window (their pointers track
    one window's edges).
    """

    def __init__(self, spec, input_refs):
        self.spec = spec
        self.input_refs = frozenset(input_refs)
        self._sites: Dict[tuple, _SiteBase] = {}
        for ref, so, eo, agg_idx, elem_idx in getattr(spec, "reduce_sites", ()):
            if ref in self.input_refs:
                self.site(ref, so, eo, agg_idx, elem_idx)

    def site(
        self, ref: str, start_offset: float, end_offset: float, agg_idx: int, elem_idx: int
    ) -> Optional[_SiteBase]:
        """The persistent site for one ``rt.reduce`` call (``None`` when the
        reduction targets an intermediate and must use the per-run path)."""
        if ref not in self.input_refs:
            return None
        agg = self.spec.aggregates[agg_idx]
        if site_strategy(agg) == "prefix":
            key = (ref, None, None, agg_idx, elem_idx)
            existing = self._sites.get(key)
            if existing is None:
                existing = self._sites[key] = ExtendablePrefixIndex(agg, elem_idx)
            return existing
        key = (ref, float(start_offset), float(end_offset), agg_idx, elem_idx)
        existing = self._sites.get(key)
        if existing is None:
            existing = self._sites[key] = OnlineSweepSite(agg, elem_idx)
        return existing

    @property
    def sites(self) -> Mapping[tuple, _SiteBase]:
        return dict(self._sites)

    def ingested_floor(self) -> float:
        """Oldest ingest horizon across sites — input newer than this has
        not been consumed yet and must not be pruned."""
        horizons = [s.ingested_through for s in self._sites.values()]
        return min(horizons) if horizons else _INF

    def retained(self) -> int:
        return sum(s.retained() for s in self._sites.values())

    def prune(self, t: float) -> None:
        for s in self._sites.values():
            s.prune(t)

    def clear(self) -> None:
        """Forget all accumulated state (sites re-ingest from the retained
        carry-over on the next tick) — the rewind/replay reset."""
        spec, refs = self.spec, self.input_refs
        self._sites.clear()
        for ref, so, eo, agg_idx, elem_idx in getattr(spec, "reduce_sites", ()):
            if ref in refs:
                self.site(ref, so, eo, agg_idx, elem_idx)


class IncrementalKernelRuntime(KernelRuntime):
    """A :class:`KernelRuntime` whose reductions hit persistent site state.

    Shares the compiled kernel's registries (aggregates, element maps,
    access patterns) but is **session-private**: the shared immutable
    runtime of a :class:`~repro.core.codegen.compiled.CompiledKernel` is
    never mutated, so concurrent sessions — incremental or not — over the
    same compiled query cannot interfere.
    """

    def __init__(self, base: KernelRuntime, state: KernelIncrementalState):
        super().__init__(base.accesses, base.tdom, base.aggregates, base.element_functions)
        self.state = state

    def reduce(self, env, ref, start_offset, end_offset, agg_idx, elem_idx, ts, cache):
        site = self.state.site(ref, start_offset, end_offset, agg_idx, elem_idx)
        if site is None:
            return super().reduce(
                env, ref, start_offset, end_offset, agg_idx, elem_idx, ts, cache
            )
        buf = env.get(ref)
        if buf is None:
            raise ExecutionError(f"unknown temporal object ~{ref}")
        site.ingest(buf, self)
        return site.query(ts + start_offset, ts + end_offset)


class SessionStateStore:
    """Per-session registry of kernel states, keyed by spec digest.

    The digest key makes the store line up with the engine's other caches
    (per-process kernel rebuilds, compile cache): two kernels with the same
    digest are interchangeable executables, so their incremental states have
    the same shape.  State itself is never shared across sessions — each
    session advances its own watermark.
    """

    def __init__(self, compiled, registry=None):
        self._compiled = compiled
        self._input_refs = frozenset(compiled.program.inputs)
        self._states: "Dict[str, KernelIncrementalState]" = {}
        self._runtimes: "Dict[int, IncrementalKernelRuntime]" = {}
        # optional MetricsRegistry hooks: a *hit* is a tick reusing persistent
        # state (the incremental win); a *miss* creates fresh state
        self._m_hits = self._m_misses = None
        if registry is not None:
            self._m_hits = registry.counter(
                "repro_incremental_state_hits_total",
                "Kernel lookups served from persistent incremental state",
            )
            self._m_misses = registry.counter(
                "repro_incremental_state_misses_total",
                "Kernel lookups that created fresh incremental state",
            )

    @property
    def states(self) -> Mapping[str, KernelIncrementalState]:
        return dict(self._states)

    def state_for(self, kernel) -> KernelIncrementalState:
        runtime = self.runtime_for(kernel)
        return runtime.state

    def runtime_for(self, kernel) -> IncrementalKernelRuntime:
        """Session-private incremental runtime for ``kernel`` (memoized, so
        the spec digest is computed once per kernel, not once per tick)."""
        memo = self._runtimes.get(id(kernel))
        if memo is not None:
            if self._m_hits is not None:
                self._m_hits.inc()
            return memo
        try:
            digest = kernel.spec.digest()
        except (pickle.PicklingError, TypeError, AttributeError, ValueError):
            # specs with unpicklable custom aggregates have no content
            # digest (they cannot leave the process anyway); key by
            # identity — the session holds its kernels alive, so the id is
            # stable for the store's lifetime
            digest = f"unpicklable:{id(kernel.spec)}"
        state = self._states.get(digest)
        if state is None:
            if self._m_misses is not None:
                self._m_misses.inc()
            state = self._states[digest] = KernelIncrementalState(
                kernel.spec, self._input_refs
            )
        elif self._m_hits is not None:
            self._m_hits.inc()
        runtime = IncrementalKernelRuntime(kernel.runtime, state)
        self._runtimes[id(kernel)] = runtime
        return runtime

    def ingested_floor(self) -> float:
        """Oldest input time still awaiting consumption by some site."""
        floors = [s.ingested_floor() for s in self._states.values()]
        return min(floors) if floors else _INF

    def retained_snapshots(self) -> int:
        """Total snapshots held across all site states (introspection)."""
        return sum(s.retained() for s in self._states.values())

    def prune(self, t: float) -> None:
        for state in self._states.values():
            state.prune(t)

    def clear(self) -> None:
        for state in self._states.values():
            state.clear()
