"""Interpreted (un-compiled) execution of TiLT programs.

This backend evaluates every temporal expression of a program one at a time,
materializing the intermediate snapshot buffers between them — exactly the
execution model of an interpretation-based SPE, and the configuration the
paper labels "TiLT UnOpt" in the Figure 10 sensitivity study.  It is also the
semantic reference implementation: the property-based tests assert that the
compiled NumPy backend produces identical snapshot buffers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ...errors import ExecutionError
from ..ir.analysis import topological_order
from ..ir.nodes import (
    ELEM_VAR,
    BinOp,
    Call,
    Coalesce,
    Const,
    Expr,
    IfThenElse,
    IsValid,
    Let,
    Phi,
    Reduce,
    TDom,
    TIndex,
    TRef,
    TWindow,
    TemporalExpr,
    TiltProgram,
    UnaryOp,
    Var,
)
from ..ops import eval_binop, eval_call, eval_unop
from ..runtime.ssbuf import SSBuf
from .grid import evaluation_times

__all__ = ["Interpreter", "evaluate_expr_at", "evaluate_temporal_expr", "evaluate_program"]

ScalarResult = Tuple[float, bool]


def evaluate_expr_at(
    expr: Expr,
    t: float,
    env: Mapping[str, SSBuf],
    bindings: Optional[Dict[str, ScalarResult]] = None,
) -> ScalarResult:
    """Evaluate a scalar TiLT expression at time ``t``.

    Returns ``(value, valid)``; φ-propagation follows the shared operator
    semantics in :mod:`repro.core.ops`.
    """
    bindings = bindings if bindings is not None else {}

    if isinstance(expr, Const):
        return (expr.value, True)
    if isinstance(expr, Phi):
        return (0.0, False)
    if isinstance(expr, Var):
        if expr.name not in bindings:
            raise ExecutionError(f"unbound variable {expr.name!r}")
        return bindings[expr.name]
    if isinstance(expr, (TRef, TIndex)):
        name = expr.name if isinstance(expr, TRef) else expr.ref
        offset = 0.0 if isinstance(expr, TRef) else expr.offset
        buf = env.get(name)
        if buf is None:
            raise ExecutionError(f"unknown temporal object ~{name}")
        return buf.value_at(t + offset)
    if isinstance(expr, Reduce):
        return _evaluate_reduce(expr, t, env, bindings)
    if isinstance(expr, TWindow):
        raise ExecutionError("windowed temporal object evaluated outside a reduction")
    if isinstance(expr, BinOp):
        lv, lok = evaluate_expr_at(expr.lhs, t, env, bindings)
        rv, rok = evaluate_expr_at(expr.rhs, t, env, bindings)
        if not (lok and rok):
            return (0.0, False)
        return eval_binop(expr.op, lv, rv)
    if isinstance(expr, UnaryOp):
        v, ok = evaluate_expr_at(expr.operand, t, env, bindings)
        if not ok:
            return (0.0, False)
        return eval_unop(expr.op, v)
    if isinstance(expr, IfThenElse):
        cv, cok = evaluate_expr_at(expr.cond, t, env, bindings)
        if not cok:
            return (0.0, False)
        branch = expr.then if cv != 0 else expr.orelse
        return evaluate_expr_at(branch, t, env, bindings)
    if isinstance(expr, IsValid):
        _, ok = evaluate_expr_at(expr.operand, t, env, bindings)
        return (1.0 if ok else 0.0, True)
    if isinstance(expr, Coalesce):
        v, ok = evaluate_expr_at(expr.operand, t, env, bindings)
        if ok:
            return (v, True)
        return evaluate_expr_at(expr.default, t, env, bindings)
    if isinstance(expr, Call):
        vals = []
        for arg in expr.args:
            v, ok = evaluate_expr_at(arg, t, env, bindings)
            if not ok:
                return (0.0, False)
            vals.append(v)
        return eval_call(expr.func, vals)
    if isinstance(expr, Let):
        scope = dict(bindings)
        for name, value in expr.bindings:
            scope[name] = evaluate_expr_at(value, t, env, scope)
        return evaluate_expr_at(expr.body, t, env, scope)
    raise ExecutionError(f"cannot evaluate IR node of type {type(expr).__name__}")


def _evaluate_reduce(
    expr: Reduce, t: float, env: Mapping[str, SSBuf], bindings: Dict[str, ScalarResult]
) -> ScalarResult:
    window = expr.window
    buf = env.get(window.ref)
    if buf is None:
        raise ExecutionError(f"unknown temporal object ~{window.ref}")
    ws = t + window.start_offset
    we = t + window.end_offset
    lo = int(np.searchsorted(buf.times, ws, side="right"))
    hi = int(np.searchsorted(buf.interval_starts, we, side="left"))
    values: List[float] = []
    for i in range(lo, hi):
        if not buf.valid[i]:
            continue
        v = float(buf.values[i])
        if expr.element is not None:
            scope = dict(bindings)
            scope[ELEM_VAR] = (v, True)
            mv, mok = evaluate_expr_at(expr.element, t, env, scope)
            if not mok:
                continue
            v = mv
        values.append(v)
    return expr.agg.fold(values)


def evaluate_temporal_expr(
    te: TemporalExpr,
    env: Mapping[str, SSBuf],
    t_start: float,
    t_end: float,
) -> SSBuf:
    """Materialize one temporal expression over ``(t_start, t_end]``."""
    times = evaluation_times(te.expr, env, te.tdom, t_start, t_end)
    if len(times) == 0:
        return SSBuf.empty(t_start)
    values = np.zeros(len(times))
    valid = np.zeros(len(times), dtype=bool)
    for i, t in enumerate(times):
        values[i], valid[i] = evaluate_expr_at(te.expr, float(t), env)
    # Note: the buffer is deliberately *not* compacted.  Reductions over a
    # derived temporal object fold one value per snapshot; merging adjacent
    # equal snapshots would silently change those counts (e.g. the mean of a
    # window containing repeated values).
    return SSBuf(times, values, valid, start_time=t_start)


def evaluate_program(
    program: TiltProgram,
    inputs: Mapping[str, SSBuf],
    t_start: float,
    t_end: float,
    boundary=None,
) -> Dict[str, SSBuf]:
    """Evaluate every temporal expression of a program (interpreted mode).

    Returns the full environment (inputs + all materialized intermediates);
    the output buffer is ``result[program.output]``.  When ``boundary`` (a
    :class:`~repro.core.lineage.BoundarySpec`) is given, intermediate
    expressions are materialized over a correspondingly extended interval so
    that consumers reading into the past/future find their data.
    """
    env: Dict[str, SSBuf] = dict(inputs)
    missing = [name for name in program.inputs if name not in env]
    if missing:
        raise ExecutionError(f"missing input streams: {missing}")
    lookback = boundary.max_lookback if boundary is not None else 0.0
    lookahead = boundary.max_lookahead if boundary is not None else 0.0
    order = topological_order(program)
    for name in order:
        te = program.expr_named(name)
        if name == program.output:
            env[name] = evaluate_temporal_expr(te, env, t_start, t_end)
        else:
            env[name] = evaluate_temporal_expr(te, env, t_start - lookback, t_end + lookahead)
    return env


class Interpreter:
    """Object wrapper around :func:`evaluate_program` (keeps a program and
    its resolved boundary around for repeated runs)."""

    def __init__(self, program: TiltProgram, boundary=None):
        self.program = program
        self.boundary = boundary

    def run(self, inputs: Mapping[str, SSBuf], t_start: float, t_end: float) -> SSBuf:
        """Run the program and return the output snapshot buffer."""
        env = evaluate_program(self.program, inputs, t_start, t_end, boundary=self.boundary)
        return env[self.program.output]
