"""Native (compiled-C) kernel lowering: the second codegen tier.

:mod:`repro.core.codegen.pysource` lowers a fused temporal expression to
vectorized NumPy source — every operator still pays Python dispatch, a
temporary, and one full array pass.  This module lowers the *same*
:class:`~repro.core.codegen.pysource.KernelSpec` to a single-pass,
loop-fused C kernel instead: point accesses become monotone two-pointer
cursors, window reductions query precomputed prefix/deque indexes, and the
whole scalar expression tree runs per output lane inside one loop — the
keep-hot-data-in-register move the paper makes with LLVM, made here with
``cffi`` (ABI mode, no setuptools) plus the system C compiler behind an
optional dependency.

Tier contract
-------------
The native tier is **bit-compatible** with the NumPy tier: for every
lowerable construct the emitted C replicates NumPy's observable arithmetic
exactly — sequential ``np.cumsum`` prefix sums, ``np.maximum``'s
first-operand-wins NaN ordering, extended ``long double`` accumulation for
variance/stddev with the centering mean computed by ``np.mean`` itself
(pairwise summation is not replicated in C; the one place it matters is
computed Python-side and passed in), hex-float constants, and
division-by-zero masking.  Constructs whose NumPy lowering is *not*
bit-replicable in portable C — pairwise-summed ``np.prod``, SIMD
transcendentals (``exp``/``log``/``sin``/``cos``/``pow``/``atan2``/``%``)
— and custom Python aggregates are **not lowered**: such kernels silently
stay on the NumPy tier, observable through :func:`stats` and the engine's
``repro_native_fallbacks_total`` counter.

Caching
-------
Compiled artifacts are cached at two levels, both keyed by
``KernelSpec.digest()``:

* an in-process LRU of instantiated :class:`NativeKernel` objects,
  bounded like ``_KERNEL_REBUILD_CACHE``;
* an on-disk ``.so`` cache (``REPRO_NATIVE_CACHE``, default under the
  system temp dir) written via per-process temp files and an atomic
  ``os.replace``, so process-pool workers and later sessions ``dlopen`` a
  ready-made artifact instead of re-running the C compiler on the hot
  path.  The generated ``.c`` source is kept next to the ``.so`` for
  debuggability.

Environment knobs: ``REPRO_NATIVE_CC`` (compiler, default ``cc``),
``REPRO_NATIVE_CACHE`` (disk cache directory), ``REPRO_NATIVE_DISABLE``
(force the tier unavailable — how tests and the no-dependency CI entry
simulate a missing optional dependency).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ...errors import ExecutionError
from ...windowing.functions import _BUILTIN_SINGLETONS
from ..ir.nodes import (
    ELEM_VAR,
    BinOp,
    Call,
    Coalesce,
    Const,
    Expr,
    IfThenElse,
    IsValid,
    Let,
    Phi,
    Reduce,
    TIndex,
    TRef,
    TWindow,
    UnaryOp,
    Var,
)
from .pysource import KernelSpec

__all__ = [
    "NUMPY_TIER",
    "NATIVE_TIER",
    "CODEGEN_TIERS",
    "native_available",
    "lowering_blockers",
    "instantiate",
    "precompile",
    "stats",
    "clear_caches",
    "NativeKernel",
]

NUMPY_TIER = "numpy"
NATIVE_TIER = "native"
#: accepted values for ``TiltEngine(codegen_tier=...)`` / ``REPRO_CODEGEN``
#: ("auto" resolves to native when the toolchain is present, else numpy)
CODEGEN_TIERS = (NUMPY_TIER, NATIVE_TIER, "auto")

_FUNC_NAME = "tilt_native"

# ---------------------------------------------------------------------- #
# lowerable construct sets — everything here has a C lowering that matches
# the NumPy tier bit for bit; anything else falls back per kernel
# ---------------------------------------------------------------------- #
_C_BINOPS = {
    "+": "({a} + {b})",
    "-": "({a} - {b})",
    "*": "({a} * {b})",
    "/": "(({b} != 0.0) ? ({a} / {b}) : 0.0)",
    "min": "NPMIN({a}, {b})",
    "max": "NPMAX({a}, {b})",
    ">": "(({a} > {b}) ? 1.0 : 0.0)",
    "<": "(({a} < {b}) ? 1.0 : 0.0)",
    ">=": "(({a} >= {b}) ? 1.0 : 0.0)",
    "<=": "(({a} <= {b}) ? 1.0 : 0.0)",
    "==": "(({a} == {b}) ? 1.0 : 0.0)",
    "!=": "(({a} != {b}) ? 1.0 : 0.0)",
    "and": "((({a} != 0.0) && ({b} != 0.0)) ? 1.0 : 0.0)",
    "or": "((({a} != 0.0) || ({b} != 0.0)) ? 1.0 : 0.0)",
}
_C_BINOP_DOMAIN = {"/": "({b} != 0.0)"}
_C_UNOPS = {
    "neg": "(-({a}))",
    "not": "(({a} == 0.0) ? 1.0 : 0.0)",
    "abs": "fabs({a})",
    "sqrt": "sqrt(NPMAX({a}, 0.0))",
    "floor": "floor({a})",
    "ceil": "ceil({a})",
    # np.sign: ±0 -> +0.0, NaN -> NaN
    "sign": "(({a} > 0.0) ? 1.0 : (({a} < 0.0) ? -1.0 : (({a} == 0.0) ? 0.0 : ({a}))))",
}
_C_UNOP_DOMAIN = {"sqrt": "({a} >= 0.0)"}
_C_CALLS = {
    "sqrt": _C_UNOPS["sqrt"],
    "abs": _C_UNOPS["abs"],
    "floor": _C_UNOPS["floor"],
    "ceil": _C_UNOPS["ceil"],
}
_C_CALL_DOMAIN = {"sqrt": _C_UNOP_DOMAIN["sqrt"]}

#: built-in aggregates with a bit-exact C lowering, by index strategy
_PREFIX_AGGS = {"sum", "count", "mean", "sum_squares"}
_PREFIX_EXT_AGGS = {"variance", "stddev"}
_RMQ_AGGS = {"max", "min"}
_FOLD_AGGS = {"first", "last"}
_LOWERABLE_AGGS = _PREFIX_AGGS | _PREFIX_EXT_AGGS | _RMQ_AGGS | _FOLD_AGGS

# ---------------------------------------------------------------------- #
# toolchain detection / process-global state
# ---------------------------------------------------------------------- #
_STATE_LOCK = threading.Lock()
_BUILD_LOCK = threading.Lock()
_AVAILABLE: Optional[bool] = None
_LONGDOUBLE_OK = False
_KERNEL_CACHE: "OrderedDict[str, NativeKernel]" = OrderedDict()
_KERNEL_CACHE_LIMIT = 128
_FAILURE_CACHE: "OrderedDict[str, str]" = OrderedDict()
_FAILURE_CACHE_LIMIT = 256
_STATS = {
    "compiles_total": 0,
    "compile_seconds_total": 0.0,
    "fallbacks_total": 0,
    "mem_hits_total": 0,
    "disk_hits_total": 0,
}


def _compiler() -> str:
    return os.environ.get("REPRO_NATIVE_CC") or "cc"


def native_available() -> bool:
    """True when this process can compile and run native-tier kernels.

    Requires importable ``cffi`` and a C compiler on ``PATH``;
    ``REPRO_NATIVE_DISABLE`` forces ``False``.  The probe is cached per
    process (:func:`_reset_toolchain_cache` forgets it for tests).
    """
    if os.environ.get("REPRO_NATIVE_DISABLE", "").strip().lower() in ("1", "true", "yes", "on"):
        return False
    global _AVAILABLE, _LONGDOUBLE_OK
    with _STATE_LOCK:
        if _AVAILABLE is None:
            try:
                import cffi

                ffi = cffi.FFI()
                _LONGDOUBLE_OK = ffi.sizeof("long double") == np.dtype(np.longdouble).itemsize
                _AVAILABLE = shutil.which(_compiler()) is not None
            except Exception:
                _AVAILABLE = False
                _LONGDOUBLE_OK = False
        return bool(_AVAILABLE)


def _reset_toolchain_cache() -> None:
    """Forget the cached toolchain probe (test hook)."""
    global _AVAILABLE, _LONGDOUBLE_OK
    with _STATE_LOCK:
        _AVAILABLE = None
        _LONGDOUBLE_OK = False


def stats() -> Dict[str, float]:
    """Process-wide native-tier counters (compiles, seconds, fallbacks, hits)."""
    with _STATE_LOCK:
        return dict(_STATS)


def clear_caches() -> None:
    """Drop the in-memory kernel and failure caches (test hook; disk kept)."""
    with _STATE_LOCK:
        _KERNEL_CACHE.clear()
        _FAILURE_CACHE.clear()


def _count(key: str, amount: float = 1) -> None:
    with _STATE_LOCK:
        _STATS[key] += amount


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_NATIVE_CACHE")
    if configured:
        path = configured
    else:
        uid = os.getuid() if hasattr(os, "getuid") else 0
        path = os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")
    os.makedirs(path, exist_ok=True)
    return path


# ---------------------------------------------------------------------- #
# lowerability analysis
# ---------------------------------------------------------------------- #
def lowering_blockers(spec: KernelSpec) -> List[str]:
    """Reasons this spec has no bit-exact native lowering (empty: lowerable).

    Checked *before* :meth:`KernelSpec.digest` — custom aggregates can make
    ``digest`` raise, and they are precisely what this walk rejects.
    """
    if spec.te is None:
        return ["kernel spec carries no IR (pre-native-tier artifact)"]
    blockers: List[str] = []

    def visit(expr: Expr) -> None:
        if isinstance(expr, BinOp):
            if expr.op not in _C_BINOPS:
                blockers.append(f"operator {expr.op!r} has no bit-stable native lowering")
        elif isinstance(expr, UnaryOp):
            if expr.op not in _C_UNOPS:
                blockers.append(f"operator {expr.op!r} has no bit-stable native lowering")
        elif isinstance(expr, Call):
            if expr.func not in _C_CALLS:
                blockers.append(f"function {expr.func!r} has no bit-stable native lowering")
        elif isinstance(expr, Reduce):
            agg = expr.agg
            if _BUILTIN_SINGLETONS.get(agg.name) is not agg:
                blockers.append(f"custom aggregate {agg.name!r} requires Python folds")
            elif agg.name not in _LOWERABLE_AGGS:
                blockers.append(f"aggregate {agg.name!r} has no bit-stable native lowering")
            elif agg.name in _PREFIX_EXT_AGGS:
                if expr.element is not None:
                    # the centering mean would have to be taken over the
                    # element-mapped array NumPy-side; not worth the seam
                    blockers.append("element-mapped extended-precision reduce is not lowered")
                elif not _LONGDOUBLE_OK:
                    blockers.append("C long double does not match numpy longdouble")
        for child in expr.children():
            visit(child)

    visit(spec.te.expr)
    return blockers


# ---------------------------------------------------------------------- #
# C code generation
# ---------------------------------------------------------------------- #
def _c_float(value: float) -> str:
    """Exact C literal for a Python float (hex form, no decimal rounding)."""
    value = float(value)
    if value != value:
        return "NAN"
    if value == float("inf"):
        return "INFINITY"
    if value == float("-inf"):
        return "(-INFINITY)"
    return value.hex()


class _Group:
    """One per-(ref, aggregate, element) index built before the main loop.

    Mirrors the NumPy tier's per-run aggregator cache key, so e.g. two MEAN
    windows over the same stream share one prefix index in both tiers.
    """

    __slots__ = ("index", "ref", "agg_name", "element", "kind", "ext")

    def __init__(self, index: int, ref: str, agg_name: str, element: Optional[Expr]):
        self.index = index
        self.ref = ref
        self.agg_name = agg_name
        self.element = element
        if agg_name in _PREFIX_AGGS or agg_name in _PREFIX_EXT_AGGS:
            self.kind = "prefix"
        elif agg_name in _RMQ_AGGS:
            self.kind = "rmq"
        else:
            self.kind = "fold"
        self.ext = agg_name in _PREFIX_EXT_AGGS


class _CEmitter:
    """Lowers one KernelSpec's fused IR to a C translation unit.

    Mirrors :class:`~repro.core.codegen.pysource._ExprCompiler` node for
    node: every emitted statement is the per-lane C image of the NumPy
    template the Python tier executes for the same node, including eager
    evaluation of both conditional branches and domain-masked lanes.
    """

    def __init__(self, spec: KernelSpec):
        if spec.te is None:
            raise ValueError("spec has no IR to lower")
        self.spec = spec
        self.refs: List[str] = list(spec.referenced)
        self._ref_pos = {r: i for i, r in enumerate(self.refs)}
        self._counter = 0
        self._site_counter = 0
        self.prelude: List[str] = []  # group index builds (before main loop)
        self.decls: List[str] = []  # persistent cursors / deque heads
        self.body: List[str] = []  # per-lane statements inside the loop
        self.allocs: List[Tuple[str, str]] = []  # (ctype, name) malloc'd
        self.groups: Dict[Tuple[str, int, Optional[int]], _Group] = {}
        self.center_refs: List[str] = []  # one long double center per entry
        self._point_sites: Dict[Tuple[str, float], Tuple[str, str]] = {}
        self._reduce_sites: Dict[
            Tuple[str, float, float, int, Optional[int]], Tuple[str, str]
        ] = {}

    # -- helpers ---------------------------------------------------------- #
    def fresh(self) -> Tuple[str, str]:
        self._counter += 1
        return f"v{self._counter}", f"k{self._counter}"

    def _ref_args(self, ref: str) -> Tuple[str, str, str, str, str]:
        i = self._ref_pos[ref]
        return (f"m{i}", f"bt{i}", f"bv{i}", f"bk{i}", f"bs{i}")

    def _alloc(self, ctype: str, name: str, count: str, where: List[str]) -> None:
        self.allocs.append((ctype, name))
        where.append(f"    {name} = ({ctype}*)malloc(sizeof({ctype}) * (size_t)({count}));")
        where.append(f"    if ({name} == NULL) {{ rc = 1; goto cleanup; }}")

    # -- expression tree --------------------------------------------------- #
    def compile(
        self,
        expr: Expr,
        scope: Dict[str, Tuple[str, str]],
        out: List[str],
        elem: bool,
    ) -> Tuple[str, str]:
        emit = out.append
        if isinstance(expr, Const):
            v, k = self.fresh()
            emit(f"        double {v} = {_c_float(expr.value)};")
            emit(f"        int {k} = 1;")
            return v, k
        if isinstance(expr, Phi):
            v, k = self.fresh()
            emit(f"        double {v} = 0.0;")
            emit(f"        int {k} = 0;")
            return v, k
        if isinstance(expr, Var):
            if expr.name not in scope:
                raise ValueError(f"unbound variable {expr.name!r} during native lowering")
            return scope[expr.name]
        if isinstance(expr, (TRef, TIndex)):
            if elem:
                raise ValueError("temporal access inside a reduce element expression")
            ref = expr.ref if isinstance(expr, TIndex) else expr.name
            return self._point_site(ref, float(getattr(expr, "offset", 0.0)))
        if isinstance(expr, Reduce):
            if elem:
                raise ValueError("nested reduction inside a reduce element expression")
            return self._reduce_site(expr)
        if isinstance(expr, TWindow):
            raise ValueError("windowed temporal object used outside a reduction")
        if isinstance(expr, BinOp):
            lv, lk = self.compile(expr.lhs, scope, out, elem)
            rv, rk = self.compile(expr.rhs, scope, out, elem)
            v, k = self.fresh()
            emit(f"        double {v} = {_C_BINOPS[expr.op].format(a=lv, b=rv)};")
            mask = f"{lk} && {rk}"
            domain = _C_BINOP_DOMAIN.get(expr.op)
            if domain is not None:
                mask = f"({mask}) && {domain.format(a=lv, b=rv)}"
            emit(f"        int {k} = {mask};")
            return v, k
        if isinstance(expr, UnaryOp):
            ov, ok = self.compile(expr.operand, scope, out, elem)
            v, k = self.fresh()
            emit(f"        double {v} = {_C_UNOPS[expr.op].format(a=ov)};")
            mask = ok
            domain = _C_UNOP_DOMAIN.get(expr.op)
            if domain is not None:
                mask = f"({ok}) && {domain.format(a=ov)}"
            emit(f"        int {k} = {mask};")
            return v, k
        if isinstance(expr, IfThenElse):
            cv, ck = self.compile(expr.cond, scope, out, elem)
            tv, tk = self.compile(expr.then, scope, out, elem)
            ev, ek = self.compile(expr.orelse, scope, out, elem)
            v, k = self.fresh()
            emit(f"        double {v} = (({cv} != 0.0) ? {tv} : {ev});")
            emit(f"        int {k} = {ck} && (({cv} != 0.0) ? {tk} : {ek});")
            return v, k
        if isinstance(expr, IsValid):
            _, ok = self.compile(expr.operand, scope, out, elem)
            v, k = self.fresh()
            emit(f"        double {v} = ({ok} ? 1.0 : 0.0);")
            emit(f"        int {k} = 1;")
            return v, k
        if isinstance(expr, Coalesce):
            ov, ok = self.compile(expr.operand, scope, out, elem)
            dv, dk = self.compile(expr.default, scope, out, elem)
            v, k = self.fresh()
            emit(f"        double {v} = ({ok} ? {ov} : {dv});")
            emit(f"        int {k} = {ok} || {dk};")
            return v, k
        if isinstance(expr, Call):
            pairs = [self.compile(a, scope, out, elem) for a in expr.args]
            v, k = self.fresh()
            emit(f"        double {v} = {_C_CALLS[expr.func].format(a=pairs[0][0])};")
            mask = " && ".join(p[1] for p in pairs) or "1"
            domain = _C_CALL_DOMAIN.get(expr.func)
            if domain is not None:
                mask = f"({mask}) && {domain.format(a=pairs[0][0])}"
            emit(f"        int {k} = {mask};")
            return v, k
        if isinstance(expr, Let):
            inner = dict(scope)
            for name, value in expr.bindings:
                inner[name] = self.compile(value, inner, out, elem)
            return self.compile(expr.body, inner, out, elem)
        raise ValueError(f"cannot lower IR node {type(expr).__name__}")

    # -- point access sites ------------------------------------------------ #
    def _point_site(self, ref: str, offset: float) -> Tuple[str, str]:
        key = (ref, offset)
        cached = self._point_sites.get(key)
        if cached is not None:
            return cached
        self._site_counter += 1
        s = f"p{self._site_counter}"
        m, bt, bv, bk, bs = self._ref_args(ref)
        v, k = self.fresh()
        self.decls.append(f"    int64_t {s}_cur = 0;")
        # mirror of SSBuf.values_at: searchsorted(times, q, 'left') by a
        # monotone cursor; in_range = q > start_time && q <= times[m-1]
        self.body.append(f"        double {s}_q = ts[i] + {_c_float(offset)};")
        self.body.append(f"        double {v} = 0.0; int {k} = 0;")
        self.body.append(f"        if ({m} > 0) {{")
        self.body.append(
            f"            while ({s}_cur < {m} && {bt}[{s}_cur] < {s}_q) {s}_cur++;"
        )
        self.body.append(f"            int64_t {s}_c = ({s}_cur < {m}) ? {s}_cur : ({m} - 1);")
        self.body.append(
            f"            {k} = ({s}_q > {bs}) && ({s}_q <= {bt}[{m} - 1]) && {bk}[{s}_c];"
        )
        self.body.append(f"            {v} = {k} ? {bv}[{s}_c] : 0.0;")
        self.body.append("        }")
        self._point_sites[key] = (v, k)
        return v, k

    # -- reduce groups ------------------------------------------------------ #
    def _group_for(self, ref: str, agg, element: Optional[Expr]) -> _Group:
        key = (ref, id(agg), id(element) if element is not None else None)
        group = self.groups.get(key)
        if group is None:
            group = _Group(len(self.groups), ref, agg.name, element)
            self.groups[key] = group
            self._emit_group_build(group)
        return group

    def _emit_elem(self, group: _Group, out: List[str]) -> Tuple[str, str]:
        """Mapped snapshot value/validity inside a group build loop.

        The NumPy tier maps the *raw* values array (φ lanes included)
        through the element function and ANDs the element's validity into
        the buffer mask; replicated here per lane.
        """
        _, _, bv, bk, _ = self._ref_args(group.ref)
        ev, ek = self.fresh()
        out.append(f"        double {ev} = {bv}[j];")
        out.append(f"        int {ek} = 1;")
        if group.element is not None:
            mv, mk = self.compile(group.element, {ELEM_VAR: (ev, ek)}, out, elem=True)
        else:
            mv, mk = ev, ek
        xv, xk = self.fresh()
        out.append(f"        double {xv} = {mv};")
        out.append(f"        int {xk} = {bk}[j] && {mk};")
        return xv, xk

    def _emit_group_build(self, group: _Group) -> None:
        g = f"g{group.index}"
        m = self._ref_args(group.ref)[0]
        pre = self.prelude
        # every group carries the combined-validity prefix (drives φ)
        self._alloc("int64_t", f"{g}_vp", f"{m} + 1", pre)
        loop: List[str] = []
        xv, xk = self._emit_elem(group, loop)
        if group.kind == "prefix":
            ctype = "long double" if group.ext else "double"
            ncomp = (
                3
                if group.ext
                else {"sum": 1, "count": 1, "sum_squares": 1, "mean": 2}[group.agg_name]
            )
            for c in range(ncomp):
                self._alloc(ctype, f"{g}_p{c}", f"{m} + 1", pre)
            pre.append(f"    {g}_vp[0] = 0;")
            for c in range(ncomp):
                pre.append(f"    {g}_p{c}[0] = 0.0;")
            if group.ext:
                center = f"centers[{len(self.center_refs)}]"
                self.center_refs.append(group.ref)
            pre.append(f"    for (int64_t j = 0; j < {m}; j++) {{")
            pre.extend(loop)
            # masked exactly as PrefixRangeIndex: zeros at φ lanes, then
            # each component re-masked to contribute nothing at φ
            if group.ext:
                pre.append(f"        long double {g}_mx = (long double)({xk} ? {xv} : 0.0);")
                pre.append(f"        long double {g}_cx = {g}_mx - {center};")
                comps = [
                    f"({xk} ? {g}_cx : 0.0L)",
                    f"({xk} ? {g}_cx * {g}_cx : 0.0L)",
                    f"({xk} ? 1.0L : 0.0L)",
                ]
            else:
                pre.append(f"        double {g}_mx = {xk} ? {xv} : 0.0;")
                comps = {
                    "sum": [f"{g}_mx"],
                    "count": [f"({xk} ? 1.0 : 0.0)"],
                    "mean": [f"{g}_mx", f"({xk} ? 1.0 : 0.0)"],
                    "sum_squares": [f"{g}_mx * {g}_mx"],
                }[group.agg_name]
            for c, comp in enumerate(comps):
                pre.append(f"        {g}_p{c}[j + 1] = {g}_p{c}[j] + {comp};")
            pre.append(f"        {g}_vp[j + 1] = {g}_vp[j] + ({xk} ? 1 : 0);")
            pre.append("    }")
        elif group.kind == "rmq":
            fill = "(-INFINITY)" if group.agg_name == "max" else "INFINITY"
            self._alloc("double", f"{g}_base", f"{m} > 0 ? {m} : 1", pre)
            self._alloc("int64_t", f"{g}_nc", f"{m} + 1", pre)
            pre.append(f"    {g}_vp[0] = 0; {g}_nc[0] = 0;")
            pre.append(f"    for (int64_t j = 0; j < {m}; j++) {{")
            pre.extend(loop)
            pre.append(f"        {g}_base[j] = {xk} ? {xv} : {fill};")
            pre.append(f"        {g}_nc[j + 1] = {g}_nc[j] + (isnan({g}_base[j]) ? 1 : 0);")
            pre.append(f"        {g}_vp[j + 1] = {g}_vp[j] + ({xk} ? 1 : 0);")
            pre.append("    }")
        else:  # fold: first / last via valid-neighbour index arrays
            self._alloc("double", f"{g}_x", f"{m} > 0 ? {m} : 1", pre)
            self._alloc("unsigned char", f"{g}_ok", f"{m} > 0 ? {m} : 1", pre)
            self._alloc("int64_t", f"{g}_nxt", f"{m} + 1", pre)
            self._alloc("int64_t", f"{g}_prv", f"{m} > 0 ? {m} : 1", pre)
            pre.append(f"    {g}_vp[0] = 0;")
            pre.append(f"    for (int64_t j = 0; j < {m}; j++) {{")
            pre.extend(loop)
            pre.append(f"        {g}_x[j] = {xv};")
            pre.append(f"        {g}_ok[j] = (unsigned char)({xk} != 0);")
            pre.append(f"        {g}_vp[j + 1] = {g}_vp[j] + ({xk} ? 1 : 0);")
            pre.append(f"        {g}_prv[j] = {g}_ok[j] ? j : (j > 0 ? {g}_prv[j - 1] : -1);")
            pre.append("    }")
            pre.append(f"    {g}_nxt[{m}] = {m};")
            pre.append(f"    for (int64_t j = {m} - 1; j >= 0; j--)")
            pre.append(f"        {g}_nxt[j] = {g}_ok[j] ? j : {g}_nxt[j + 1];")

    # -- reduce sites -------------------------------------------------------- #
    def _reduce_site(self, expr: Reduce) -> Tuple[str, str]:
        window = expr.window
        key = (
            window.ref,
            float(window.start_offset),
            float(window.end_offset),
            id(expr.agg),
            id(expr.element) if expr.element is not None else None,
        )
        cached = self._reduce_sites.get(key)
        if cached is not None:
            return cached
        group = self._group_for(window.ref, expr.agg, expr.element)
        g = f"g{group.index}"
        self._site_counter += 1
        s = f"r{self._site_counter}"
        m, bt, _, _, bs = self._ref_args(window.ref)
        v, k = self.fresh()
        body = self.body
        self.decls.append(f"    int64_t {s}_lo = 0, {s}_hi = 0;")
        # snapshot_range_indices by monotone cursors:
        #   lo = searchsorted(times, ws, 'right')
        #   hi = searchsorted(interval_starts, we, 'left')
        body.append(f"        double {s}_ws = ts[i] + {_c_float(window.start_offset)};")
        body.append(f"        double {s}_we = ts[i] + {_c_float(window.end_offset)};")
        body.append(f"        while ({s}_lo < {m} && {bt}[{s}_lo] <= {s}_ws) {s}_lo++;")
        body.append(
            f"        while ({s}_hi < {m} && "
            f"(({s}_hi == 0 ? {bs} : {bt}[{s}_hi - 1]) < {s}_we)) {s}_hi++;"
        )
        body.append(f"        int64_t {s}_qlo = {s}_lo;")
        body.append(f"        int64_t {s}_qhi = ({s}_hi > {s}_lo) ? {s}_hi : {s}_lo;")
        body.append(f"        int64_t {s}_cnt = {g}_vp[{s}_qhi] - {g}_vp[{s}_qlo];")
        if group.kind == "prefix":
            ag = group.agg_name
            body.append(f"        int {k} = {s}_cnt > 0;")
            if ag in ("sum", "count", "sum_squares"):
                body.append(f"        double {s}_res = {g}_p0[{s}_qhi] - {g}_p0[{s}_qlo];")
            elif ag == "mean":
                body.append(f"        double {s}_s = {g}_p0[{s}_qhi] - {g}_p0[{s}_qlo];")
                body.append(f"        double {s}_n = {g}_p1[{s}_qhi] - {g}_p1[{s}_qlo];")
                body.append(f"        double {s}_res = ({s}_n != 0.0) ? ({s}_s / {s}_n) : 0.0;")
            else:  # variance / stddev in long double, exactly as PrefixRangeIndex
                body.append(f"        long double {s}_s = {g}_p0[{s}_qhi] - {g}_p0[{s}_qlo];")
                body.append(f"        long double {s}_sq = {g}_p1[{s}_qhi] - {g}_p1[{s}_qlo];")
                body.append(f"        long double {s}_n = {g}_p2[{s}_qhi] - {g}_p2[{s}_qlo];")
                body.append(
                    f"        long double {s}_var = ({s}_n != 0.0L)"
                    f" ? ({s}_sq / {s}_n - ({s}_s / {s}_n) * ({s}_s / {s}_n)) : 0.0L;"
                )
                body.append(f"        {s}_var = NPMAX({s}_var, 0.0L);")
                if ag == "stddev":
                    body.append(f"        {s}_var = sqrtl(NPMAX({s}_var, 0.0L));")
                body.append(f"        double {s}_res = (double){s}_var;")
            body.append(f"        double {v} = {k} ? {s}_res : 0.0;")
        elif group.kind == "rmq":
            pop = "<=" if group.agg_name == "max" else ">="
            self._alloc("int64_t", f"{s}_dq", f"{m} > 0 ? {m} : 1", self.prelude)
            self.decls.append(f"    int64_t {s}_dh = 0, {s}_dt = 0, {s}_push = 0;")
            body.append(f"        while ({s}_push < {s}_qhi) {{")
            body.append(f"            double {s}_bv = {g}_base[{s}_push];")
            body.append(
                f"            while ({s}_dt > {s}_dh && "
                f"{g}_base[{s}_dq[{s}_dt - 1]] {pop} {s}_bv) {s}_dt--;"
            )
            body.append(f"            {s}_dq[{s}_dt++] = {s}_push++;")
            body.append("        }")
            body.append(f"        while ({s}_dh < {s}_dt && {s}_dq[{s}_dh] < {s}_qlo) {s}_dh++;")
            body.append(f"        int {k} = {s}_cnt > 0;")
            body.append(f"        double {v} = 0.0;")
            body.append(f"        if ({k}) {{")
            # NaN anywhere in the span makes the sparse table's np.maximum
            # chain return NaN; the deque cannot see that, so override
            body.append(f"            if ({g}_nc[{s}_qhi] - {g}_nc[{s}_qlo] > 0) {v} = NAN;")
            body.append(f"            else {v} = {g}_base[{s}_dq[{s}_dh]];")
            body.append("        }")
        else:  # fold: first / last
            body.append(f"        int {k} = 0;")
            body.append(f"        double {v} = 0.0;")
            body.append(f"        if ({s}_qhi > {s}_qlo) {{")
            if group.agg_name == "first":
                body.append(f"            int64_t {s}_j = {g}_nxt[{s}_qlo];")
                body.append(f"            if ({s}_j < {s}_qhi) {{ {v} = {g}_x[{s}_j]; {k} = 1; }}")
            else:
                body.append(f"            int64_t {s}_j = {g}_prv[{s}_qhi - 1];")
                body.append(f"            if ({s}_j >= {s}_qlo) {{ {v} = {g}_x[{s}_j]; {k} = 1; }}")
            body.append("        }")
        self._reduce_sites[key] = (v, k)
        return v, k

    # -- assembly ------------------------------------------------------------ #
    def generate(self) -> Tuple[str, str]:
        """Returns ``(c_source, cdef)`` for this spec."""
        out_v, out_k = self.compile(self.spec.te.expr, {}, self.body, elem=False)
        params = ["int64_t n", "const double* ts"]
        for i in range(len(self.refs)):
            params += [
                f"int64_t m{i}",
                f"const double* bt{i}",
                f"const double* bv{i}",
                f"const unsigned char* bk{i}",
                f"double bs{i}",
            ]
        params += ["const long double* centers", "double* out_v", "unsigned char* out_k"]
        signature = f"int64_t {_FUNC_NAME}({', '.join(params)})"
        lines = [
            f"/* native kernel for temporal expression ~{self.spec.name} */",
            "#include <stdint.h>",
            "#include <stdlib.h>",
            "#include <math.h>",
            "",
            "/* NumPy's maximum/minimum: first operand wins on NaN */",
            "#define NPMAX(a, b) (((a) > (b) || isnan(a)) ? (a) : (b))",
            "#define NPMIN(a, b) (((a) < (b) || isnan(a)) ? (a) : (b))",
            "",
            signature,
            "{",
            "    int64_t rc = 0;",
            "    (void)centers;",
        ]
        lines += [f"    {ctype}* {name} = NULL;" for ctype, name in self.allocs]
        lines += self.prelude
        lines += self.decls
        lines.append("    for (int64_t i = 0; i < n; i++) {")
        lines += self.body
        lines.append(f"        out_v[i] = {out_v};")
        lines.append(f"        out_k[i] = (unsigned char)({out_k} != 0);")
        lines.append("    }")
        if self.allocs:
            lines.append("cleanup:")
            lines += [f"    free({name});" for _, name in self.allocs]
        lines.append("    return rc;")
        lines.append("}")
        return "\n".join(lines) + "\n", f"{signature};"


class _Lowered:
    """The C artifact of one spec, before compilation."""

    __slots__ = ("c_source", "cdef", "refs", "center_refs")

    def __init__(self, c_source: str, cdef: str, refs: List[str], center_refs: List[str]):
        self.c_source = c_source
        self.cdef = cdef
        self.refs = refs
        self.center_refs = center_refs


def _lower(spec: KernelSpec) -> _Lowered:
    emitter = _CEmitter(spec)
    c_source, cdef = emitter.generate()
    return _Lowered(c_source, cdef, emitter.refs, emitter.center_refs)


# ---------------------------------------------------------------------- #
# compilation + disk cache
# ---------------------------------------------------------------------- #
class _NativeBuildError(RuntimeError):
    pass


def _so_path(digest: str) -> str:
    return os.path.join(_cache_dir(), f"tilt-{digest[:32]}.so")


def _compile_so(digest: str, c_source: str) -> Tuple[str, bool]:
    """Ensure the kernel's ``.so`` exists on disk; returns (path, compiled).

    Written via a per-process temp file and atomic ``os.replace`` so
    concurrent processes warming the same digest never observe a partial
    artifact; the loser of the race just overwrites with identical bytes.
    """
    so = _so_path(digest)
    if os.path.exists(so):
        return so, False
    base = so[: -len(".so")]
    tag = f".{os.getpid()}.{threading.get_ident()}"
    c_path = base + ".c"
    tmp_c = base + tag + ".c"  # cc infers the language from the extension
    tmp_so = so + tag
    with open(tmp_c, "w") as fh:
        fh.write(c_source)
    cmd = [
        _compiler(),
        "-O2",
        "-fPIC",
        "-shared",
        # NumPy never fuses a*b+c into an FMA; neither may we
        "-ffp-contract=off",
        "-fno-strict-aliasing",
        tmp_c,
        "-o",
        tmp_so,
        "-lm",
    ]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    except Exception as exc:  # compiler missing mid-flight, timeout, ...
        try:
            os.replace(tmp_c, c_path)
        except OSError:
            pass
        raise _NativeBuildError(f"C compiler invocation failed: {exc}") from exc
    try:
        os.replace(tmp_c, c_path)  # keep the source for debuggability
    except OSError:
        pass
    if proc.returncode != 0:
        try:
            os.unlink(tmp_so)
        except OSError:
            pass
        tail = (proc.stderr or proc.stdout or "").strip().splitlines()[-5:]
        raise _NativeBuildError(f"cc exited {proc.returncode}: " + " | ".join(tail))
    os.replace(tmp_so, so)
    return so, True


# ---------------------------------------------------------------------- #
# the runnable kernel
# ---------------------------------------------------------------------- #
class NativeKernel:
    """A compiled, loaded, single-pass C kernel for one KernelSpec.

    Drop-in for the generated-Python kernel function: ``run(env, t_start,
    t_end, rt)`` returns the same :class:`~repro.core.runtime.ssbuf.SSBuf`
    (bit-identical values), using the shared :class:`KernelRuntime` only
    for the evaluation-time grid and output assembly.  The cffi call
    releases the GIL, so thread-pool partitions genuinely overlap.
    """

    def __init__(self, spec: KernelSpec, digest: str, lowered: _Lowered, ffi, lib, so_path: str):
        self.spec = spec
        self.digest = digest
        self.c_source = lowered.c_source
        self.so_path = so_path
        self._refs = lowered.refs
        self._center_refs = lowered.center_refs
        self._ffi = ffi
        self._fn = getattr(lib, _FUNC_NAME)
        self._lib = lib  # keep the dlopen handle alive

    def run(self, env, t_start: float, t_end: float, rt):
        ffi = self._ffi
        ts = np.ascontiguousarray(rt.eval_times(env, t_start, t_end), dtype=np.float64)
        n = len(ts)
        if n == 0:
            return rt.empty(t_start)
        args = [n, ffi.from_buffer("double[]", ts)]
        keepalive = [ts]
        for ref in self._refs:
            buf = env[ref]
            bt = np.ascontiguousarray(buf.times, dtype=np.float64)
            bv = np.ascontiguousarray(buf.values, dtype=np.float64)
            bk = np.ascontiguousarray(buf.valid, dtype=np.uint8)
            keepalive += [bt, bv, bk]
            args += [
                len(bt),
                ffi.from_buffer("double[]", bt),
                ffi.from_buffer("double[]", bv),
                ffi.from_buffer("unsigned char[]", bk),
                float(buf.start_time),
            ]
        if self._center_refs:
            centers = np.empty(len(self._center_refs), dtype=np.longdouble)
            for i, ref in enumerate(self._center_refs):
                buf = env[ref]
                # exactly PrefixRangeIndex's centering mean: np.mean over
                # the zero-masked longdouble array (pairwise summation is
                # NumPy's to make — its bits pass through untouched)
                masked = np.where(
                    buf.valid, np.asarray(buf.values, dtype=np.float64), 0.0
                ).astype(np.longdouble)
                centers[i] = np.mean(masked) if len(masked) else np.longdouble(0.0)
            keepalive.append(centers)
            args.append(ffi.from_buffer("long double[]", centers))
        else:
            args.append(ffi.NULL)
        out_v = np.empty(n, dtype=np.float64)
        out_k = np.empty(n, dtype=np.uint8)
        args.append(ffi.from_buffer("double[]", out_v, require_writable=True))
        args.append(ffi.from_buffer("unsigned char[]", out_k, require_writable=True))
        rc = self._fn(*args)
        del keepalive
        if rc != 0:
            raise ExecutionError(f"native kernel ~{self.spec.name} failed to allocate")
        return rt.build(ts, out_v, out_k.view(np.bool_), t_start)


# ---------------------------------------------------------------------- #
# instantiation front door
# ---------------------------------------------------------------------- #
def instantiate(spec: KernelSpec) -> Tuple[Optional[NativeKernel], Optional[str]]:
    """Build (or fetch from cache) the native kernel for a spec.

    Never raises: returns ``(kernel, None)`` on success or ``(None,
    reason)`` when the tier is unavailable, the spec is not lowerable, or
    the build fails — every fallback is counted in :func:`stats`.
    """
    if not native_available():
        _count("fallbacks_total")
        return None, "native toolchain unavailable (cffi + C compiler required)"
    if spec.bounds_proof is None:
        # the C lowering indexes raw arrays where an uncovered access is
        # silent memory corruption, so it refuses to *trust* the margin
        # contract: only specs stamped by compile_program's analyzer gate
        # (repro.analysis bounds-safety proof) are lowered; everything else
        # falls back to the bounds-checked NumPy tier with this reason.
        _count("fallbacks_total")
        return None, (
            "spec carries no bounds-safety proof (not produced by "
            "compile_program's analyzer gate); refusing native lowering"
        )
    blockers = lowering_blockers(spec)
    if blockers:
        _count("fallbacks_total")
        return None, "; ".join(blockers)
    digest = spec.digest()
    with _STATE_LOCK:
        kernel = _KERNEL_CACHE.get(digest)
        if kernel is not None:
            _KERNEL_CACHE.move_to_end(digest)
            _STATS["mem_hits_total"] += 1
            return kernel, None
        failure = _FAILURE_CACHE.get(digest)
    if failure is not None:
        _count("fallbacks_total")
        return None, failure
    try:
        import cffi

        lowered = _lower(spec)
        started = time.perf_counter()
        with _BUILD_LOCK:
            so, compiled = _compile_so(digest, lowered.c_source)
        elapsed = time.perf_counter() - started
        ffi = cffi.FFI()
        ffi.cdef(lowered.cdef)
        lib = ffi.dlopen(so)
        kernel = NativeKernel(spec, digest, lowered, ffi, lib, so)
    except Exception as exc:
        reason = f"native build failed: {exc}"
        with _STATE_LOCK:
            _FAILURE_CACHE[digest] = reason
            while len(_FAILURE_CACHE) > _FAILURE_CACHE_LIMIT:
                _FAILURE_CACHE.popitem(last=False)
            _STATS["fallbacks_total"] += 1
        return None, reason
    with _STATE_LOCK:
        if compiled:
            _STATS["compiles_total"] += 1
            _STATS["compile_seconds_total"] += elapsed
        else:
            _STATS["disk_hits_total"] += 1
        _KERNEL_CACHE[digest] = kernel
        _KERNEL_CACHE.move_to_end(digest)
        while len(_KERNEL_CACHE) > _KERNEL_CACHE_LIMIT:
            _KERNEL_CACHE.popitem(last=False)
    return kernel, None


def precompile(specs: Iterable[KernelSpec]) -> Dict[str, Optional[str]]:
    """Warm-compile kernels off the hot path (sessions, pool warm-up).

    Returns ``{kernel name: fallback reason or None}``; the ``.so``
    artifacts land in the shared disk cache, so process-pool workers
    rebuilding a pickled spec ``dlopen`` instead of compiling.
    """
    results: Dict[str, Optional[str]] = {}
    for spec in specs:
        _, reason = instantiate(spec)
        results[spec.name] = reason
    return results
