"""Python source generation for temporal expressions.

The TiLT paper lowers fused temporal expressions to LLVM IR; this
reproduction lowers them to Python source implementing a *vectorized* kernel
over NumPy arrays.  The generated function has the shape of the synthesized
loop of Figure 3d:

* it derives the output timestamps from the change points of its inputs
  (``rt.eval_times`` implements the "advance to the next change" loop-counter
  expression, for all output points at once);
* every point access and every reduction becomes one vectorized runtime call
  producing a ``(values, valid)`` array pair;
* the scalar expression tree is emitted as straight-line NumPy code over
  those arrays, with an explicit validity mask implementing φ-propagation;
* the kernel is parameterized by the symbolic boundaries ``(t_start, t_end]``
  so the same compiled artifact runs on any partition.

The emitted source is compiled with :func:`compile`/``exec`` by
:mod:`repro.core.codegen.compiled`; it references nothing except NumPy (via
``rt.np``) and the :class:`~repro.core.codegen.runtime_support.KernelRuntime`
helper that carries the aggregate registry and element-map functions (which
cannot be serialized into source text).
"""

from __future__ import annotations

import hashlib
import pickle
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...errors import CompilationError
from ...windowing.functions import AggregateFunction
from ..ir.analysis import estimate_static_cost
from ..ir.nodes import (
    ELEM_VAR,
    BinOp,
    Call,
    Coalesce,
    Const,
    Expr,
    IfThenElse,
    IsValid,
    Let,
    Phi,
    Reduce,
    TDom,
    TIndex,
    TRef,
    TWindow,
    TemporalExpr,
    UnaryOp,
    Var,
)
from ..lineage.boundary import AccessPattern, collect_accesses
from ..ops import (
    NUMPY_BINOP_DOMAIN,
    NUMPY_BINOPS,
    NUMPY_CALL_DOMAIN,
    NUMPY_CALLS,
    NUMPY_UNOP_DOMAIN,
    NUMPY_UNOPS,
)

__all__ = ["KernelSpec", "generate_kernel_spec", "KERNEL_FUNCTION_NAME", "ELEMENT_FUNCTION_NAME"]

KERNEL_FUNCTION_NAME = "_tilt_kernel"
ELEMENT_FUNCTION_NAME = "_tilt_element"


@dataclass
class KernelSpec:
    """Everything needed to instantiate an executable kernel for one
    temporal expression."""

    name: str
    tdom: TDom
    source: str
    element_sources: List[str]
    aggregates: List[AggregateFunction]
    accesses: Dict[str, AccessPattern]
    referenced: List[str]
    #: incremental-state descriptor: one entry per ``rt.reduce`` call site in
    #: the generated source, as ``(ref, start_offset, end_offset, agg_idx,
    #: elem_idx)``.  Derived from the same compilation pass that emits the
    #: call, so it is exactly the set of reductions an incremental session
    #: must carry state for.  Not part of :meth:`digest` — it is fully
    #: determined by ``source`` (every entry mirrors an emitted call).
    reduce_sites: List[Tuple[str, float, float, int, int]] = field(default_factory=list)
    #: the fused IR this spec was generated from.  The native codegen tier
    #: (:mod:`repro.core.codegen.native`) re-lowers it to C instead of
    #: re-parsing :attr:`source`.  Not part of :meth:`digest` — like
    #: :attr:`reduce_sites` it is fully determined by the same compilation
    #: pass that produced ``source``, so it adds no identifying content.
    te: Optional[TemporalExpr] = None
    #: static cost estimate (window depth × op count) from
    #: :func:`repro.core.ir.analysis.estimate_static_cost` — seeds the
    #: scheduler's per-tenant cost EWMA.  Derived, so not part of
    #: :meth:`digest`.
    static_cost: float = 0.0
    #: bounds-safety certificate stamped by ``compile_program`` after the
    #: analyzer proved every windowed access of the program is covered by
    #: the resolved partition margins (``None`` until then).  The native
    #: tier refuses to lower a spec without one (see
    #: :func:`repro.core.codegen.native.instantiate`).  Not part of
    #: :meth:`digest`: the proof certifies the same content the digest
    #: identifies, it does not change the executable artifact.
    bounds_proof: Optional[str] = None

    def describe(self) -> str:
        """Generated source plus element maps — for logging and golden tests."""
        parts = [f"# kernel for ~{self.name}", self.source]
        for i, src in enumerate(self.element_sources):
            parts.append(f"# element map {i}")
            parts.append(src)
        return "\n".join(parts)

    def digest(self) -> str:
        """Content digest identifying this spec's executable artifact.

        Two specs with the same digest instantiate interchangeable kernels,
        which is what the per-process rebuild cache keys on when a spec
        crosses a process boundary (see
        :meth:`repro.core.codegen.compiled.CompiledKernel.from_spec`).  The
        digest covers everything execution depends on: the generated
        sources, the time domain, the access pattern and the identity of
        every aggregate (built-ins by name; custom aggregates by their
        pickled callables — unpicklable aggregates make ``digest`` raise,
        matching the fact that such a spec cannot leave the process anyway).
        """
        h = hashlib.sha256()
        for text in (self.name, self.source, *self.element_sources):
            h.update(text.encode())
            h.update(b"\x00")
        h.update(repr((self.tdom.start, self.tdom.end, self.tdom.precision)).encode())
        for ref in sorted(self.accesses):
            pattern = self.accesses[ref]
            h.update(ref.encode())
            h.update(
                repr(
                    (sorted(pattern.point_offsets), sorted(pattern.windows))
                ).encode()
            )
        for agg in self.aggregates:
            h.update(pickle.dumps(agg, protocol=4))
        return h.hexdigest()

    def incremental_plan(self, input_refs) -> Dict[Tuple[str, float, float, int, int], str]:
        """Incremental strategy per reduction site, for introspection.

        Maps each entry of :attr:`reduce_sites` to the strategy an
        incremental session uses for it (``'prefix'``,
        ``'subtract-on-evict'``, ``'two-stacks'``, ``'refold'``) — or
        ``'full-recompute'`` for reductions over intermediate expressions,
        which stay on the per-invocation path.
        """
        from .incremental import site_strategy

        inputs = frozenset(input_refs)
        plan = {}
        for ref, so, eo, agg_idx, elem_idx in self.reduce_sites:
            if ref in inputs:
                plan[(ref, so, eo, agg_idx, elem_idx)] = site_strategy(self.aggregates[agg_idx])
            else:
                plan[(ref, so, eo, agg_idx, elem_idx)] = "full-recompute"
        return plan


class _Emitter:
    """Shared statement emitter used for the main kernel and element maps."""

    def __init__(self, indent: str = "    "):
        self.lines: List[str] = []
        self.indent = indent
        self._counter = 0

    def fresh(self) -> Tuple[str, str]:
        self._counter += 1
        return f"_v{self._counter}", f"_k{self._counter}"

    def emit(self, text: str) -> None:
        self.lines.append(self.indent + text)

    def body(self) -> str:
        # a bare `pass` keeps the enclosing `with` block syntactically valid
        # even when the expression compiled to no statements (e.g. a lone
        # variable reference)
        return "\n".join(self.lines) if self.lines else self.indent + "pass"


class _ExprCompiler:
    """Compile a scalar expression tree into straight-line NumPy statements."""

    def __init__(
        self,
        emitter: _Emitter,
        scope: Dict[str, Tuple[str, str]],
        kernel: "_KernelBuilder",
        allow_temporal: bool,
    ):
        self.emitter = emitter
        self.scope = dict(scope)
        self.kernel = kernel
        self.allow_temporal = allow_temporal

    # ------------------------------------------------------------------ #
    def compile(self, expr: Expr) -> Tuple[str, str]:
        if isinstance(expr, Const):
            v, k = self.emitter.fresh()
            self.emitter.emit(f"{v} = _np.full(_n, {expr.value!r})")
            self.emitter.emit(f"{k} = _TRUE")
            return v, k
        if isinstance(expr, Phi):
            v, k = self.emitter.fresh()
            self.emitter.emit(f"{v} = _np.zeros(_n)")
            self.emitter.emit(f"{k} = _FALSE")
            return v, k
        if isinstance(expr, Var):
            if expr.name not in self.scope:
                raise CompilationError(f"unbound variable {expr.name!r} during code generation")
            return self.scope[expr.name]
        if isinstance(expr, (TRef, TIndex)):
            if not self.allow_temporal:
                raise CompilationError("temporal access inside a reduce element expression")
            ref = expr.name if isinstance(expr, TRef) else expr.ref
            offset = 0.0 if isinstance(expr, TRef) else expr.offset
            v, k = self.emitter.fresh()
            self.emitter.emit(f"{v}, {k} = rt.point(env, {ref!r}, {offset!r}, _ts)")
            return v, k
        if isinstance(expr, Reduce):
            if not self.allow_temporal:
                raise CompilationError("nested reduction inside a reduce element expression")
            return self._compile_reduce(expr)
        if isinstance(expr, TWindow):
            raise CompilationError("windowed temporal object used outside a reduction")
        if isinstance(expr, BinOp):
            lv, lk = self.compile(expr.lhs)
            rv, rk = self.compile(expr.rhs)
            v, k = self.emitter.fresh()
            template = NUMPY_BINOPS[expr.op]
            self.emitter.emit(f"{v} = " + template.format(a=lv, b=rv))
            mask = f"{lk} & {rk}"
            domain = NUMPY_BINOP_DOMAIN.get(expr.op)
            if domain is not None:
                mask = f"({mask}) & " + domain.format(a=lv, b=rv)
            self.emitter.emit(f"{k} = {mask}")
            return v, k
        if isinstance(expr, UnaryOp):
            ov, ok = self.compile(expr.operand)
            v, k = self.emitter.fresh()
            self.emitter.emit(f"{v} = " + NUMPY_UNOPS[expr.op].format(a=ov))
            mask = ok
            domain = NUMPY_UNOP_DOMAIN.get(expr.op)
            if domain is not None:
                mask = f"({ok}) & " + domain.format(a=ov)
            self.emitter.emit(f"{k} = {mask}")
            return v, k
        if isinstance(expr, IfThenElse):
            cv, ck = self.compile(expr.cond)
            tv, tk = self.compile(expr.then)
            ev, ek = self.compile(expr.orelse)
            v, k = self.emitter.fresh()
            self.emitter.emit(f"{v} = _np.where({cv} != 0, {tv}, {ev})")
            self.emitter.emit(f"{k} = {ck} & _np.where({cv} != 0, {tk}, {ek})")
            return v, k
        if isinstance(expr, IsValid):
            _, ok = self.compile(expr.operand)
            v, k = self.emitter.fresh()
            self.emitter.emit(f"{v} = ({ok}).astype(_np.float64)")
            self.emitter.emit(f"{k} = _TRUE")
            return v, k
        if isinstance(expr, Coalesce):
            ov, ok = self.compile(expr.operand)
            dv, dk = self.compile(expr.default)
            v, k = self.emitter.fresh()
            self.emitter.emit(f"{v} = _np.where({ok}, {ov}, {dv})")
            self.emitter.emit(f"{k} = {ok} | {dk}")
            return v, k
        if isinstance(expr, Call):
            arg_pairs = [self.compile(a) for a in expr.args]
            v, k = self.emitter.fresh()
            arg_vals = [p[0] for p in arg_pairs]
            self.emitter.emit(f"{v} = " + NUMPY_CALLS[expr.func].format(*arg_vals))
            mask = " & ".join(p[1] for p in arg_pairs) or "_TRUE"
            domain = NUMPY_CALL_DOMAIN.get(expr.func)
            if domain is not None:
                mask = f"({mask}) & " + domain.format(*arg_vals)
            self.emitter.emit(f"{k} = {mask}")
            return v, k
        if isinstance(expr, Let):
            saved = dict(self.scope)
            for name, value in expr.bindings:
                self.scope[name] = self.compile(value)
            result = self.compile(expr.body)
            self.scope = saved
            return result
        raise CompilationError(f"cannot generate code for node type {type(expr).__name__}")

    # ------------------------------------------------------------------ #
    def _compile_reduce(self, expr: Reduce) -> Tuple[str, str]:
        agg_idx = self.kernel.register_aggregate(expr.agg)
        elem_idx = self.kernel.register_element(expr.element) if expr.element is not None else -1
        window = expr.window
        self.kernel.reduce_sites.append(
            (window.ref, float(window.start_offset), float(window.end_offset), agg_idx, elem_idx)
        )
        v, k = self.emitter.fresh()
        self.emitter.emit(
            f"{v}, {k} = rt.reduce(env, {window.ref!r}, {window.start_offset!r}, "
            f"{window.end_offset!r}, {agg_idx}, {elem_idx}, _ts, _cache)"
        )
        return v, k


class _KernelBuilder:
    """Builds the full kernel source (main function plus element maps)."""

    def __init__(self, te: TemporalExpr):
        self.te = te
        self.aggregates: List[AggregateFunction] = []
        self.element_sources: List[str] = []
        self.reduce_sites: List[Tuple[str, float, float, int, int]] = []

    def register_aggregate(self, agg: AggregateFunction) -> int:
        for i, existing in enumerate(self.aggregates):
            if existing is agg:
                return i
        self.aggregates.append(agg)
        return len(self.aggregates) - 1

    def register_element(self, element: Expr) -> int:
        source = self._generate_element_source(element)
        self.element_sources.append(source)
        return len(self.element_sources) - 1

    def _generate_element_source(self, element: Expr) -> str:
        emitter = _Emitter(indent="        ")
        compiler = _ExprCompiler(
            emitter, scope={ELEM_VAR: ("_elem_vals", "_elem_ok")}, kernel=self, allow_temporal=False
        )
        out_v, out_k = compiler.compile(element)
        lines = [
            f"def {ELEMENT_FUNCTION_NAME}(elem, rt):",
            "    _np = rt.np",
            "    _n = len(elem)",
            "    _TRUE = _np.ones(_n, dtype=bool)",
            "    _FALSE = _np.zeros(_n, dtype=bool)",
            "    _elem_vals = _np.asarray(elem, dtype=_np.float64)",
            "    _elem_ok = _TRUE",
            # masked-out lanes are evaluated eagerly and discarded via the
            # validity mask; errstate keeps them from emitting RuntimeWarnings
            '    with _np.errstate(all="ignore"):',
            emitter.body(),
            f"    return _np.asarray({out_v}, dtype=_np.float64), _np.asarray({out_k}, dtype=bool)",
        ]
        return "\n".join(line for line in lines if line.strip() or line == "")

    def generate(self) -> KernelSpec:
        emitter = _Emitter(indent="        ")
        compiler = _ExprCompiler(emitter, scope={}, kernel=self, allow_temporal=True)
        out_v, out_k = compiler.compile(self.te.expr)
        lines = [
            f"def {KERNEL_FUNCTION_NAME}(env, t_start, t_end, rt):",
            f"    # generated kernel for temporal expression ~{self.te.name}",
            "    _np = rt.np",
            "    _ts = rt.eval_times(env, t_start, t_end)",
            "    _n = len(_ts)",
            "    if _n == 0:",
            "        return rt.empty(t_start)",
            "    _TRUE = _np.ones(_n, dtype=bool)",
            "    _FALSE = _np.zeros(_n, dtype=bool)",
            # per-run aggregator cache: execution state lives in the kernel
            # invocation, never in the shared KernelRuntime (concurrent
            # partitions of one compiled query must not see each other)
            "    _cache = {}",
            # both branches of a conditional (and domain-guarded operands)
            # are evaluated eagerly, then discarded through the validity
            # mask; errstate silences the RuntimeWarnings of the masked lanes
            '    with _np.errstate(all="ignore"):',
            emitter.body(),
            f"    return rt.build(_ts, {out_v}, {out_k}, t_start)",
        ]
        source = "\n".join(line for line in lines if line.strip() or line == "")
        accesses = collect_accesses(self.te.expr)
        return KernelSpec(
            name=self.te.name,
            tdom=self.te.tdom,
            source=source,
            element_sources=list(self.element_sources),
            aggregates=list(self.aggregates),
            accesses=accesses,
            referenced=list(accesses.keys()),
            reduce_sites=list(self.reduce_sites),
            te=self.te,
            static_cost=estimate_static_cost(self.te),
        )


def generate_kernel_spec(te: TemporalExpr) -> KernelSpec:
    """Generate the Python kernel source for one temporal expression."""
    return _KernelBuilder(te).generate()
