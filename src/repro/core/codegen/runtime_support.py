"""Runtime support objects for generated kernels.

A generated kernel is pure straight-line NumPy code; everything that cannot
be expressed as source text — the aggregate function registry, compiled
element-map functions, the evaluation-grid computation and the snapshot
buffer constructors — is provided through a :class:`KernelRuntime` instance
(`rt` in the generated source).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, MutableMapping, Optional, Tuple

import numpy as np

from ...errors import ExecutionError
from ...windowing.functions import AggregateFunction
from ...windowing.sliding import RangeAggregator
from ..ir.nodes import TDom
from ..lineage.boundary import AccessPattern
from ..runtime.ssbuf import SSBuf
from .grid import evaluation_times_for_accesses

__all__ = ["KernelRuntime"]


class KernelRuntime:
    """Per-kernel helper object passed to generated code as ``rt``.

    The runtime is **immutable after construction**: it carries only the
    compile-time registries (aggregates, element maps, access patterns), no
    execution state.  Anything that lives for one kernel invocation — today
    the :class:`RangeAggregator` cache — is allocated by the generated
    kernel itself and threaded through the ``rt`` calls, so one compiled
    query can run concurrently over many partitions (threads sharing a
    ``CompiledQuery``, or a process pool's per-process rebuilds) without
    any cross-run interference.  An earlier design kept the aggregator
    cache on the runtime, keyed by ``id(buf)`` and cleared by
    :meth:`eval_times`; that was both a cross-thread stomp (one partition
    wiping another's cache mid-run) and an ``id``-reuse staleness hazard.

    Parameters
    ----------
    accesses:
        Access pattern of the kernel's expression (drives the evaluation
        grid).
    tdom:
        Time domain of the temporal expression (precision snapping).
    aggregates:
        Registry of aggregate functions, indexed by the integers embedded in
        the generated source.
    element_functions:
        Compiled element-map functions (one per registered element source).
    """

    #: exposed so generated code can say ``_np = rt.np``
    np = np

    def __init__(
        self,
        accesses: Mapping[str, AccessPattern],
        tdom: TDom,
        aggregates: List[AggregateFunction],
        element_functions: List,
    ):
        self.accesses = accesses
        self.tdom = tdom
        self.aggregates = aggregates
        self.element_functions = element_functions

    # ------------------------------------------------------------------ #
    # hooks called from generated code
    # ------------------------------------------------------------------ #
    def eval_times(self, env: Mapping[str, SSBuf], t_start: float, t_end: float) -> np.ndarray:
        """Output timestamps for the partition ``(t_start, t_end]``."""
        return evaluation_times_for_accesses(self.accesses, env, self.tdom, t_start, t_end)

    def empty(self, t_start: float) -> SSBuf:
        """Empty output buffer (no evaluation points in the partition)."""
        return SSBuf.empty(t_start)

    def point(
        self, env: Mapping[str, SSBuf], ref: str, offset: float, ts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized point access ``~ref[t + offset]`` at all output times."""
        buf = env.get(ref)
        if buf is None:
            raise ExecutionError(f"unknown temporal object ~{ref}")
        return buf.values_at(ts + offset)

    def reduce(
        self,
        env: Mapping[str, SSBuf],
        ref: str,
        start_offset: float,
        end_offset: float,
        agg_idx: int,
        elem_idx: int,
        ts: np.ndarray,
        cache: MutableMapping[Tuple[str, int, int], RangeAggregator],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized reduction over ``~ref[t+start_offset : t+end_offset]``.

        ``cache`` is the invocation's private aggregator cache (a fresh dict
        per generated-kernel call): several reductions over the same input
        within one invocation share the built :class:`RangeAggregator`
        index, and nothing outlives the run.
        """
        buf = env.get(ref)
        if buf is None:
            raise ExecutionError(f"unknown temporal object ~{ref}")
        aggregator = self._aggregator(buf, ref, agg_idx, elem_idx, cache)
        return aggregator.query(ts + start_offset, ts + end_offset)

    def build(self, ts: np.ndarray, values, valid, t_start: float) -> SSBuf:
        """Assemble the output snapshot buffer from the kernel's arrays.

        The buffer is not compacted: downstream reductions fold one value per
        snapshot, so merging adjacent equal snapshots would change their
        results.
        """
        values = np.broadcast_to(np.asarray(values, dtype=np.float64), ts.shape).copy()
        valid = np.broadcast_to(np.asarray(valid, dtype=bool), ts.shape).copy()
        return SSBuf(ts, values, valid, start_time=t_start)

    # ------------------------------------------------------------------ #
    # internal helpers
    # ------------------------------------------------------------------ #
    def _aggregator(
        self,
        buf: SSBuf,
        ref: str,
        agg_idx: int,
        elem_idx: int,
        cache: MutableMapping[Tuple[str, int, int], RangeAggregator],
    ) -> RangeAggregator:
        # keyed by input *name*, not id(buf): within one invocation the env
        # binding is stable, and names cannot be recycled the way object ids
        # of freed buffers can.
        key = (ref, agg_idx, elem_idx)
        cached = cache.get(key)
        if cached is not None:
            return cached
        agg = self.aggregates[agg_idx]
        target = buf
        if elem_idx >= 0:
            element_fn = self.element_functions[elem_idx]
            mapped_vals, mapped_ok = element_fn(buf.values, self)
            target = SSBuf(
                buf.times,
                mapped_vals,
                np.asarray(buf.valid, dtype=bool) & np.asarray(mapped_ok, dtype=bool),
                start_time=buf.start_time,
            )
        aggregator = RangeAggregator(target, agg)
        cache[key] = aggregator
        return aggregator
