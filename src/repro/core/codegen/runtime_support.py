"""Runtime support objects for generated kernels.

A generated kernel is pure straight-line NumPy code; everything that cannot
be expressed as source text — the aggregate function registry, compiled
element-map functions, the evaluation-grid computation and the snapshot
buffer constructors — is provided through a :class:`KernelRuntime` instance
(`rt` in the generated source).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ...errors import ExecutionError
from ...windowing.functions import AggregateFunction
from ...windowing.sliding import RangeAggregator
from ..ir.nodes import TDom
from ..lineage.boundary import AccessPattern
from ..runtime.ssbuf import SSBuf
from .grid import evaluation_times_for_accesses

__all__ = ["KernelRuntime"]


class KernelRuntime:
    """Per-kernel helper object passed to generated code as ``rt``.

    Parameters
    ----------
    accesses:
        Access pattern of the kernel's expression (drives the evaluation
        grid).
    tdom:
        Time domain of the temporal expression (precision snapping).
    aggregates:
        Registry of aggregate functions, indexed by the integers embedded in
        the generated source.
    element_functions:
        Compiled element-map functions (one per registered element source).
    """

    #: exposed so generated code can say ``_np = rt.np``
    np = np

    def __init__(
        self,
        accesses: Mapping[str, AccessPattern],
        tdom: TDom,
        aggregates: List[AggregateFunction],
        element_functions: List,
    ):
        self.accesses = accesses
        self.tdom = tdom
        self.aggregates = aggregates
        self.element_functions = element_functions
        self._range_cache: Dict[Tuple[int, int, int], RangeAggregator] = {}

    # ------------------------------------------------------------------ #
    # hooks called from generated code
    # ------------------------------------------------------------------ #
    def eval_times(self, env: Mapping[str, SSBuf], t_start: float, t_end: float) -> np.ndarray:
        """Output timestamps for the partition ``(t_start, t_end]``."""
        self._range_cache.clear()
        return evaluation_times_for_accesses(self.accesses, env, self.tdom, t_start, t_end)

    def empty(self, t_start: float) -> SSBuf:
        """Empty output buffer (no evaluation points in the partition)."""
        return SSBuf.empty(t_start)

    def point(
        self, env: Mapping[str, SSBuf], ref: str, offset: float, ts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized point access ``~ref[t + offset]`` at all output times."""
        buf = env.get(ref)
        if buf is None:
            raise ExecutionError(f"unknown temporal object ~{ref}")
        return buf.values_at(ts + offset)

    def reduce(
        self,
        env: Mapping[str, SSBuf],
        ref: str,
        start_offset: float,
        end_offset: float,
        agg_idx: int,
        elem_idx: int,
        ts: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized reduction over ``~ref[t+start_offset : t+end_offset]``."""
        buf = env.get(ref)
        if buf is None:
            raise ExecutionError(f"unknown temporal object ~{ref}")
        aggregator = self._aggregator(buf, agg_idx, elem_idx)
        return aggregator.query(ts + start_offset, ts + end_offset)

    def build(self, ts: np.ndarray, values, valid, t_start: float) -> SSBuf:
        """Assemble the output snapshot buffer from the kernel's arrays.

        The buffer is not compacted: downstream reductions fold one value per
        snapshot, so merging adjacent equal snapshots would change their
        results.
        """
        values = np.broadcast_to(np.asarray(values, dtype=np.float64), ts.shape).copy()
        valid = np.broadcast_to(np.asarray(valid, dtype=bool), ts.shape).copy()
        return SSBuf(ts, values, valid, start_time=t_start)

    # ------------------------------------------------------------------ #
    # internal helpers
    # ------------------------------------------------------------------ #
    def _aggregator(self, buf: SSBuf, agg_idx: int, elem_idx: int) -> RangeAggregator:
        key = (id(buf), agg_idx, elem_idx)
        cached = self._range_cache.get(key)
        if cached is not None:
            return cached
        agg = self.aggregates[agg_idx]
        target = buf
        if elem_idx >= 0:
            element_fn = self.element_functions[elem_idx]
            mapped_vals, mapped_ok = element_fn(buf.values, self)
            target = SSBuf(
                buf.times,
                mapped_vals,
                np.asarray(buf.valid, dtype=bool) & np.asarray(mapped_ok, dtype=bool),
                start_time=buf.start_time,
            )
        aggregator = RangeAggregator(target, agg)
        self._range_cache[key] = aggregator
        return aggregator
