"""Event-centric query frontend.

Users of SPEs write queries as chains of the familiar temporal operators —
Select, Where, temporal Join, windowed aggregation, Shift, Chop (Figure 1 of
the paper).  This module provides exactly that surface and implements the
first stage of the TiLT pipeline (Figure 3a): translating the operator chain
into a TiLT IR program of temporal expressions.

Operator arguments are scalar IR expressions written over placeholders
rather than Python lambdas, so the translation is purely structural:

* :data:`PAYLOAD` (``E`` in the examples) — the current event's payload;
* :data:`LEFT` / :data:`RIGHT` — the two sides of a temporal join.

Example — the paper's trend-analysis query::

    from repro.core.frontend import source, PAYLOAD as E, LEFT, RIGHT
    from repro.windowing import MEAN

    stock = source("stock")
    avg10 = stock.window(10, 1).aggregate(MEAN).named("avg10")
    avg20 = stock.window(20, 1).aggregate(MEAN).named("avg20")
    trend = avg10.join(avg20, LEFT - RIGHT).where(E > 0)
    program = trend.to_program()
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...errors import QueryBuildError
from ...windowing.functions import (
    COUNT,
    MAX,
    MEAN,
    MIN,
    STDDEV,
    SUM,
    VARIANCE,
    AggregateFunction,
)
from ..ir.builder import IRBuilder
from ..ir.nodes import (
    Expr,
    IsValid,
    Phi,
    IfThenElse,
    TDom,
    TiltProgram,
    TRef,
    Var,
    lift,
    when,
)
from ..optimizer.rewrite import substitute_vars

__all__ = [
    "PAYLOAD",
    "LEFT",
    "RIGHT",
    "QueryNode",
    "source",
    "Select",
    "Where",
    "Shift",
    "Chop",
    "WindowAggregate",
    "Join",
]

#: Placeholder for the current event payload in Select/Where expressions.
PAYLOAD = Var("%payload")
#: Placeholders for the two sides of a temporal Join expression.
LEFT = Var("%left")
RIGHT = Var("%right")


class QueryNode:
    """Base class of frontend operator nodes.

    A node is an immutable description of one temporal operator applied to
    one or two upstream nodes; chaining methods build the operator DAG and
    :meth:`to_program` translates the DAG rooted at this node into a
    :class:`~repro.core.ir.nodes.TiltProgram`.
    """

    def __init__(self, parents: Sequence["QueryNode"], name: Optional[str] = None):
        self.parents: Tuple["QueryNode", ...] = tuple(parents)
        self.name = name

    # ------------------------------------------------------------------ #
    # fluent operator API
    # ------------------------------------------------------------------ #
    def named(self, name: str) -> "QueryNode":
        """Give this operator's output temporal object an explicit name."""
        self.name = name
        return self

    def select(self, expr: Union[Expr, float]) -> "Select":
        """Per-event projection: transform the payload with ``expr`` over :data:`PAYLOAD`."""
        return Select(self, lift(expr))

    def where(self, predicate: Union[Expr, bool]) -> "Where":
        """Per-event filter: keep events whose payload satisfies ``predicate``."""
        return Where(self, lift(predicate))

    def shift(self, delay: float) -> "Shift":
        """Delay the stream by ``delay`` seconds (the Shift operator)."""
        return Shift(self, delay)

    def chop(self, period: float) -> "Chop":
        """Chop event intervals at multiples of ``period`` seconds."""
        return Chop(self, period)

    def window(self, size: float, stride: Optional[float] = None) -> "WindowSpec":
        """Start a windowed aggregation: ``.window(size, stride).aggregate(...)``."""
        return WindowSpec(self, size, size if stride is None else stride)

    def join(self, other: "QueryNode", expr: Union[Expr, float]) -> "Join":
        """Temporal join: output exists where both inputs have events, with a
        payload computed by ``expr`` over :data:`LEFT` / :data:`RIGHT`."""
        return Join(self, other, lift(expr))

    def coalesce(self, other: "QueryNode") -> "CoalesceJoin":
        """Left-preferring temporal merge: this stream's value where it has
        events, ``other``'s value in the gaps (used by the imputation query)."""
        return CoalesceJoin(self, other)

    # common aggregation shortcuts ------------------------------------- #
    def sum(self, size: float, stride: Optional[float] = None) -> "WindowAggregate":
        return self.window(size, stride).aggregate(SUM)

    def count(self, size: float, stride: Optional[float] = None) -> "WindowAggregate":
        return self.window(size, stride).aggregate(COUNT)

    def mean(self, size: float, stride: Optional[float] = None) -> "WindowAggregate":
        return self.window(size, stride).aggregate(MEAN)

    def stddev(self, size: float, stride: Optional[float] = None) -> "WindowAggregate":
        return self.window(size, stride).aggregate(STDDEV)

    def max(self, size: float, stride: Optional[float] = None) -> "WindowAggregate":
        return self.window(size, stride).aggregate(MAX)

    def min(self, size: float, stride: Optional[float] = None) -> "WindowAggregate":
        return self.window(size, stride).aggregate(MIN)

    # ------------------------------------------------------------------ #
    # translation
    # ------------------------------------------------------------------ #
    def to_program(self, output_name: Optional[str] = None) -> TiltProgram:
        """Translate the operator DAG rooted at this node into TiLT IR."""
        builder = IRBuilder()
        translated: Dict[int, TRef] = {}
        out_ref = self._translate_cached(builder, translated)
        if output_name is not None and output_name != out_ref.name:
            builder.define(output_name, out_ref.at(0.0))
            return builder.build(output=output_name)
        return builder.build(output=out_ref.name)

    def _translate_cached(self, builder: IRBuilder, memo: Dict[int, TRef]) -> TRef:
        key = id(self)
        if key not in memo:
            memo[key] = self._translate(builder, memo)
        return memo[key]

    # subclasses implement -------------------------------------------- #
    def _translate(self, builder: IRBuilder, memo: Dict[int, TRef]) -> TRef:
        raise NotImplementedError

    def _result_name(self, builder: IRBuilder, prefix: str) -> str:
        return self.name if self.name else builder.fresh_name(prefix)

    def describe(self) -> str:
        """Short operator description (used in logs and tests)."""
        return type(self).__name__

    def operator_chain(self) -> List[str]:
        """Flattened list of operator descriptions (depth-first)."""
        ops: List[str] = []
        for parent in self.parents:
            ops.extend(parent.operator_chain())
        ops.append(self.describe())
        return ops


class StreamSource(QueryNode):
    """Leaf node: an input data stream (optionally one field of a structured stream)."""

    def __init__(self, stream: str, field: Optional[str] = None):
        super().__init__(parents=())
        self.stream = stream
        self.field = field

    def _translate(self, builder: IRBuilder, memo: Dict[int, TRef]) -> TRef:
        return builder.stream(self.stream, self.field)

    def describe(self) -> str:
        suffix = f".{self.field}" if self.field else ""
        return f"Source({self.stream}{suffix})"


def source(stream: str, field: Optional[str] = None) -> StreamSource:
    """Declare an input stream (one field of it for structured streams)."""
    return StreamSource(stream, field)


class Select(QueryNode):
    """Per-event projection (Figure 1a)."""

    def __init__(self, parent: QueryNode, expr: Expr, name: Optional[str] = None):
        super().__init__(parents=(parent,), name=name)
        self.expr = expr

    def _translate(self, builder: IRBuilder, memo: Dict[int, TRef]) -> TRef:
        upstream = self.parents[0]._translate_cached(builder, memo)
        body = substitute_vars(self.expr, {PAYLOAD.name: upstream.at(0.0)})
        return builder.define(self._result_name(builder, "select"), body)

    def describe(self) -> str:
        return "Select"


class Where(QueryNode):
    """Per-event filter (Figure 1b): events failing the predicate become φ."""

    def __init__(self, parent: QueryNode, predicate: Expr, name: Optional[str] = None):
        super().__init__(parents=(parent,), name=name)
        self.predicate = predicate

    def _translate(self, builder: IRBuilder, memo: Dict[int, TRef]) -> TRef:
        upstream = self.parents[0]._translate_cached(builder, memo)
        value = upstream.at(0.0)
        cond = substitute_vars(self.predicate, {PAYLOAD.name: value})
        body = when(cond, value)
        return builder.define(self._result_name(builder, "where"), body)

    def describe(self) -> str:
        return "Where"


class Shift(QueryNode):
    """Delay the stream by a fixed number of seconds."""

    def __init__(self, parent: QueryNode, delay: float, name: Optional[str] = None):
        super().__init__(parents=(parent,), name=name)
        if delay < 0:
            raise QueryBuildError("shift delay must be non-negative")
        self.delay = float(delay)

    def _translate(self, builder: IRBuilder, memo: Dict[int, TRef]) -> TRef:
        upstream = self.parents[0]._translate_cached(builder, memo)
        return builder.define(self._result_name(builder, "shift"), upstream.at(-self.delay))

    def describe(self) -> str:
        return f"Shift({self.delay:g})"


class Chop(QueryNode):
    """Chop event validity intervals at multiples of ``period`` seconds.

    In the time-centric model chopping does not change the value of the
    temporal object at any time point — it only constrains where the output's
    snapshots may lie, i.e. it is the identity expression on a time domain
    with precision ``period``.
    """

    def __init__(self, parent: QueryNode, period: float, name: Optional[str] = None):
        super().__init__(parents=(parent,), name=name)
        if period <= 0:
            raise QueryBuildError("chop period must be positive")
        self.period = float(period)

    def _translate(self, builder: IRBuilder, memo: Dict[int, TRef]) -> TRef:
        upstream = self.parents[0]._translate_cached(builder, memo)
        return builder.define(
            self._result_name(builder, "chop"), upstream.at(0.0), precision=self.period
        )

    def describe(self) -> str:
        return f"Chop({self.period:g})"


@dataclass
class WindowSpec:
    """Intermediate object returned by :meth:`QueryNode.window`."""

    parent: QueryNode
    size: float
    stride: float

    def __post_init__(self) -> None:
        if self.size <= 0 or self.stride <= 0:
            raise QueryBuildError("window size and stride must be positive")

    def aggregate(self, agg: AggregateFunction, element: Optional[Expr] = None) -> "WindowAggregate":
        """Apply a (built-in or custom) reduction over the window."""
        return WindowAggregate(self.parent, self.size, self.stride, agg, element)

    # convenience spellings
    def sum(self) -> "WindowAggregate":
        return self.aggregate(SUM)

    def count(self) -> "WindowAggregate":
        return self.aggregate(COUNT)

    def mean(self) -> "WindowAggregate":
        return self.aggregate(MEAN)

    def stddev(self) -> "WindowAggregate":
        return self.aggregate(STDDEV)

    def variance(self) -> "WindowAggregate":
        return self.aggregate(VARIANCE)

    def max(self) -> "WindowAggregate":
        return self.aggregate(MAX)

    def min(self) -> "WindowAggregate":
        return self.aggregate(MIN)


class WindowAggregate(QueryNode):
    """Sliding/tumbling window aggregation (Figure 1d).

    ``element`` optionally maps each event payload (over :data:`PAYLOAD`)
    before it enters the aggregate — the hook used by custom aggregations
    such as "sum of squared samples".
    """

    def __init__(
        self,
        parent: QueryNode,
        size: float,
        stride: float,
        agg: AggregateFunction,
        element: Optional[Expr] = None,
        name: Optional[str] = None,
    ):
        super().__init__(parents=(parent,), name=name)
        self.size = float(size)
        self.stride = float(stride)
        self.agg = agg
        self.element = element

    def _translate(self, builder: IRBuilder, memo: Dict[int, TRef]) -> TRef:
        from ..ir.nodes import ELEM_VAR  # local import to avoid cycle noise

        upstream = self.parents[0]._translate_cached(builder, memo)
        element = None
        if self.element is not None:
            element = substitute_vars(self.element, {PAYLOAD.name: Var(ELEM_VAR)})
        body = upstream.window(-self.size, 0.0).reduce(self.agg, element)
        return builder.define(
            self._result_name(builder, f"w{self.agg.name}"), body, precision=self.stride
        )

    def describe(self) -> str:
        return f"Window({self.size:g},{self.stride:g}).{self.agg.name}"


class CoalesceJoin(QueryNode):
    """Left-preferring temporal merge of two streams.

    The output at any time is the left input's value when the left input has
    an active event, and the right input's value otherwise.  In TiLT IR this
    is a single ``Coalesce`` expression; event-centric engines implement it
    as a left-outer interval merge.
    """

    def __init__(self, left: QueryNode, right: QueryNode, name: Optional[str] = None):
        super().__init__(parents=(left, right), name=name)

    def _translate(self, builder: IRBuilder, memo: Dict[int, TRef]) -> TRef:
        from ..ir.nodes import Coalesce

        left = self.parents[0]._translate_cached(builder, memo)
        right = self.parents[1]._translate_cached(builder, memo)
        body = Coalesce(left.at(0.0), right.at(0.0))
        return builder.define(self._result_name(builder, "coalesce"), body)

    def describe(self) -> str:
        return "Coalesce"


class Join(QueryNode):
    """Temporal (interval-intersection) join of two streams (Figure 1c)."""

    def __init__(
        self, left: QueryNode, right: QueryNode, expr: Expr, name: Optional[str] = None
    ):
        super().__init__(parents=(left, right), name=name)
        self.expr = expr

    def _translate(self, builder: IRBuilder, memo: Dict[int, TRef]) -> TRef:
        left = self.parents[0]._translate_cached(builder, memo)
        right = self.parents[1]._translate_cached(builder, memo)
        lval = left.at(0.0)
        rval = right.at(0.0)
        payload = substitute_vars(self.expr, {LEFT.name: lval, RIGHT.name: rval})
        body = IfThenElse(IsValid(lval) & IsValid(rval), payload, Phi())
        return builder.define(self._result_name(builder, "join"), body)

    def describe(self) -> str:
        return "Join"
