"""Static analyses over TiLT IR expressions and programs.

These helpers answer the structural questions the rest of the compiler needs:

* which temporal objects does an expression reference, and with what point
  offsets / window extents (the raw material of boundary resolution);
* the dependency graph between the temporal expressions of a program and a
  topological evaluation order;
* whether an expression contains a reduction (a "pipeline breaker" in the
  event-centric terminology of Section 3);
* the set of free scalar variables (used to check Let scoping).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Set, Tuple

from ...errors import ValidationError
from .nodes import (
    ELEM_VAR,
    Expr,
    Let,
    Reduce,
    TIndex,
    TRef,
    TWindow,
    TemporalExpr,
    TiltProgram,
    Var,
)
from .visitor import ExprVisitor

__all__ = [
    "referenced_streams",
    "reference_extents",
    "contains_reduce",
    "free_variables",
    "dependency_graph",
    "topological_order",
    "count_nodes",
    "window_spans",
    "estimate_static_cost",
]


class _StreamRefCollector(ExprVisitor):
    def __init__(self) -> None:
        self.refs: "OrderedDict[str, None]" = OrderedDict()

    def visit_tref(self, node: TRef) -> None:
        self.refs.setdefault(node.name)

    def visit_tindex(self, node: TIndex) -> None:
        self.refs.setdefault(node.ref)

    def visit_twindow(self, node: TWindow) -> None:
        self.refs.setdefault(node.ref)

    def visit_reduce(self, node: Reduce) -> None:
        self.visit(node.window)
        if node.element is not None:
            self.visit(node.element)


def referenced_streams(expr: Expr) -> List[str]:
    """Names of all temporal objects referenced by ``expr`` (in first-use order)."""
    collector = _StreamRefCollector()
    collector.visit(expr)
    return list(collector.refs.keys())


class _ExtentCollector(ExprVisitor):
    """Collect, per referenced temporal object, the (min, max) time offsets accessed."""

    def __init__(self) -> None:
        self.extents: Dict[str, Tuple[float, float]] = {}

    def _update(self, name: str, lo: float, hi: float) -> None:
        cur = self.extents.get(name)
        if cur is None:
            self.extents[name] = (lo, hi)
        else:
            self.extents[name] = (min(cur[0], lo), max(cur[1], hi))

    def visit_tref(self, node: TRef) -> None:
        self._update(node.name, 0.0, 0.0)

    def visit_tindex(self, node: TIndex) -> None:
        self._update(node.ref, node.offset, node.offset)

    def visit_twindow(self, node: TWindow) -> None:
        self._update(node.ref, node.start_offset, node.end_offset)

    def visit_reduce(self, node: Reduce) -> None:
        self.visit(node.window)
        if node.element is not None:
            self.visit(node.element)


def reference_extents(expr: Expr) -> Dict[str, Tuple[float, float]]:
    """For every referenced temporal object, the range of time offsets accessed.

    A point access ``~x[t + o]`` contributes ``(o, o)``; a window
    ``~x[t+a : t+b]`` contributes ``(a, b)``.  These per-expression extents
    compose along the dependency chain into the temporal lineage used by
    boundary resolution (Section 5.1).
    """
    collector = _ExtentCollector()
    collector.visit(expr)
    return collector.extents


class _ReduceDetector(ExprVisitor):
    def __init__(self) -> None:
        self.found = False

    def visit_reduce(self, node: Reduce) -> None:
        self.found = True


def contains_reduce(expr: Expr) -> bool:
    """True when the expression contains a reduction (a pipeline breaker)."""
    detector = _ReduceDetector()
    detector.visit(expr)
    return detector.found


class _FreeVarCollector(ExprVisitor):
    def __init__(self) -> None:
        self.free: Set[str] = set()
        self._bound: List[str] = []

    def visit_var(self, node: Var) -> None:
        if node.name not in self._bound and node.name != ELEM_VAR:
            self.free.add(node.name)

    def visit_let(self, node: Let) -> None:
        # bindings are evaluated sequentially; each may refer to earlier ones
        added = 0
        for name, value in node.bindings:
            self.visit(value)
            self._bound.append(name)
            added += 1
        self.visit(node.body)
        del self._bound[-added:]

    def visit_reduce(self, node: Reduce) -> None:
        if node.element is not None:
            self.visit(node.element)


def free_variables(expr: Expr) -> Set[str]:
    """Scalar variables used but not bound by an enclosing Let."""
    collector = _FreeVarCollector()
    collector.visit(expr)
    return collector.free


def dependency_graph(program: TiltProgram) -> Dict[str, List[str]]:
    """Map every temporal expression name to the expression names it depends on.

    Input streams are not included in the dependency lists.
    """
    defined = set(program.defined_names())
    graph: Dict[str, List[str]] = {}
    for te in program.exprs:
        deps = [r for r in referenced_streams(te.expr) if r in defined and r != te.name]
        graph[te.name] = deps
    return graph


def topological_order(program: TiltProgram) -> List[str]:
    """Evaluation order of the program's temporal expressions.

    Raises :class:`ValidationError` if the dependency graph has a cycle.
    """
    graph = dependency_graph(program)
    order: List[str] = []
    state: Dict[str, int] = {}  # 0 = unvisited, 1 = visiting, 2 = done

    def visit(name: str) -> None:
        if state.get(name) == 2:
            return
        if state.get(name) == 1:
            raise ValidationError(f"cyclic dependency through temporal expression {name!r}")
        state[name] = 1
        for dep in graph.get(name, []):
            visit(dep)
        state[name] = 2
        order.append(name)

    for te in program.exprs:
        visit(te.name)
    return order


class _NodeCounter(ExprVisitor):
    def __init__(self) -> None:
        self.count = 0

    def visit(self, node: Expr) -> None:  # type: ignore[override]
        self.count += 1
        super().visit(node)

    def visit_reduce(self, node: Reduce) -> None:
        self.visit(node.window)
        if node.element is not None:
            self.visit(node.element)


def count_nodes(expr: Expr) -> int:
    """Number of IR nodes in an expression tree (used by tests and reports)."""
    counter = _NodeCounter()
    counter.visit(expr)
    return counter.count


class _WindowSpanCollector(ExprVisitor):
    def __init__(self) -> None:
        self.spans: List[float] = []

    def visit_twindow(self, node: TWindow) -> None:
        self.spans.append(node.end_offset - node.start_offset)

    def visit_reduce(self, node: Reduce) -> None:
        self.visit(node.window)
        if node.element is not None:
            self.visit(node.element)


def window_spans(expr: Expr) -> List[float]:
    """The temporal span of every ``TWindow`` in the expression tree."""
    collector = _WindowSpanCollector()
    collector.visit(expr)
    return collector.spans


def estimate_static_cost(te: TemporalExpr) -> float:
    """Static per-kernel cost estimate: window depth × op count.

    ``depth`` counts, in units of the expression's time-domain precision,
    how many snapshots the kernel's windows fold per output point (1 when
    the kernel is pure point-access).  The estimate is dimensionless and
    only meaningful *relative* to other kernels — the scheduler's cost EWMA
    uses it to seed a new tenant's per-tick cost from the observed
    seconds-per-cost-unit of tenants already running (see
    :class:`repro.serve.scheduler.DeficitFairPolicy`), instead of starting
    every tenant at "unknown".
    """
    ops = count_nodes(te.expr)
    spans = window_spans(te.expr)
    unit = te.tdom.precision if te.tdom.precision > 0 else 1.0
    finite = [s for s in spans if s == s and s != float("inf")]
    depth = sum(s / unit for s in finite)
    return float(ops) * (1.0 + depth)
