"""Fluent builder for TiLT IR programs.

The builder is the lowest-level public way to author a query: you declare
input temporal objects, define named temporal expressions over them, and
finally build an immutable :class:`~repro.core.ir.nodes.TiltProgram`.  The
event-centric frontend (``repro.core.frontend``) is a thin layer that emits
builder calls, mirroring the "translation to TiLT IR form" stage of
Figure 3a.

Example — the paper's trend-analysis query written directly in IR form::

    from repro.core.ir import IRBuilder, when
    from repro.windowing import SUM

    b = IRBuilder()
    stock = b.stream("stock")
    avg10 = b.define("avg10", stock.window(-10, 0).reduce(SUM) / 10.0, precision=1)
    avg20 = b.define("avg20", stock.window(-20, 0).reduce(SUM) / 20.0, precision=1)
    join = b.define("join", when(avg10.at().is_valid() & avg20.at().is_valid(),
                                 avg10.at() - avg20.at()), precision=1)
    b.define("filter", when(join.at() > 0, join.at()), precision=1)
    program = b.build(output="filter")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ...errors import QueryBuildError
from .nodes import (
    INFINITY,
    Expr,
    TDom,
    TIndex,
    TRef,
    TemporalExpr,
    TiltProgram,
    lift,
)
from .validation import validate_program
from .visitor import ExprTransformer

__all__ = ["IRBuilder", "normalize_expr"]


class _TRefNormalizer(ExprTransformer):
    """Replace bare temporal-object references used in scalar position with
    an explicit point access ``~ref[t]`` (TIndex with offset 0)."""

    def visit_tref(self, node: TRef) -> TIndex:
        return TIndex(node.name, 0.0)


def normalize_expr(expr: Expr) -> Expr:
    """Normalize an expression (currently: bare TRef → ``~ref[t]``)."""
    return _TRefNormalizer().visit(lift(expr))


class IRBuilder:
    """Incrementally assemble a :class:`TiltProgram`.

    Parameters
    ----------
    default_precision:
        Precision used for time domains when :meth:`define` is called without
        an explicit one.  ``0`` means "continuous": the output changes exactly
        when its inputs change.
    """

    def __init__(self, default_precision: float = 0.0):
        self._inputs: List[str] = []
        self._exprs: List[TemporalExpr] = []
        self._names: Dict[str, None] = {}
        self._default_precision = float(default_precision)
        self._anon_counter = 0

    # ------------------------------------------------------------------ #
    # declaration API
    # ------------------------------------------------------------------ #
    def stream(self, name: str, field: Optional[str] = None) -> TRef:
        """Declare (or re-reference) an input temporal object.

        For structured streams, pass ``field`` to reference one payload
        column; the resulting temporal object is named ``"<name>.<field>"``,
        matching the column naming of
        :func:`repro.core.runtime.ssbuf.ssbufs_from_stream`.
        """
        full = f"{name}.{field}" if field else name
        if full in self._names:
            raise QueryBuildError(f"name {full!r} is already used by a temporal expression")
        if full not in self._inputs:
            self._inputs.append(full)
        return TRef(full)

    def define(
        self,
        name: str,
        expr: Union[Expr, float, int],
        *,
        precision: Optional[float] = None,
        tdom: Optional[TDom] = None,
    ) -> TRef:
        """Define a named temporal expression and return a reference to it.

        ``precision`` (or a full ``tdom``) controls how often the output may
        change; when omitted the builder default applies.  The returned
        :class:`TRef` can be indexed, windowed or shifted in later
        definitions.
        """
        if name in self._names or name in self._inputs:
            raise QueryBuildError(f"temporal expression name {name!r} is already in use")
        if tdom is None:
            prec = self._default_precision if precision is None else float(precision)
            tdom = TDom(-INFINITY, INFINITY, prec)
        elif precision is not None:
            raise QueryBuildError("pass either precision or tdom, not both")
        body = normalize_expr(lift(expr))
        self._exprs.append(TemporalExpr(name, tdom, body))
        self._names[name] = None
        return TRef(name)

    def fresh_name(self, prefix: str = "tmp") -> str:
        """Generate a unique temporary name (used by the frontend translator)."""
        while True:
            self._anon_counter += 1
            candidate = f"{prefix}_{self._anon_counter}"
            if candidate not in self._names and candidate not in self._inputs:
                return candidate

    # ------------------------------------------------------------------ #
    # introspection / build
    # ------------------------------------------------------------------ #
    @property
    def inputs(self) -> List[str]:
        """Declared input stream names (in declaration order)."""
        return list(self._inputs)

    @property
    def definitions(self) -> List[str]:
        """Names of the temporal expressions defined so far."""
        return [te.name for te in self._exprs]

    def build(self, output: Optional[str] = None, *, validate: bool = True) -> TiltProgram:
        """Finalize the program.

        ``output`` defaults to the most recently defined expression.  The
        program is validated unless ``validate=False``.
        """
        if not self._exprs:
            raise QueryBuildError("cannot build a program with no temporal expressions")
        out = output or self._exprs[-1].name
        program = TiltProgram(tuple(self._inputs), tuple(self._exprs), out)
        if validate:
            validate_program(program)
        return program
