"""TiLT IR node definitions.

Section 4.1 of the paper introduces three constructs on top of a standard
functional scalar language:

* **temporal objects** — time-evolving values; referenced here by
  :class:`TRef` and sampled/windowed through :class:`TIndex` and
  :class:`TWindow`;
* **reduction functions** — :class:`Reduce`, folding a windowed temporal
  object into a scalar with an :class:`~repro.windowing.AggregateFunction`;
* **temporal expressions** — :class:`TemporalExpr`, defining an output
  temporal object as a functional transformation of input temporal objects
  over a :class:`TDom` time domain.

Every scalar expression evaluates to a ``(value, valid)`` pair: ``valid`` is
False when the value is the null value φ.  Arithmetic involving φ yields φ
(Section 4.1, Equation 1); the explicit :class:`IsValid` and
:class:`Coalesce` nodes are the only ways to escape φ-propagation.

All nodes are immutable dataclasses.  Scalar expression nodes overload the
usual Python operators so queries can be written naturally, e.g.::

    avg10 = stock.window(-10, 0).reduce(SUM) / 10.0
    avg20 = stock.window(-20, 0).reduce(SUM) / 20.0
    joined = when(avg10.is_valid() & avg20.is_valid(), avg10 - avg20)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

from ...errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import only needed for type checkers
    from ...windowing.functions import AggregateFunction

__all__ = [
    "INFINITY",
    "ELEM_VAR",
    "Expr",
    "Const",
    "Phi",
    "Var",
    "Let",
    "TRef",
    "TIndex",
    "TWindow",
    "Reduce",
    "BinOp",
    "UnaryOp",
    "IfThenElse",
    "IsValid",
    "Coalesce",
    "Call",
    "TDom",
    "TemporalExpr",
    "TiltProgram",
    "when",
    "lift",
    "ARITHMETIC_OPS",
    "COMPARISON_OPS",
    "LOGICAL_OPS",
    "UNARY_OPS",
    "CALL_FUNCTIONS",
]

INFINITY = math.inf

#: Name of the implicit per-snapshot variable available inside a Reduce's
#: element expression (see :class:`Reduce`).
ELEM_VAR = "%elem"

ARITHMETIC_OPS = ("+", "-", "*", "/", "%", "**", "min", "max")
COMPARISON_OPS = (">", "<", ">=", "<=", "==", "!=")
LOGICAL_OPS = ("and", "or")
UNARY_OPS = ("neg", "not", "abs", "sqrt", "exp", "log", "floor", "ceil", "sign")
CALL_FUNCTIONS = ("sqrt", "exp", "log", "abs", "floor", "ceil", "sin", "cos", "pow", "atan2")


def lift(value: Union["Expr", float, int, bool]) -> "Expr":
    """Coerce a Python scalar into a :class:`Const` (no-op for Expr)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(1.0 if value else 0.0)
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise ValidationError(f"cannot lift {value!r} into a TiLT expression")


@dataclass(frozen=True)
class Expr:
    """Base class of all scalar TiLT IR expressions."""

    # ------------------------------------------------------------------ #
    # operator overloading: arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other): return BinOp("+", self, lift(other))
    def __radd__(self, other): return BinOp("+", lift(other), self)
    def __sub__(self, other): return BinOp("-", self, lift(other))
    def __rsub__(self, other): return BinOp("-", lift(other), self)
    def __mul__(self, other): return BinOp("*", self, lift(other))
    def __rmul__(self, other): return BinOp("*", lift(other), self)
    def __truediv__(self, other): return BinOp("/", self, lift(other))
    def __rtruediv__(self, other): return BinOp("/", lift(other), self)
    def __mod__(self, other): return BinOp("%", self, lift(other))
    def __rmod__(self, other): return BinOp("%", lift(other), self)
    def __pow__(self, other): return BinOp("**", self, lift(other))
    def __neg__(self): return UnaryOp("neg", self)
    def __abs__(self): return UnaryOp("abs", self)

    # ------------------------------------------------------------------ #
    # operator overloading: comparisons / logic
    # ------------------------------------------------------------------ #
    def __gt__(self, other): return BinOp(">", self, lift(other))
    def __lt__(self, other): return BinOp("<", self, lift(other))
    def __ge__(self, other): return BinOp(">=", self, lift(other))
    def __le__(self, other): return BinOp("<=", self, lift(other))
    def eq(self, other): return BinOp("==", self, lift(other))
    def ne(self, other): return BinOp("!=", self, lift(other))
    def __and__(self, other): return BinOp("and", self, lift(other))
    def __or__(self, other): return BinOp("or", self, lift(other))
    def __invert__(self): return UnaryOp("not", self)

    # ------------------------------------------------------------------ #
    # φ helpers
    # ------------------------------------------------------------------ #
    def is_valid(self) -> "IsValid":
        """``self != φ`` — always-valid boolean."""
        return IsValid(self)

    def coalesce(self, default: Union["Expr", float]) -> "Coalesce":
        """Replace φ with ``default``."""
        return Coalesce(self, lift(default))

    def sqrt(self) -> "UnaryOp":
        return UnaryOp("sqrt", self)

    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions (overridden by composite nodes)."""
        return ()


@dataclass(frozen=True)
class Const(Expr):
    """A scalar constant (always valid)."""

    value: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", float(self.value))


@dataclass(frozen=True)
class Phi(Expr):
    """The null value φ.  Any arithmetic involving φ is φ."""


@dataclass(frozen=True)
class Var(Expr):
    """Reference to a let-bound scalar variable (or the Reduce element var)."""

    name: str


@dataclass(frozen=True)
class Let(Expr):
    """Scoped bindings: ``let name_i = value_i in body``.

    Fusion (Section 5.2) introduces Let nodes so that an inlined temporal
    expression is evaluated once even if referenced several times.
    """

    bindings: Tuple[Tuple[str, Expr], ...]
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return tuple(v for _, v in self.bindings) + (self.body,)


@dataclass(frozen=True)
class TRef(Expr):
    """Reference to a temporal object by name.

    The name refers either to an input stream or to the output of a previous
    :class:`TemporalExpr` in the same program.  A bare ``TRef`` used in a
    scalar position is sugar for ``TIndex(ref, 0)`` — "the value of the
    object *now*" — and the builder normalizes it accordingly.
    """

    name: str

    # temporal-object level helpers -------------------------------------------------
    def at(self, offset: float = 0.0) -> "TIndex":
        """Value of the temporal object at ``t + offset``."""
        return TIndex(self.name, float(offset))

    def shift(self, delay: float) -> "TIndex":
        """Value ``delay`` seconds ago (the Shift operator)."""
        return TIndex(self.name, -float(delay))

    def window(self, start_offset: float, end_offset: float = 0.0) -> "TWindow":
        """Derived temporal object over ``(t + start_offset, t + end_offset]``."""
        return TWindow(self.name, float(start_offset), float(end_offset))

    def children(self) -> Tuple[Expr, ...]:
        return ()


@dataclass(frozen=True)
class TIndex(Expr):
    """``~ref[t + offset]`` — point access into a temporal object."""

    ref: str
    offset: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "offset", float(self.offset))


@dataclass(frozen=True)
class TWindow(Expr):
    """``~ref[t + start_offset : t + end_offset]`` — a derived, windowed temporal object.

    Not a scalar by itself: it may only appear as the operand of
    :class:`Reduce`.
    """

    ref: str
    start_offset: float
    end_offset: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "start_offset", float(self.start_offset))
        object.__setattr__(self, "end_offset", float(self.end_offset))
        if self.end_offset <= self.start_offset:
            raise ValidationError(
                f"window ({self.start_offset}, {self.end_offset}] is empty or inverted"
            )

    def reduce(self, agg: AggregateFunction, element: Optional[Expr] = None) -> "Reduce":
        """Apply a reduction function to this window."""
        return Reduce(agg, self, element)

    @property
    def size(self) -> float:
        return self.end_offset - self.start_offset


@dataclass(frozen=True)
class Reduce(Expr):
    """``⊕(agg, ~ref[t+a : t+b])`` — reduce a windowed temporal object to a scalar.

    ``element`` is an optional per-snapshot mapping expression (in terms of
    the variable :data:`ELEM_VAR`) applied to each snapshot value before it is
    folded — e.g. squaring samples before a Sum.  Reductions over an empty
    window evaluate to φ.
    """

    agg: AggregateFunction
    window: TWindow
    element: Optional[Expr] = None

    def children(self) -> Tuple[Expr, ...]:
        if self.element is not None:
            return (self.window, self.element)
        return (self.window,)


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic / comparison / logical operation (φ-propagating)."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITHMETIC_OPS + COMPARISON_OPS + LOGICAL_OPS:
            raise ValidationError(f"unknown binary operator {self.op!r}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operation (φ-propagating)."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValidationError(f"unknown unary operator {self.op!r}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class IfThenElse(Expr):
    """Conditional: φ condition yields φ; otherwise picks a branch.

    A false/φ branch value of φ is how the Where operator drops values
    (Figure 4 of the paper).
    """

    cond: Expr
    then: Expr
    orelse: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)


@dataclass(frozen=True)
class IsValid(Expr):
    """``operand != φ`` — 1.0/0.0, never φ itself."""

    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Coalesce(Expr):
    """Value of ``operand`` unless it is φ, in which case ``default``."""

    operand: Expr
    default: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand, self.default)


@dataclass(frozen=True)
class Call(Expr):
    """External scalar function call (sqrt, exp, log, ...), φ-propagating."""

    func: str
    args: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.func not in CALL_FUNCTIONS:
            raise ValidationError(f"unknown external function {self.func!r}")
        object.__setattr__(self, "args", tuple(self.args))

    def children(self) -> Tuple[Expr, ...]:
        return self.args


def when(cond: Union[Expr, bool], value: Union[Expr, float], otherwise: Union[Expr, float, None] = None) -> IfThenElse:
    """Sugar for the Where-style conditional: ``value`` if ``cond`` else φ."""
    orelse = Phi() if otherwise is None else lift(otherwise)
    return IfThenElse(lift(cond), lift(value), orelse)


# ---------------------------------------------------------------------- #
# temporal expressions and programs
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TDom:
    """A time domain ``TDom(start, end, precision)`` (Section 4.1).

    ``start``/``end`` of ``-inf``/``+inf`` describe the un-resolved, infinite
    domain; boundary resolution (Section 5.1) replaces them with the symbolic
    partition interval ``(Ts, Te]`` at execution time.  ``precision`` is the
    finest granularity at which the output value may change; a value of 0
    means "continuous" — the output changes exactly when its inputs change.
    """

    start: float = -INFINITY
    end: float = INFINITY
    precision: float = 0.0

    def __post_init__(self) -> None:
        if self.precision < 0:
            raise ValidationError("time domain precision must be non-negative")
        if self.end < self.start:
            raise ValidationError("time domain end must not precede start")

    @property
    def is_bounded(self) -> bool:
        return math.isfinite(self.start) and math.isfinite(self.end)

    def with_bounds(self, start: float, end: float) -> "TDom":
        """Return a copy bounded to ``(start, end]``."""
        return TDom(start, end, self.precision)


@dataclass(frozen=True)
class TemporalExpr:
    """``~name[t] = expr`` over time domain ``tdom``."""

    name: str
    tdom: TDom
    expr: Expr

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("temporal expression must have a name")


@dataclass(frozen=True)
class TiltProgram:
    """A full TiLT IR query: inputs, a sequence of temporal expressions, and
    the name of the output temporal object.

    The expression list is ordered; an expression may reference inputs and
    any previously defined expression (the program is a DAG by
    construction).
    """

    inputs: Tuple[str, ...]
    exprs: Tuple[TemporalExpr, ...]
    output: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "exprs", tuple(self.exprs))

    def expr_named(self, name: str) -> TemporalExpr:
        """Look up a temporal expression by output name."""
        for te in self.exprs:
            if te.name == name:
                return te
        raise KeyError(name)

    def defined_names(self) -> Tuple[str, ...]:
        return tuple(te.name for te in self.exprs)

    @property
    def output_expr(self) -> TemporalExpr:
        return self.expr_named(self.output)

    def with_exprs(self, exprs: Sequence[TemporalExpr], output: Optional[str] = None) -> "TiltProgram":
        """Copy of the program with a new expression list (used by optimizer passes)."""
        return TiltProgram(self.inputs, tuple(exprs), output or self.output)
