"""Textual pretty-printer for TiLT IR.

Renders programs in a notation close to the paper's (Figure 3), e.g.::

    t = TDom(-inf, inf, 1)
    ~sum10[t] = reduce(sum, ~stock[t-10 : t])
    ~avg10[t] = (~sum10[t] / 10)
    ...
    output: ~filter

The printer is used for debugging, for golden tests of the optimizer passes,
and by ``TiltProgram``-level logging in the engine.
"""

from __future__ import annotations

import math
from typing import List

from .nodes import (
    BinOp,
    Call,
    Coalesce,
    Const,
    Expr,
    IfThenElse,
    IsValid,
    Let,
    Phi,
    Reduce,
    TDom,
    TIndex,
    TRef,
    TWindow,
    TemporalExpr,
    TiltProgram,
    UnaryOp,
    Var,
)

__all__ = ["format_expr", "format_tdom", "format_temporal_expr", "format_program"]


def _fmt_num(x: float) -> str:
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    if float(x).is_integer():
        return str(int(x))
    return f"{x:g}"


def _fmt_offset(offset: float) -> str:
    if offset == 0:
        return "t"
    sign = "+" if offset > 0 else "-"
    return f"t{sign}{_fmt_num(abs(offset))}"


def format_expr(expr: Expr) -> str:
    """Render a scalar TiLT IR expression as a single-line string."""
    if isinstance(expr, Const):
        return _fmt_num(expr.value)
    if isinstance(expr, Phi):
        return "φ"
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, TRef):
        return f"~{expr.name}[t]"
    if isinstance(expr, TIndex):
        return f"~{expr.ref}[{_fmt_offset(expr.offset)}]"
    if isinstance(expr, TWindow):
        return f"~{expr.ref}[{_fmt_offset(expr.start_offset)} : {_fmt_offset(expr.end_offset)}]"
    if isinstance(expr, Reduce):
        inner = format_expr(expr.window)
        if expr.element is not None:
            return f"reduce({expr.agg.name}, {inner}, elem => {format_expr(expr.element)})"
        return f"reduce({expr.agg.name}, {inner})"
    if isinstance(expr, BinOp):
        return f"({format_expr(expr.lhs)} {expr.op} {format_expr(expr.rhs)})"
    if isinstance(expr, UnaryOp):
        return f"{expr.op}({format_expr(expr.operand)})"
    if isinstance(expr, IfThenElse):
        return (
            f"({format_expr(expr.cond)} ? {format_expr(expr.then)} : {format_expr(expr.orelse)})"
        )
    if isinstance(expr, IsValid):
        return f"({format_expr(expr.operand)} != φ)"
    if isinstance(expr, Coalesce):
        return f"coalesce({format_expr(expr.operand)}, {format_expr(expr.default)})"
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, Let):
        lines = [f"{name} = {format_expr(value)}" for name, value in expr.bindings]
        body = format_expr(expr.body)
        return "{ " + "; ".join(lines) + f"; return {body} " + "}"
    raise TypeError(f"cannot format node of type {type(expr).__name__}")


def format_tdom(tdom: TDom) -> str:
    """Render a time domain."""
    return f"TDom({_fmt_num(tdom.start)}, {_fmt_num(tdom.end)}, {_fmt_num(tdom.precision)})"


def format_temporal_expr(te: TemporalExpr) -> str:
    """Render ``~name[t] = expr`` with its time domain."""
    return f"~{te.name}[t] = {format_expr(te.expr)}    # over {format_tdom(te.tdom)}"


def format_program(program: TiltProgram) -> str:
    """Render a whole TiLT program in evaluation order."""
    lines: List[str] = []
    lines.append("inputs: " + ", ".join(f"~{name}" for name in program.inputs))
    for te in program.exprs:
        lines.append(format_temporal_expr(te))
    lines.append(f"output: ~{program.output}")
    return "\n".join(lines)
