"""Structural validation of TiLT IR programs.

Run automatically before boundary resolution and compilation; every rule
reports a precise error message so that frontend bugs surface as
:class:`~repro.errors.ValidationError` rather than as wrong results.

Checks performed:

* the output name is defined and all definition names are unique;
* no definition shadows an input stream;
* every referenced temporal object is an input or an expression defined
  *earlier* in the program (the DAG is ordered);
* there are no cyclic dependencies;
* windowed temporal objects (``~x[a:b]``) only appear as Reduce operands;
* no free scalar variables escape their Let scope;
* reduce element expressions only reference the element variable and
  let-bound scalars (not temporal objects).
"""

from __future__ import annotations

from typing import List, Set

from ...errors import ValidationError
from .analysis import free_variables, referenced_streams, topological_order
from .nodes import (
    ELEM_VAR,
    BinOp,
    Call,
    Coalesce,
    Expr,
    IfThenElse,
    IsValid,
    Let,
    Phi,
    Reduce,
    TIndex,
    TRef,
    TWindow,
    TemporalExpr,
    TiltProgram,
)

__all__ = ["validate_program", "validate_expr"]


def _check_windows_only_under_reduce(expr: Expr, path: str) -> None:
    if isinstance(expr, TWindow):
        raise ValidationError(
            f"{path}: windowed temporal object ~{expr.ref}[...] may only be used "
            "as the operand of a reduction"
        )
    if isinstance(expr, Reduce):
        # the window operand is legal here; only check the element expression
        if expr.element is not None:
            _check_windows_only_under_reduce(expr.element, path)
        return
    for child in expr.children():
        _check_windows_only_under_reduce(child, path)


def _check_reduce_elements(expr: Expr, path: str) -> None:
    if isinstance(expr, Reduce) and expr.element is not None:
        refs = referenced_streams(expr.element)
        if refs:
            raise ValidationError(
                f"{path}: reduce element expression may not reference temporal objects "
                f"(found {refs})"
            )
    for child in expr.children():
        _check_reduce_elements(child, path)


def validate_expr(expr: Expr, path: str = "<expr>") -> None:
    """Validate a standalone scalar expression."""
    _check_windows_only_under_reduce(expr, path)
    _check_reduce_elements(expr, path)
    free = free_variables(expr)
    if free:
        raise ValidationError(f"{path}: unbound scalar variables {sorted(free)}")


def validate_program(program: TiltProgram) -> None:
    """Validate a full TiLT program; raises :class:`ValidationError` on failure."""
    names: List[str] = []
    inputs: Set[str] = set(program.inputs)
    if not program.exprs:
        raise ValidationError("program has no temporal expressions")

    defined: Set[str] = set()
    for te in program.exprs:
        if te.name in defined:
            raise ValidationError(f"temporal expression ~{te.name} is defined twice")
        if te.name in inputs:
            raise ValidationError(f"temporal expression ~{te.name} shadows an input stream")
        path = f"~{te.name}"
        validate_expr(te.expr, path)
        for ref in referenced_streams(te.expr):
            if ref not in inputs and ref not in defined:
                raise ValidationError(
                    f"{path}: references ~{ref} which is neither an input nor defined earlier"
                )
        defined.add(te.name)
        names.append(te.name)

    if program.output not in defined:
        raise ValidationError(f"output ~{program.output} is not defined by the program")

    # also verifies acyclicity (should be guaranteed by the ordering check above)
    topological_order(program)
