"""Visitor and transformer infrastructure for TiLT IR expressions.

Two base classes are provided:

* :class:`ExprVisitor` — read-only traversal with per-node-type dispatch
  (``visit_binop``, ``visit_reduce``, ...).  Unhandled node types fall back
  to :meth:`ExprVisitor.generic_visit`, which simply recurses into children.
* :class:`ExprTransformer` — rebuilding traversal.  Each ``visit_*`` method
  returns a (possibly new) expression; the default behaviour reconstructs the
  node with transformed children, preserving structural sharing where nothing
  changed.

Optimizer passes, the boundary-resolution analysis, the printers and the code
generator are all written on top of these.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .nodes import (
    BinOp,
    Call,
    Coalesce,
    Const,
    Expr,
    IfThenElse,
    IsValid,
    Let,
    Phi,
    Reduce,
    TIndex,
    TRef,
    TWindow,
    UnaryOp,
    Var,
)

__all__ = ["ExprVisitor", "ExprTransformer"]


def _method_name(node: Expr) -> str:
    return "visit_" + type(node).__name__.lower()


class ExprVisitor:
    """Read-only expression traversal with type-based dispatch."""

    def visit(self, node: Expr) -> Any:
        """Dispatch to ``visit_<nodetype>`` or :meth:`generic_visit`."""
        method = getattr(self, _method_name(node), None)
        if method is None:
            return self.generic_visit(node)
        return method(node)

    def generic_visit(self, node: Expr) -> Any:
        """Default: visit all children, return None."""
        for child in node.children():
            self.visit(child)
        return None


class ExprTransformer:
    """Rebuilding expression traversal.

    Subclasses override ``visit_<nodetype>`` methods to replace nodes;
    anything not overridden is reconstructed with transformed children.
    """

    def visit(self, node: Expr) -> Expr:
        method = getattr(self, _method_name(node), None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # default reconstruction per node type
    # ------------------------------------------------------------------ #
    def generic_visit(self, node: Expr) -> Expr:
        if isinstance(node, (Const, Phi, Var, TRef, TIndex, TWindow)):
            return node
        if isinstance(node, Let):
            bindings = tuple((name, self.visit(value)) for name, value in node.bindings)
            body = self.visit(node.body)
            return Let(bindings, body)
        if isinstance(node, Reduce):
            element = self.visit(node.element) if node.element is not None else None
            window = self.visit(node.window)
            if not isinstance(window, TWindow):
                # a transformer may not change a window into a scalar
                window = node.window
            return Reduce(node.agg, window, element)
        if isinstance(node, BinOp):
            return BinOp(node.op, self.visit(node.lhs), self.visit(node.rhs))
        if isinstance(node, UnaryOp):
            return UnaryOp(node.op, self.visit(node.operand))
        if isinstance(node, IfThenElse):
            return IfThenElse(self.visit(node.cond), self.visit(node.then), self.visit(node.orelse))
        if isinstance(node, IsValid):
            return IsValid(self.visit(node.operand))
        if isinstance(node, Coalesce):
            return Coalesce(self.visit(node.operand), self.visit(node.default))
        if isinstance(node, Call):
            return Call(node.func, tuple(self.visit(a) for a in node.args))
        raise TypeError(f"unknown IR node type: {type(node).__name__}")
