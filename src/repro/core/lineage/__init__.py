"""Temporal lineage analysis and boundary resolution (Section 5.1)."""

from .boundary import (
    AccessPattern,
    BoundarySpec,
    collect_accesses,
    compose_extents,
    resolve_boundaries,
)

__all__ = [
    "AccessPattern",
    "BoundarySpec",
    "collect_accesses",
    "compose_extents",
    "resolve_boundaries",
]
