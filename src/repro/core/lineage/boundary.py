"""Temporal lineage and boundary resolution (Section 5.1 of the paper).

The time-centric IR makes the data dependency of every output time point
explicit: ``~filter[T]`` in the trend query only depends on ``~stock`` over
``(T-20, T]``.  This module composes those per-expression access extents
along the dependency chain of a program ("temporal lineage") and produces a
:class:`BoundarySpec`: for every *input* stream, the maximum lookback and
lookahead margin an arbitrary output interval ``(Ts, Te]`` requires.

The boundary spec is what makes synchronization-free parallel execution
possible (Section 6.2): the partitioner hands each worker an output interval
plus input slices extended by exactly these margins, so no two workers ever
need to exchange state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ...errors import BoundaryResolutionError
from ..ir.analysis import reference_extents, topological_order
from ..ir.nodes import Expr, Reduce, TIndex, TWindow, TiltProgram
from ..ir.visitor import ExprVisitor

__all__ = ["AccessPattern", "collect_accesses", "compose_extents", "BoundarySpec", "resolve_boundaries"]


@dataclass
class AccessPattern:
    """How one expression accesses one temporal object.

    ``point_offsets`` holds the offsets ``o`` of point accesses ``~x[t+o]``;
    ``windows`` holds ``(a, b)`` pairs of window accesses ``~x[t+a : t+b]``.
    """

    point_offsets: Set[float] = field(default_factory=set)
    windows: Set[Tuple[float, float]] = field(default_factory=set)

    @property
    def min_offset(self) -> float:
        candidates = list(self.point_offsets) + [a for a, _ in self.windows]
        return min(candidates) if candidates else 0.0

    @property
    def max_offset(self) -> float:
        candidates = list(self.point_offsets) + [b for _, b in self.windows]
        return max(candidates) if candidates else 0.0

    def boundary_offsets(self) -> Set[float]:
        """Offsets at which a change of the input can change the output.

        A point access at offset ``o`` reacts to input changes shifted by
        ``-o``; a window ``(a, b]`` reacts when a snapshot enters (shift
        ``-b``) or leaves (shift ``-a``) the window.
        """
        offs: Set[float] = set()
        for o in self.point_offsets:
            offs.add(o)
        for a, b in self.windows:
            offs.add(a)
            offs.add(b)
        return offs

    def merge(self, other: "AccessPattern") -> None:
        self.point_offsets |= other.point_offsets
        self.windows |= other.windows


class _AccessCollector(ExprVisitor):
    def __init__(self) -> None:
        self.accesses: Dict[str, AccessPattern] = {}

    def _pattern(self, name: str) -> AccessPattern:
        return self.accesses.setdefault(name, AccessPattern())

    def visit_tindex(self, node: TIndex) -> None:
        self._pattern(node.ref).point_offsets.add(node.offset)

    def visit_twindow(self, node: TWindow) -> None:
        self._pattern(node.ref).windows.add((node.start_offset, node.end_offset))

    def visit_reduce(self, node: Reduce) -> None:
        self.visit(node.window)
        if node.element is not None:
            self.visit(node.element)


def collect_accesses(expr: Expr) -> Dict[str, AccessPattern]:
    """Access pattern of a single expression, keyed by temporal object name."""
    collector = _AccessCollector()
    collector.visit(expr)
    return collector.accesses


def compose_extents(program: TiltProgram, target: str) -> Dict[str, Tuple[float, float]]:
    """Temporal lineage of ``target`` down to the program's *input* streams.

    Returns, for each input stream, the interval of time offsets (relative to
    an output time point ``T``) that computing ``~target[T]`` may read.
    Offsets compose additively along the dependency chain: if ``target``
    reads ``mid`` over ``[a, b]`` and ``mid`` reads ``in`` over ``[c, d]``,
    then ``target`` reads ``in`` over ``[a+c, b+d]``.
    """
    inputs = set(program.inputs)
    order = topological_order(program)
    # extents of each defined expression w.r.t. the *inputs*
    resolved: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for name in order:
        te = program.expr_named(name)
        own = reference_extents(te.expr)
        total: Dict[str, Tuple[float, float]] = {}
        for ref, (lo, hi) in own.items():
            if ref in inputs:
                _merge_extent(total, ref, lo, hi)
            else:
                for in_name, (ilo, ihi) in resolved[ref].items():
                    _merge_extent(total, in_name, lo + ilo, hi + ihi)
        resolved[name] = total
    if target in inputs:
        return {target: (0.0, 0.0)}
    if target not in resolved:
        raise BoundaryResolutionError(f"unknown temporal expression {target!r}")
    return resolved[target]


def _merge_extent(acc: Dict[str, Tuple[float, float]], name: str, lo: float, hi: float) -> None:
    cur = acc.get(name)
    if cur is None:
        acc[name] = (lo, hi)
    else:
        acc[name] = (min(cur[0], lo), max(cur[1], hi))


@dataclass(frozen=True)
class BoundarySpec:
    """Resolved boundary conditions of a program.

    ``margins[input]`` is ``(lookback, lookahead)``: producing output over
    ``(Ts, Te]`` requires input snapshots over
    ``(Ts - lookback, Te + lookahead]`` (Figure 3b of the paper, where the
    trend query resolves to ``~filter[Ts:Te] ⇐ ~stock[Ts-20 : Te]``).
    """

    margins: Dict[str, Tuple[float, float]]

    @property
    def max_lookback(self) -> float:
        return max((lb for lb, _ in self.margins.values()), default=0.0)

    @property
    def max_lookahead(self) -> float:
        return max((la for _, la in self.margins.values()), default=0.0)

    def lookback(self, input_name: str) -> float:
        return self.margins.get(input_name, (0.0, 0.0))[0]

    def lookahead(self, input_name: str) -> float:
        return self.margins.get(input_name, (0.0, 0.0))[1]

    def input_interval(self, input_name: str, t_start: float, t_end: float) -> Tuple[float, float]:
        """Input interval required to produce output over ``(t_start, t_end]``."""
        lb, la = self.margins.get(input_name, (0.0, 0.0))
        return (t_start - lb, t_end + la)

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``~out[Ts:Te] ⇐ ~stock[Ts-20 : Te]``."""
        parts = []
        for name, (lb, la) in sorted(self.margins.items()):
            lo = f"Ts-{lb:g}" if lb else "Ts"
            hi = f"Te+{la:g}" if la else "Te"
            parts.append(f"~{name}[{lo} : {hi}]")
        return " , ".join(parts)


def resolve_boundaries(program: TiltProgram) -> BoundarySpec:
    """Infer the boundary conditions of ``program``'s output expression.

    Raises :class:`BoundaryResolutionError` when a margin is unbounded
    (e.g. a window with an infinite extent), since such a query cannot be
    partitioned for parallel execution.
    """
    extents = compose_extents(program, program.output)
    margins: Dict[str, Tuple[float, float]] = {}
    for name in program.inputs:
        lo, hi = extents.get(name, (0.0, 0.0))
        if not (math.isfinite(lo) and math.isfinite(hi)):
            raise BoundaryResolutionError(
                f"input ~{name} has an unbounded temporal extent ({lo}, {hi}); "
                "the query cannot be partitioned"
            )
        lookback = max(0.0, -lo)
        lookahead = max(0.0, hi)
        margins[name] = (lookback, lookahead)
    return BoundarySpec(margins)
