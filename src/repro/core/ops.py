"""Scalar operator semantics shared by the interpreter, the constant folder
and the code generator.

Every helper returns ``(value, valid)``: domain errors (division by zero,
log of a non-positive number, square root of a negative number, ...) do not
raise — they produce φ, consistent with the paper's rule that any operation
on φ yields φ.  Keeping these semantics in one place guarantees the
interpreted and compiled execution modes agree bit-for-bit.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..errors import CompilationError

__all__ = ["eval_binop", "eval_unop", "eval_call", "NUMPY_BINOPS", "NUMPY_UNOPS", "NUMPY_CALLS"]


def eval_binop(op: str, a: float, b: float) -> Tuple[float, bool]:
    """Evaluate a binary operator on two (valid) scalars."""
    if op == "+":
        return a + b, True
    if op == "-":
        return a - b, True
    if op == "*":
        return a * b, True
    if op == "/":
        if b == 0:
            return 0.0, False
        return a / b, True
    if op == "%":
        if b == 0:
            return 0.0, False
        return math.fmod(a, b), True
    if op == "**":
        try:
            return float(a ** b), True
        except (OverflowError, ValueError, ZeroDivisionError):
            return 0.0, False
    if op == "min":
        return (a if a < b else b), True
    if op == "max":
        return (a if a > b else b), True
    if op == ">":
        return (1.0 if a > b else 0.0), True
    if op == "<":
        return (1.0 if a < b else 0.0), True
    if op == ">=":
        return (1.0 if a >= b else 0.0), True
    if op == "<=":
        return (1.0 if a <= b else 0.0), True
    if op == "==":
        return (1.0 if a == b else 0.0), True
    if op == "!=":
        return (1.0 if a != b else 0.0), True
    if op == "and":
        return (1.0 if (a != 0 and b != 0) else 0.0), True
    if op == "or":
        return (1.0 if (a != 0 or b != 0) else 0.0), True
    raise CompilationError(f"unknown binary operator {op!r}")


def eval_unop(op: str, a: float) -> Tuple[float, bool]:
    """Evaluate a unary operator on a (valid) scalar."""
    if op == "neg":
        return -a, True
    if op == "not":
        return (0.0 if a != 0 else 1.0), True
    if op == "abs":
        return abs(a), True
    if op == "sqrt":
        if a < 0:
            return 0.0, False
        return math.sqrt(a), True
    if op == "exp":
        try:
            return math.exp(a), True
        except OverflowError:
            return 0.0, False
    if op == "log":
        if a <= 0:
            return 0.0, False
        return math.log(a), True
    if op == "floor":
        return math.floor(a), True
    if op == "ceil":
        return math.ceil(a), True
    if op == "sign":
        return (0.0 if a == 0 else math.copysign(1.0, a)), True
    raise CompilationError(f"unknown unary operator {op!r}")


def eval_call(func: str, args: Sequence[float]) -> Tuple[float, bool]:
    """Evaluate an external function call on (valid) scalars."""
    try:
        if func == "sqrt":
            return eval_unop("sqrt", args[0])
        if func == "exp":
            return eval_unop("exp", args[0])
        if func == "log":
            return eval_unop("log", args[0])
        if func == "abs":
            return abs(args[0]), True
        if func == "floor":
            return math.floor(args[0]), True
        if func == "ceil":
            return math.ceil(args[0]), True
        if func == "sin":
            return math.sin(args[0]), True
        if func == "cos":
            return math.cos(args[0]), True
        if func == "pow":
            return eval_binop("**", args[0], args[1])
        if func == "atan2":
            return math.atan2(args[0], args[1]), True
    except (ValueError, OverflowError, IndexError):
        return 0.0, False
    raise CompilationError(f"unknown external function {func!r}")


# ---------------------------------------------------------------------- #
# NumPy source snippets used by the code generator.  Each entry maps an IR
# operator to a Python/NumPy expression template over already-masked operand
# arrays; the generated kernel combines them with the validity masks.
# ---------------------------------------------------------------------- #
NUMPY_BINOPS = {
    "+": "({a} + {b})",
    "-": "({a} - {b})",
    "*": "({a} * {b})",
    "/": "_np.divide({a}, {b}, out=_np.zeros_like({a}), where=({b} != 0))",
    "%": "_np.mod({a}, _np.where({b} != 0, {b}, 1.0))",
    "**": "_np.power({a}, {b})",
    "min": "_np.minimum({a}, {b})",
    "max": "_np.maximum({a}, {b})",
    ">": "({a} > {b}).astype(_np.float64)",
    "<": "({a} < {b}).astype(_np.float64)",
    ">=": "({a} >= {b}).astype(_np.float64)",
    "<=": "({a} <= {b}).astype(_np.float64)",
    "==": "({a} == {b}).astype(_np.float64)",
    "!=": "({a} != {b}).astype(_np.float64)",
    "and": "(({a} != 0) & ({b} != 0)).astype(_np.float64)",
    "or": "(({a} != 0) | ({b} != 0)).astype(_np.float64)",
}

#: operators whose result validity needs an extra domain mask besides the
#: conjunction of operand validities (e.g. division by zero).
NUMPY_BINOP_DOMAIN = {
    "/": "({b} != 0)",
    "%": "({b} != 0)",
}

NUMPY_UNOPS = {
    "neg": "(-{a})",
    "not": "({a} == 0).astype(_np.float64)",
    "abs": "_np.abs({a})",
    "sqrt": "_np.sqrt(_np.maximum({a}, 0.0))",
    "exp": "_np.exp(_np.minimum({a}, 700.0))",
    "log": "_np.log(_np.maximum({a}, 1e-300))",
    "floor": "_np.floor({a})",
    "ceil": "_np.ceil({a})",
    "sign": "_np.sign({a})",
}

NUMPY_UNOP_DOMAIN = {
    "sqrt": "({a} >= 0)",
    "log": "({a} > 0)",
}

NUMPY_CALLS = {
    "sqrt": "_np.sqrt(_np.maximum({0}, 0.0))",
    "exp": "_np.exp(_np.minimum({0}, 700.0))",
    "log": "_np.log(_np.maximum({0}, 1e-300))",
    "abs": "_np.abs({0})",
    "floor": "_np.floor({0})",
    "ceil": "_np.ceil({0})",
    "sin": "_np.sin({0})",
    "cos": "_np.cos({0})",
    "pow": "_np.power({0}, {1})",
    "atan2": "_np.arctan2({0}, {1})",
}

NUMPY_CALL_DOMAIN = {
    "sqrt": "({0} >= 0)",
    "log": "({0} > 0)",
}
