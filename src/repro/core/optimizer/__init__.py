"""TiLT IR optimization passes (Section 5.2)."""

from .fusion import FusionResult, fuse_operators, fuse_program
from .passes import (
    PassManager,
    PassRecord,
    constant_fold_expr,
    constant_folding,
    dead_expression_elimination,
    default_pass_manager,
    optimize,
    simplify_lets,
)
from .rewrite import (
    as_element_map,
    collect_point_refs,
    is_pointwise,
    pointwise_input,
    rename_let_vars,
    shift_expr,
    substitute_tindex,
    substitute_vars,
)

__all__ = [
    "FusionResult",
    "fuse_operators",
    "fuse_program",
    "PassManager",
    "PassRecord",
    "constant_fold_expr",
    "constant_folding",
    "dead_expression_elimination",
    "default_pass_manager",
    "optimize",
    "simplify_lets",
    "as_element_map",
    "collect_point_refs",
    "is_pointwise",
    "pointwise_input",
    "rename_let_vars",
    "shift_expr",
    "substitute_tindex",
    "substitute_vars",
]
