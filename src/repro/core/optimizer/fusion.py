"""Operator fusion (Section 5.2 of the paper).

In the event-centric model, operator fusion stops at "soft pipeline
breakers" (window aggregations, joins) because the fused operator is not
expressible at the operator-graph level.  In TiLT IR the same optimization is
a *local rewrite*: a consumer's reference ``~sym[t+o]`` to a previously
defined temporal expression is replaced by ``sym``'s defining body shifted by
``o`` (bound in a Let so multiply-referenced producers are still evaluated
once).  Because this rewrite does not care whether the producer contains a
reduction, fusion proceeds straight through pipeline breakers and typically
collapses the whole query into a single temporal expression (Figure 3c).

Two kinds of references are inlined:

* **point references** ``~sym[t+o]`` — always inlinable (subject to time
  domain compatibility), even when ``sym`` contains reductions;
* **window references** ``reduce(f, ~sym[t+a : t+b])`` where ``sym`` is a
  pointwise map of a single point access — rewritten into a reduction over
  the underlying stream with ``sym``'s body as the per-snapshot element map.

References that cannot be inlined (e.g. a window over a producer that itself
aggregates, or producers with an incompatible precision) are left
materialized; the resulting program simply has more than one fused stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.analysis import referenced_streams, topological_order
from ..ir.nodes import (
    ELEM_VAR,
    Expr,
    Let,
    Reduce,
    TDom,
    TIndex,
    TWindow,
    TemporalExpr,
    TiltProgram,
    Var,
)
from ..ir.visitor import ExprTransformer
from .rewrite import (
    as_element_map,
    collect_point_refs,
    pointwise_input,
    rename_let_vars,
    shift_expr,
    substitute_tindex,
    substitute_vars,
)

__all__ = ["FusionResult", "fuse_program", "fuse_operators"]

_MAX_ITERATIONS = 64


@dataclass
class FusionResult:
    """Outcome of running fusion on a program."""

    program: TiltProgram
    inlined_point_refs: int = 0
    inlined_window_refs: int = 0
    expressions_before: int = 0
    expressions_after: int = 0

    @property
    def fully_fused(self) -> bool:
        """True when the query collapsed into a single temporal expression."""
        return self.expressions_after == 1


def _domains_compatible(producer: TDom, consumer: TDom) -> bool:
    """A producer may be inlined when its value grid is at least as fine as
    the consumer's: continuous producers (precision 0) always qualify, and so
    do producers whose precision equals the consumer's."""
    if producer.precision == 0:
        return True
    return producer.precision == consumer.precision


def _adopt_reference_precision(
    te: TemporalExpr, fused: Dict[str, TemporalExpr], inputs: set
) -> TemporalExpr:
    """Tighten a continuous expression's precision to its producers' grid.

    A continuous (precision-0) expression whose references are *all*
    previously defined expressions sharing the same precision ``p > 0`` can
    only change value on that ``p`` grid, so re-declaring it with precision
    ``p`` is semantics-preserving.  This is what lets fusion proceed through
    the Join/Where stages sitting on top of windowed aggregations (the trend
    query of Figure 3 ends up as a single expression over ``TDom(Ts, Te, 1)``).
    """
    if te.tdom.precision != 0:
        return te
    refs = referenced_streams(te.expr)
    if not refs:
        return te
    precisions = set()
    for ref in refs:
        if ref in inputs:
            return te
        producer = fused.get(ref)
        if producer is None:
            return te
        precisions.add(producer.tdom.precision)
    if len(precisions) == 1:
        precision = precisions.pop()
        if precision > 0:
            return TemporalExpr(te.name, TDom(te.tdom.start, te.tdom.end, precision), te.expr)
    return te


class _WindowRefInliner(ExprTransformer):
    """Rewrite ``reduce(f, ~sym[a:b])`` into a reduce over sym's input with an
    element map, for pointwise single-input producers."""

    def __init__(self, defs: Dict[str, TemporalExpr], consumer_dom: TDom):
        self.defs = defs
        self.consumer_dom = consumer_dom
        self.inlined = 0

    def visit_reduce(self, node: Reduce) -> Expr:
        element = self.visit(node.element) if node.element is not None else None
        window = node.window
        producer = self.defs.get(window.ref)
        if producer is not None and _domains_compatible(producer.tdom, self.consumer_dom):
            pw = pointwise_input(producer.expr)
            if pw is not None:
                ref, offset = pw
                mapped = as_element_map(producer.expr, ref, offset)
                if element is not None:
                    # compose: the existing element map runs on the producer's output
                    mapped = substitute_vars(element, {ELEM_VAR: mapped})
                else:
                    mapped = mapped
                new_window = TWindow(
                    ref, window.start_offset + offset, window.end_offset + offset
                )
                self.inlined += 1
                return Reduce(node.agg, new_window, mapped)
        return Reduce(node.agg, window, element)


def _inline_point_refs(
    expr: Expr,
    defs: Dict[str, TemporalExpr],
    consumer_dom: TDom,
    counter: List[int],
) -> Tuple[Expr, bool]:
    """Replace point references to defined expressions with Let bindings."""
    refs = collect_point_refs(expr)
    targets = [
        (ref, offset)
        for (ref, offset) in refs
        if ref in defs and _domains_compatible(defs[ref].tdom, consumer_dom)
    ]
    if not targets:
        return expr, False
    bindings = []
    mapping: Dict[Tuple[str, float], Expr] = {}
    for idx, (ref, offset) in enumerate(sorted(targets)):
        var_name = f"{ref}_at_{_offset_tag(offset)}"
        body = defs[ref].expr
        body = rename_let_vars(body, f"__{counter[0]}")
        counter[0] += 1
        body = shift_expr(body, offset)
        bindings.append((var_name, body))
        mapping[(ref, offset)] = Var(var_name)
    new_expr = substitute_tindex(expr, mapping)
    counter[1] += len(targets)
    return Let(tuple(bindings), new_expr), True


def _offset_tag(offset: float) -> str:
    text = f"{offset:g}".replace("-", "m").replace(".", "p")
    return text if text else "0"


def fuse_program(program: TiltProgram) -> FusionResult:
    """Apply operator fusion to ``program`` and return the fused program.

    The pass walks the expressions in topological order and repeatedly
    inlines references until a fixpoint, then drops definitions that are no
    longer referenced (they were fully absorbed by their consumers).
    """
    defs: Dict[str, TemporalExpr] = {te.name: te for te in program.exprs}
    order = topological_order(program)
    result = FusionResult(program=program, expressions_before=len(program.exprs))
    counter = [0, 0]  # [alpha-rename counter, inlined point refs]

    fused: Dict[str, TemporalExpr] = {}
    for name in order:
        te = defs[name]
        te = _adopt_reference_precision(te, fused, set(program.inputs))
        expr = te.expr
        for _ in range(_MAX_ITERATIONS):
            changed = False
            window_inliner = _WindowRefInliner(fused, te.tdom)
            new_expr = window_inliner.visit(expr)
            if window_inliner.inlined:
                result.inlined_window_refs += window_inliner.inlined
                changed = True
            new_expr, point_changed = _inline_point_refs(new_expr, fused, te.tdom, counter)
            changed = changed or point_changed
            expr = new_expr
            if not changed:
                break
        fused[name] = TemporalExpr(te.name, te.tdom, expr)

    result.inlined_point_refs = counter[1]

    # dead-expression elimination: keep only expressions reachable from the output
    keep = _reachable(fused, program.output)
    new_exprs = [fused[te.name] for te in program.exprs if te.name in keep]
    result.program = program.with_exprs(new_exprs)
    result.expressions_after = len(new_exprs)
    return result


def _reachable(defs: Dict[str, TemporalExpr], output: str) -> set:
    seen = set()
    stack = [output]
    while stack:
        name = stack.pop()
        if name in seen or name not in defs:
            continue
        seen.add(name)
        for ref in referenced_streams(defs[name].expr):
            stack.append(ref)
    return seen


def fuse_operators(program: TiltProgram) -> TiltProgram:
    """Pass-manager entry point: run fusion and return the fused program."""
    return fuse_program(program).program
