"""Generic optimization passes and the pass manager.

Besides operator fusion (which lives in :mod:`repro.core.optimizer.fusion`),
the optimizer runs a handful of classic, semantics-preserving cleanups:

* **constant folding** — evaluates operators over constants, propagates φ
  literals, and applies the safe algebraic identities (``x+0``, ``x*1``, ...);
* **dead expression elimination** — drops temporal expressions no longer
  reachable from the program output (typically producers fully absorbed by
  fusion);
* **let simplification** — inlines Let bindings that are constants or that
  are referenced at most once, flattening the nested Lets fusion creates.

:class:`PassManager` composes the passes, records per-pass statistics and
exposes the default pipeline used by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.analysis import count_nodes, referenced_streams
from ..ir.nodes import (
    BinOp,
    Call,
    Coalesce,
    Const,
    Expr,
    IfThenElse,
    IsValid,
    Let,
    Phi,
    Reduce,
    TemporalExpr,
    TiltProgram,
    UnaryOp,
    Var,
)
from ..ir.visitor import ExprTransformer
from ..ops import eval_binop, eval_call, eval_unop
from .fusion import fuse_operators
from .rewrite import substitute_vars

__all__ = [
    "constant_fold_expr",
    "constant_folding",
    "dead_expression_elimination",
    "simplify_lets",
    "PassManager",
    "default_pass_manager",
    "optimize",
]

ProgramPass = Callable[[TiltProgram], TiltProgram]

_PHI_STRICT_BINOPS = set("+ - * / % **".split()) | {"min", "max", ">", "<", ">=", "<=", "==", "!=", "and", "or"}


class _ConstantFolder(ExprTransformer):
    def visit_binop(self, node: BinOp) -> Expr:
        lhs = self.visit(node.lhs)
        rhs = self.visit(node.rhs)
        if isinstance(lhs, Phi) or isinstance(rhs, Phi):
            return Phi()
        if isinstance(lhs, Const) and isinstance(rhs, Const):
            value, ok = eval_binop(node.op, lhs.value, rhs.value)
            return Const(value) if ok else Phi()
        # safe algebraic identities (hold for φ operands as well)
        if isinstance(rhs, Const):
            if node.op in ("+", "-") and rhs.value == 0:
                return lhs
            if node.op in ("*", "/") and rhs.value == 1:
                return lhs
        if isinstance(lhs, Const):
            if node.op == "+" and lhs.value == 0:
                return rhs
            if node.op == "*" and lhs.value == 1:
                return rhs
        return BinOp(node.op, lhs, rhs)

    def visit_unaryop(self, node: UnaryOp) -> Expr:
        operand = self.visit(node.operand)
        if isinstance(operand, Phi):
            return Phi()
        if isinstance(operand, Const):
            value, ok = eval_unop(node.op, operand.value)
            return Const(value) if ok else Phi()
        return UnaryOp(node.op, operand)

    def visit_call(self, node: Call) -> Expr:
        args = tuple(self.visit(a) for a in node.args)
        if any(isinstance(a, Phi) for a in args):
            return Phi()
        if all(isinstance(a, Const) for a in args):
            value, ok = eval_call(node.func, [a.value for a in args])
            return Const(value) if ok else Phi()
        return Call(node.func, args)

    def visit_ifthenelse(self, node: IfThenElse) -> Expr:
        cond = self.visit(node.cond)
        then = self.visit(node.then)
        orelse = self.visit(node.orelse)
        if isinstance(cond, Phi):
            return Phi()
        if isinstance(cond, Const):
            return then if cond.value != 0 else orelse
        return IfThenElse(cond, then, orelse)

    def visit_isvalid(self, node: IsValid) -> Expr:
        operand = self.visit(node.operand)
        if isinstance(operand, Phi):
            return Const(0.0)
        if isinstance(operand, Const):
            return Const(1.0)
        return IsValid(operand)

    def visit_coalesce(self, node: Coalesce) -> Expr:
        operand = self.visit(node.operand)
        default = self.visit(node.default)
        if isinstance(operand, Phi):
            return default
        if isinstance(operand, Const):
            return operand
        return Coalesce(operand, default)


def constant_fold_expr(expr: Expr) -> Expr:
    """Fold constants and φ literals in a single expression."""
    return _ConstantFolder().visit(expr)


def constant_folding(program: TiltProgram) -> TiltProgram:
    """Constant folding over every temporal expression of a program."""
    exprs = [TemporalExpr(te.name, te.tdom, constant_fold_expr(te.expr)) for te in program.exprs]
    return program.with_exprs(exprs)


def dead_expression_elimination(program: TiltProgram) -> TiltProgram:
    """Remove temporal expressions not reachable from the program output."""
    defs = {te.name: te for te in program.exprs}
    reachable = set()
    stack = [program.output]
    while stack:
        name = stack.pop()
        if name in reachable or name not in defs:
            continue
        reachable.add(name)
        stack.extend(referenced_streams(defs[name].expr))
    exprs = [te for te in program.exprs if te.name in reachable]
    return program.with_exprs(exprs)


class _VarUseCounter:
    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def count(self, expr: Expr) -> None:
        if isinstance(expr, Var):
            self.counts[expr.name] = self.counts.get(expr.name, 0) + 1
        for child in expr.children():
            self.count(child)


class _LetSimplifier(ExprTransformer):
    def visit_let(self, node: Let) -> Expr:
        bindings = [(name, self.visit(value)) for name, value in node.bindings]
        body = self.visit(node.body)
        counter = _VarUseCounter()
        counter.count(body)
        for _, value in bindings:
            counter.count(value)
        kept: List[Tuple[str, Expr]] = []
        substitution: Dict[str, Expr] = {}
        for name, value in bindings:
            value = substitute_vars(value, substitution)
            uses = counter.counts.get(name, 0)
            trivial = isinstance(value, (Const, Phi, Var))
            if uses == 0:
                continue
            if trivial or uses == 1:
                substitution[name] = value
            else:
                kept.append((name, value))
        body = substitute_vars(body, substitution)
        if not kept:
            return body
        if isinstance(body, Let):
            return Let(tuple(kept) + body.bindings, body.body)
        return Let(tuple(kept), body)


def simplify_lets(program: TiltProgram) -> TiltProgram:
    """Inline trivial / singly-used Let bindings and flatten nested Lets."""
    simplifier = _LetSimplifier()
    exprs = [TemporalExpr(te.name, te.tdom, simplifier.visit(te.expr)) for te in program.exprs]
    return program.with_exprs(exprs)


@dataclass
class PassRecord:
    """Statistics recorded for one pass application."""

    name: str
    expressions_before: int
    expressions_after: int
    nodes_before: int
    nodes_after: int


@dataclass
class PassManager:
    """Ordered collection of program passes with bookkeeping.

    The default pipeline is ``constant folding → fusion → let simplification
    → constant folding → dead expression elimination``, mirroring the
    compilation pipeline in Figure 3 (translation → boundary resolution →
    optimization → code generation); boundary resolution is not a program
    transformation and runs separately in the engine.
    """

    passes: List[Tuple[str, ProgramPass]] = field(default_factory=list)
    history: List[PassRecord] = field(default_factory=list)

    def add(self, name: str, program_pass: ProgramPass) -> "PassManager":
        """Append a pass to the pipeline (returns self for chaining)."""
        self.passes.append((name, program_pass))
        return self

    def run(self, program: TiltProgram) -> TiltProgram:
        """Run every pass in order, recording statistics."""
        self.history.clear()
        for name, program_pass in self.passes:
            before_exprs = len(program.exprs)
            before_nodes = sum(count_nodes(te.expr) for te in program.exprs)
            program = program_pass(program)
            after_nodes = sum(count_nodes(te.expr) for te in program.exprs)
            self.history.append(
                PassRecord(name, before_exprs, len(program.exprs), before_nodes, after_nodes)
            )
        return program

    def summary(self) -> str:
        """One line per executed pass, for logs and debugging."""
        lines = []
        for rec in self.history:
            lines.append(
                f"{rec.name}: exprs {rec.expressions_before}->{rec.expressions_after}, "
                f"nodes {rec.nodes_before}->{rec.nodes_after}"
            )
        return "\n".join(lines)


def default_pass_manager(enable_fusion: bool = True) -> PassManager:
    """The standard optimization pipeline used by the engine."""
    pm = PassManager()
    pm.add("constant-folding", constant_folding)
    if enable_fusion:
        pm.add("operator-fusion", fuse_operators)
        pm.add("let-simplification", simplify_lets)
    pm.add("constant-folding", constant_folding)
    pm.add("dead-expression-elimination", dead_expression_elimination)
    return pm


def optimize(program: TiltProgram, enable_fusion: bool = True) -> TiltProgram:
    """Convenience wrapper: run the default pipeline on ``program``."""
    return default_pass_manager(enable_fusion=enable_fusion).run(program)
