"""Expression rewriting utilities shared by the optimizer passes.

These are the small, composable IR transformations out of which operator
fusion (Section 5.2) is built:

* :func:`shift_expr` — shift every temporal access of an expression by a
  constant offset (inlining ``~sym[t+o]`` requires evaluating sym's body at
  ``t+o``).
* :func:`substitute_vars` — replace scalar variables by expressions.
* :func:`rename_let_vars` — alpha-rename Let bindings to avoid capture when
  bodies from different expressions are spliced together.
* :func:`is_pointwise` / :func:`pointwise_input` — recognise producer
  expressions that can be folded into a consumer's Reduce as an element map.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.analysis import contains_reduce, referenced_streams
from ..ir.nodes import (
    ELEM_VAR,
    Expr,
    Let,
    Reduce,
    TIndex,
    TWindow,
    Var,
)
from ..ir.visitor import ExprTransformer

__all__ = [
    "shift_expr",
    "substitute_vars",
    "substitute_tindex",
    "rename_let_vars",
    "is_pointwise",
    "pointwise_input",
    "collect_point_refs",
    "as_element_map",
]


class _Shifter(ExprTransformer):
    def __init__(self, offset: float):
        self.offset = float(offset)

    def visit_tindex(self, node: TIndex) -> TIndex:
        return TIndex(node.ref, node.offset + self.offset)

    def visit_twindow(self, node: TWindow) -> TWindow:
        return TWindow(node.ref, node.start_offset + self.offset, node.end_offset + self.offset)


def shift_expr(expr: Expr, offset: float) -> Expr:
    """Shift every temporal access in ``expr`` by ``offset`` seconds."""
    if offset == 0:
        return expr
    return _Shifter(offset).visit(expr)


class _VarSubstituter(ExprTransformer):
    def __init__(self, mapping: Dict[str, Expr]):
        self.mapping = mapping

    def visit_var(self, node: Var) -> Expr:
        return self.mapping.get(node.name, node)


def substitute_vars(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Replace scalar variables by the given expressions (no capture handling:
    callers must alpha-rename first when needed)."""
    if not mapping:
        return expr
    return _VarSubstituter(mapping).visit(expr)


class _TIndexSubstituter(ExprTransformer):
    def __init__(self, mapping: Dict[Tuple[str, float], Expr]):
        self.mapping = mapping

    def visit_tindex(self, node: TIndex) -> Expr:
        return self.mapping.get((node.ref, node.offset), node)


def substitute_tindex(expr: Expr, mapping: Dict[Tuple[str, float], Expr]) -> Expr:
    """Replace point accesses ``~ref[t+o]`` by arbitrary expressions."""
    if not mapping:
        return expr
    return _TIndexSubstituter(mapping).visit(expr)


class _LetRenamer(ExprTransformer):
    def __init__(self, suffix: str):
        self.suffix = suffix
        self._scope: Dict[str, str] = {}

    def visit_var(self, node: Var) -> Expr:
        new = self._scope.get(node.name)
        return Var(new) if new is not None else node

    def visit_let(self, node: Let) -> Expr:
        saved = dict(self._scope)
        bindings = []
        for name, value in node.bindings:
            value = self.visit(value)
            new_name = f"{name}{self.suffix}"
            self._scope[name] = new_name
            bindings.append((new_name, value))
        body = self.visit(node.body)
        self._scope = saved
        return Let(tuple(bindings), body)


def rename_let_vars(expr: Expr, suffix: str) -> Expr:
    """Alpha-rename every Let-bound variable by appending ``suffix``."""
    return _LetRenamer(suffix).visit(expr)


def is_pointwise(expr: Expr) -> bool:
    """True when ``expr`` contains no reduction (it is a per-time-point map)."""
    return not contains_reduce(expr)


def pointwise_input(expr: Expr) -> Optional[Tuple[str, float]]:
    """If ``expr`` is a pointwise function of a *single* point access
    ``~ref[t+o]``, return ``(ref, o)``; otherwise None.

    Such producers can be folded into a consumer's window reduction as an
    element-map (the snapshot-level lambda applied before aggregation).
    """
    if contains_reduce(expr):
        return None
    refs = referenced_streams(expr)
    if len(refs) != 1:
        return None
    offsets = _collect_offsets(expr, refs[0])
    if offsets is None or len(offsets) != 1:
        return None
    return refs[0], next(iter(offsets))


def _collect_offsets(expr: Expr, ref: str) -> Optional[set]:
    """Point-access offsets of ``ref`` in ``expr``; None if windows are used."""
    offsets = set()

    def walk(node: Expr) -> bool:
        if isinstance(node, TWindow):
            return False
        if isinstance(node, TIndex) and node.ref == ref:
            offsets.add(node.offset)
        return all(walk(c) for c in node.children())

    if not walk(expr):
        return None
    return offsets


def collect_point_refs(expr: Expr) -> Dict[Tuple[str, float], int]:
    """Count point accesses ``(ref, offset)`` occurring in ``expr``."""
    counts: Dict[Tuple[str, float], int] = {}

    def walk(node: Expr) -> None:
        if isinstance(node, TIndex):
            key = (node.ref, node.offset)
            counts[key] = counts.get(key, 0) + 1
        for c in node.children():
            walk(c)

    walk(expr)
    return counts


def as_element_map(expr: Expr, ref: str, offset: float) -> Expr:
    """Rewrite a pointwise producer body as an element-map expression.

    Every point access ``~ref[t+offset]`` becomes the reduce element variable
    :data:`ELEM_VAR`, so the producer can run per-snapshot inside a consumer's
    reduction.
    """
    return substitute_tindex(expr, {(ref, offset): Var(ELEM_VAR)})
