"""TiLT runtime: streams, snapshot buffers, partitioning, executors.

The engine itself lives in :mod:`repro.core.runtime.engine`; it is exported
from :mod:`repro.core` rather than from this package's namespace to keep the
low-level data structures (which the windowing and codegen layers import)
free of upward dependencies.
"""

from .executor import Executor, SerialExecutor, ThreadPoolExecutor, make_executor
from .partition import Partition, partition_inputs, plan_partitions
from .ssbuf import SSBuf, Snapshot, ssbuf_from_stream, ssbufs_from_stream
from .stream import Event, EventStream, interleave

__all__ = [
    "Event",
    "EventStream",
    "interleave",
    "SSBuf",
    "Snapshot",
    "ssbuf_from_stream",
    "ssbufs_from_stream",
    "Partition",
    "plan_partitions",
    "partition_inputs",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "make_executor",
]
