"""The TiLT engine: end-to-end compilation and parallel execution.

``TiltEngine`` ties the whole pipeline of Figure 3 together:

1. the query (a :class:`~repro.core.ir.nodes.TiltProgram`, usually produced
   by the frontend translator) is validated and optimized;
2. boundary conditions are resolved;
3. one vectorized kernel per remaining temporal expression is generated and
   compiled (or, in ``mode='interpreted'``, the reference interpreter is
   used);
4. at run time the input streams are converted to snapshot buffers,
   partitioned according to the boundary conditions, executed by a worker
   pool, and the per-partition outputs are concatenated back into a single
   snapshot buffer / event stream.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ...errors import ExecutionError, QueryBuildError
from ...obs.registry import MetricsRegistry
from ...obs.trace import make_tracer
from ..codegen import native
from ..codegen.compiled import CompiledQuery, compile_program, resolve_codegen_tier
from ..codegen.interpreter import evaluate_program
from ..ir.nodes import TiltProgram
from ..lineage.boundary import BoundarySpec, resolve_boundaries
from .executor import (  # noqa: F401 - Executor re-exported
    EXECUTOR_KINDS,
    Executor,
    PayloadMissError,
    make_executor,
    run_compiled_partition,
)
from .partition import Partition, partition_inputs
from .ssbuf import SSBuf, ssbufs_from_stream
from .stream import EventStream

__all__ = ["QueryResult", "TiltEngine"]

StreamLike = Union[EventStream, SSBuf]


@dataclass
class QueryResult:
    """Output of a query run plus execution statistics."""

    output: SSBuf
    elapsed_seconds: float
    num_partitions: int
    workers: int
    input_events: int
    boundary: Optional[BoundarySpec] = None

    @property
    def throughput(self) -> float:
        """Input events processed per second."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.input_events / self.elapsed_seconds

    def to_stream(self, name: str = "output") -> EventStream:
        """Output as an event stream (φ intervals dropped, adjacent equal
        snapshots merged)."""
        return self.output.to_stream(name)


class TiltEngine:
    """Compile and execute TiLT queries.

    Parameters
    ----------
    workers:
        Number of parallel worker threads (1 = serial execution).
    partition_interval:
        Fixed output-interval size per partition.  When omitted, the output
        range is split into ``partitions_per_worker * workers`` equal
        partitions.
    partitions_per_worker:
        Partitions created per worker when ``partition_interval`` is not set.
    mode:
        ``'compiled'`` (default) uses the code-generating backend;
        ``'interpreted'`` runs the reference interpreter (the "UnOpt"
        execution model).
    executor_kind:
        Worker-pool backend: ``'serial'``, ``'thread'`` or ``'process'``.
        ``None`` (default) keeps the historical behavior — serial for one
        worker, a thread pool otherwise — unless the ``REPRO_EXECUTOR``
        environment variable names a kind (how the CI matrix runs the whole
        suite on the process backend).  ``'process'`` executes partitions in
        a pool of worker processes, sidestepping the GIL entirely; queries
        whose artifacts cannot be pickled (lambda-based custom aggregates)
        and interpreted-mode runs fall back to an in-process thread pool
        automatically.
    optimize / enable_fusion:
        Control the optimizer pipeline (see
        :func:`repro.core.codegen.compile_program`).
    codegen_tier:
        Kernel lowering tier: ``"numpy"`` (the reference vectorized tier),
        ``"native"`` (single-pass compiled-C kernels via
        :mod:`repro.core.codegen.native`, falling back per kernel when a
        construct is not lowerable or the optional cffi/C-compiler
        dependency is missing) or ``"auto"`` (native exactly when the
        toolchain is present).  ``None`` (default) resolves to the
        ``REPRO_CODEGEN`` environment variable, else ``"numpy"``.
        Interpreted mode ignores the tier — it never generates kernels.
    incremental:
        Default for sessions opened on this engine: persist per-kernel
        window state across ticks so tick cost is O(new events) instead of
        O(lookback + new events) (see
        :mod:`repro.core.codegen.incremental`).  ``None`` (default) resolves
        to the ``REPRO_INCREMENTAL`` environment variable (truthy values:
        ``1/true/yes/on`` — how the CI matrix runs the whole suite
        incrementally), else ``False``, preserving the full-recompute path
        as the reference implementation.  Sessions can override per-session
        via ``open_session(..., incremental=...)``; one-shot ``run`` calls
        are unaffected.
    compile_cache_size:
        Bound on the per-engine compile cache (LRU eviction).  A long-lived
        engine serving many distinct programs — the multi-tenant service —
        releases old compilations instead of holding every program ever
        compiled forever.
    trace:
        Span tracing for every execution layer of this engine (see
        :mod:`repro.obs.trace`).  ``None`` (default) resolves to the
        ``REPRO_TRACE`` environment variable; ``True`` creates a fresh
        :class:`~repro.obs.trace.Tracer`; an existing tracer instance is
        shared (how a service traces several engines into one buffer).
        Disabled tracing is a strict no-op — instrumentation points call
        into the shared null tracer, which allocates and records nothing —
        and enabled tracing never changes query output (pinned by the
        ``REPRO_TRACE=1`` CI matrix entry).
    registry:
        The :class:`~repro.obs.registry.MetricsRegistry` this engine (and
        its sessions) publish into.  ``None`` creates a private one;
        pass a shared registry to aggregate several engines into one
        exporter endpoint.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        partition_interval: Optional[float] = None,
        partitions_per_worker: int = 4,
        mode: str = "compiled",
        executor_kind: Optional[str] = None,
        optimize: bool = True,
        enable_fusion: bool = True,
        codegen_tier: Optional[str] = None,
        incremental: Optional[bool] = None,
        compile_cache_size: int = 32,
        trace=None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if mode not in ("compiled", "interpreted"):
            raise QueryBuildError(f"unknown execution mode {mode!r}")
        if workers < 1:
            raise QueryBuildError("workers must be >= 1")
        if executor_kind is None:
            executor_kind = os.environ.get("REPRO_EXECUTOR") or None
        if executor_kind is not None and executor_kind not in EXECUTOR_KINDS:
            raise QueryBuildError(
                f"unknown executor kind {executor_kind!r} (expected one of {EXECUTOR_KINDS})"
            )
        if codegen_tier is None:
            codegen_tier = os.environ.get("REPRO_CODEGEN", "").strip() or native.NUMPY_TIER
        if codegen_tier not in native.CODEGEN_TIERS:
            raise QueryBuildError(
                f"unknown codegen tier {codegen_tier!r} "
                f"(expected one of {native.CODEGEN_TIERS})"
            )
        if incremental is None:
            incremental = os.environ.get("REPRO_INCREMENTAL", "").strip().lower() in (
                "1",
                "true",
                "yes",
                "on",
            )
        if compile_cache_size < 1:
            raise QueryBuildError("compile_cache_size must be >= 1")
        self.workers = int(workers)
        self.partition_interval = partition_interval
        self.partitions_per_worker = int(partitions_per_worker)
        self.mode = mode
        self.executor_kind = executor_kind
        self.optimize = optimize
        self.enable_fusion = enable_fusion
        # "auto" resolves once, at engine construction: every compile this
        # engine performs uses one concrete tier, and the compile-cache key
        # stays stable for the engine's lifetime
        self.codegen_tier = resolve_codegen_tier(codegen_tier)
        self.incremental = bool(incremental)
        self.compile_cache_size = int(compile_cache_size)
        self.tracer = make_tracer(trace)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_compile_hits = self.registry.counter(
            "repro_compile_cache_hits_total", "Engine compile-cache hits"
        )
        self._m_compile_misses = self.registry.counter(
            "repro_compile_cache_misses_total", "Engine compile-cache misses"
        )
        self._m_native_compile_seconds = self.registry.counter(
            "repro_native_compile_seconds_total",
            "Wall-clock seconds spent building native-tier kernels",
        )
        self._m_native_fallbacks = self.registry.counter(
            "repro_native_fallbacks_total",
            "Kernels that requested the native tier but fell back to NumPy",
        )
        self._m_backend: Dict[str, tuple] = {}
        # shared across run() calls and all sessions of this engine: one
        # worker pool and one CompiledQuery per program (see open_session).
        # Both are created/looked up under the lock — many sessions open
        # concurrently from different threads (the multi-tenant service
        # does exactly that) and must not race pool creation or compile
        # the same program twice.
        self._lock = threading.RLock()
        self._executor: Optional[Executor] = None
        self._fallback_executor: Optional[Executor] = None
        self._compile_cache: "OrderedDict[tuple, Tuple[TiltProgram, CompiledQuery]]" = (
            OrderedDict()
        )
        self._sessions: List["weakref.ref"] = []
        if self.executor_kind == "process":
            # fork the worker processes now, while the constructing thread
            # is (typically) the only one alive — a lazily created pool
            # would first fork from whatever threaded context issues the
            # first run/tick (the multi-tenant service's scheduler thread,
            # a session worker, ...), inheriting mid-held locks.
            self.shared_executor()

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def compile(self, program: TiltProgram) -> CompiledQuery:
        """Compile a program (always uses the code-generating backend)."""
        compiled = compile_program(
            program,
            optimize=self.optimize,
            enable_fusion=self.enable_fusion,
            codegen_tier=self.codegen_tier,
        )
        for kernel in compiled.kernels:
            if kernel.tier == native.NATIVE_TIER:
                self._m_native_compile_seconds.inc(kernel.native_build_seconds)
                if kernel.active_tier != native.NATIVE_TIER:
                    self._m_native_fallbacks.inc()
        return compiled

    def analyze(self, program: TiltProgram):
        """Run the static analyzer over ``program`` without compiling it.

        Returns the full :class:`~repro.analysis.findings.ProgramReport` —
        including error-severity findings that :meth:`compile` would turn
        into an :class:`~repro.errors.AnalysisError` — so callers can
        inspect a query's bounds proof, dead code, domain hazards and cost
        estimates up front.  Reports are cached by program digest, so this
        shares work with the compile-time gate.
        """
        from ...analysis import analyze_program
        from ..ir.validation import validate_program

        validate_program(program)
        return analyze_program(program)

    def compile_cached(self, program: TiltProgram) -> CompiledQuery:
        """Compile ``program``, reusing a previous compilation of the same
        program object.

        Compilation is a one-time cost for a long-running streaming query;
        caching lets multiple concurrent sessions over the same program
        share one set of generated kernels.  The key includes the engine's
        compilation settings, so flipping ``optimize``/``enable_fusion``
        between sessions recompiles instead of returning stale kernels.
        (Entries hold a strong reference to the program, so the ``id``-based
        key stays valid; ``close()`` empties the cache.)  Thread-safe: the
        whole check-compile-insert is one critical section, so concurrent
        sessions over the same program get the same ``CompiledQuery`` and
        the program is compiled exactly once.

        The cache is LRU-bounded at ``compile_cache_size`` entries: the
        least recently used compilation (and its strong reference to the
        program) is dropped when a new program would exceed the bound, so a
        long-lived engine compiling an unbounded stream of distinct
        programs does not leak them.  Sessions keep their own reference to
        the :class:`CompiledQuery` they were opened with, so eviction never
        invalidates running work — at worst a later ``open_session`` over an
        evicted program recompiles.
        """
        key = (id(program), self.optimize, self.enable_fusion, self.codegen_tier)
        with self._lock:
            entry = self._compile_cache.get(key)
            if entry is not None and entry[0] is program:
                self._compile_cache.move_to_end(key)
                self._m_compile_hits.inc()
            else:
                self._m_compile_misses.inc()
                with self.tracer.span(
                    "engine.compile", output=program.output, tier=self.codegen_tier
                ):
                    entry = (program, self.compile(program))
                self._compile_cache[key] = entry
                while len(self._compile_cache) > self.compile_cache_size:
                    self._compile_cache.popitem(last=False)
            return entry[1]

    # ------------------------------------------------------------------ #
    # shared resources
    # ------------------------------------------------------------------ #
    def shared_executor(self) -> Executor:
        """The engine's long-lived worker pool.

        Created lazily and reused by every ``run`` call and every streaming
        session, so concurrent queries share one set of worker threads
        instead of spawning a pool per query.  ``close`` releases it.
        Thread-safe: concurrent first calls create exactly one pool.
        """
        with self._lock:
            if self._executor is None:
                self._executor = make_executor(self.workers, self.executor_kind)
            return self._executor

    def _thread_fallback(self) -> Executor:
        """In-process executor used when the process backend cannot take a
        query (unpicklable artifacts, or interpreted mode).

        Created lazily alongside — not instead of — the process pool, so a
        mixed workload degrades only the queries that cannot cross the
        process boundary.  Thread-safe, released by ``close``.
        """
        with self._lock:
            if self._fallback_executor is None:
                self._fallback_executor = make_executor(
                    self.workers, "thread" if self.workers > 1 else "serial"
                )
            return self._fallback_executor

    def _register_session(self, session) -> None:
        """Track a session opened on this engine (weakly, so an abandoned
        session can still be garbage collected)."""
        with self._lock:
            self._sessions = [ref for ref in self._sessions if ref() is not None]
            self._sessions.append(weakref.ref(session))

    def open_sessions(self) -> List[object]:
        """Sessions opened on this engine that have not been closed yet."""
        with self._lock:
            return [
                s for s in (ref() for ref in self._sessions)
                if s is not None and not s.closed
            ]

    def close(self) -> None:
        """Shut down the shared worker pool and drop cached compilations.

        Any session still open on the engine is **aborted** first (marked
        closed with no final output flush — a flush would run arbitrary
        query work inside a teardown path, on a pool that is about to be
        shut down).  Callers who want the tail output must ``close()`` their
        sessions before closing the engine.  Subsequent ``tick``/``close``
        calls on an aborted session raise :class:`ExecutionError`.
        """
        for session in self.open_sessions():
            session.abort()
        with self._lock:
            self._sessions.clear()
            if self._executor is not None:
                self._executor.shutdown()
                self._executor = None
            if self._fallback_executor is not None:
                self._fallback_executor.shutdown()
                self._fallback_executor = None
            self._compile_cache.clear()

    def __enter__(self) -> "TiltEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # streaming sessions
    # ------------------------------------------------------------------ #
    def open_session(
        self,
        query: Union[TiltProgram, CompiledQuery],
        sources,
        **kwargs,
    ):
        """Open a continuous :class:`~repro.core.runtime.session.StreamingSession`.

        ``query`` is compiled once (and cached, so several sessions over the
        same program share kernels); ``sources`` must cover every program
        input (see :mod:`repro.datagen.sources`).  Keyword arguments are
        forwarded to :class:`StreamingSession`.
        """
        # imported here: session.py imports this module at load time
        from .session import StreamingSession

        if isinstance(query, TiltProgram) and self.mode == "compiled":
            query = self.compile_cached(query)
        return StreamingSession(self, query, sources, **kwargs)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        query: Union[TiltProgram, CompiledQuery],
        streams: Mapping[str, StreamLike],
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
    ) -> QueryResult:
        """Execute ``query`` over the given input streams.

        ``streams`` maps input names to event streams or snapshot buffers;
        structured event streams are expanded into one buffer per field
        (named ``"<stream>.<field>"``).  The output time range defaults to
        the union of the input time ranges.
        """
        with self.tracer.span("engine.run") as run_span:
            program, compiled = self._prepare(query)
            run_span.set(output=program.output)
            with self.tracer.span("run.ingest"):
                inputs, input_events = self._ingest(program, streams)
            t_start, t_end = self._time_range(inputs, t_start, t_end)

            boundary = compiled.boundary if compiled is not None else resolve_boundaries(program)
            # partition boundaries must not fall inside a precision interval of
            # any temporal expression, otherwise workers would evaluate the query
            # at off-grid times (see plan_partitions).
            alignment = max((te.tdom.precision for te in program.exprs), default=0.0)
            with self.tracer.span("run.plan"):
                partitions = self._partition(inputs, boundary, t_start, t_end, alignment)

            start = time.perf_counter()
            pieces = self._map_partitions(compiled, program, boundary, partitions)
            output = SSBuf.concat(pieces).compact() if pieces else SSBuf.empty(t_start)
            elapsed = time.perf_counter() - start
            run_span.set(input_events=input_events, partitions=len(partitions))
        return QueryResult(
            output=output,
            elapsed_seconds=elapsed,
            num_partitions=len(partitions),
            workers=self.workers,
            input_events=input_events,
            boundary=boundary,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _map_partitions(
        self,
        compiled: Optional[CompiledQuery],
        program: TiltProgram,
        boundary: BoundarySpec,
        partitions: List[Partition],
    ) -> List[SSBuf]:
        """Execute the partitions on the engine's worker pool.

        The single dispatch point shared by one-shot ``run`` calls and
        streaming-session ticks.  On the process backend a compiled query is
        shipped as its cached pickle payload (serialized once, rebuilt once
        per worker process); queries that cannot cross the process boundary
        — unpicklable custom aggregates, or interpreted-mode execution,
        whose closures cannot be pickled at all — degrade gracefully to the
        engine's in-process thread fallback instead of failing.

        Every dispatch is wrapped in an ``executor.dispatch`` span and
        charged to the per-backend ``repro_kernel_seconds_total`` counter.
        With tracing enabled, each partition also gets a ``kernel.partition``
        span — recorded in the worker thread's own buffer, or (process
        backend) timed worker-side and shipped back with the result, then
        adopted under the dispatch span.
        """
        executor = self.shared_executor()
        tracer = self.tracer
        if executor.kind == "process":
            payload = compiled.pickle_payload() if compiled is not None else None
            if payload is not None:
                trace_workers = tracer.enabled
                with tracer.span(
                    "executor.dispatch",
                    backend="process",
                    partitions=len(partitions),
                    kernel_digest=payload[0][:12],
                ):
                    started = time.perf_counter()
                    digest, blob = payload
                    # ship the payload only until the pool has run it once;
                    # after that a long-lived session sends digest-only tasks
                    # per tick, and a worker that evicted (or never saw) the
                    # query raises PayloadMissError for one re-seeding retry.
                    pieces = None
                    if digest in executor.seeded_digests:
                        try:
                            pieces = executor.map(
                                run_compiled_partition,
                                [(digest, None, p, trace_workers) for p in partitions],
                            )
                        except PayloadMissError:
                            pieces = None
                    if pieces is None:
                        pieces = executor.map(
                            run_compiled_partition,
                            [(digest, blob, p, trace_workers) for p in partitions],
                        )
                        if partitions:
                            # an empty map never delivered the payload to
                            # anyone — only a completed non-empty map counts
                            # as seeding
                            executor.seeded_digests.add(digest)
                    if trace_workers:
                        # traced tasks return (buffer, worker span records);
                        # re-parent the shipped records under this dispatch
                        outputs = []
                        shipped = []
                        for buf, records in pieces:
                            outputs.append(buf)
                            shipped.extend(records)
                        tracer.adopt(shipped)
                        pieces = outputs
                    self._charge_backend("process", time.perf_counter() - started, len(partitions))
                return pieces
            executor = self._thread_fallback()
        backend = executor.kind
        with tracer.span(
            "executor.dispatch", backend=backend, partitions=len(partitions)
        ):
            started = time.perf_counter()
            if compiled is not None:
                run_partition = lambda p: compiled.run(p.inputs, p.t_start, p.t_end)  # noqa: E731
            else:
                run_partition = lambda p: evaluate_program(  # noqa: E731
                    program, p.inputs, p.t_start, p.t_end, boundary=boundary
                )[program.output]
            if tracer.enabled:
                # worker threads have empty span stacks, so the partition
                # spans name the dispatch span as parent explicitly
                parent = tracer.current_span_id()
                digest12 = ""
                if compiled is not None:
                    payload = compiled.pickle_payload()  # memoized
                    if payload is not None:
                        digest12 = payload[0][:12]
                inner = run_partition

                def run_partition(p):
                    with tracer.span(
                        "kernel.partition", parent=parent, index=p.index,
                        t_start=p.t_start, t_end=p.t_end, kernel_digest=digest12,
                    ):
                        return inner(p)

            pieces = executor.map(run_partition, partitions)
            self._charge_backend(backend, time.perf_counter() - started, len(partitions))
        return pieces

    def _charge_backend(self, kind: str, seconds: float, partitions: int) -> None:
        """Accumulate dispatch time/partitions into the per-backend counters."""
        counters = self._m_backend.get(kind)
        if counters is None:
            counters = self._m_backend[kind] = (
                self.registry.counter(
                    "repro_kernel_seconds_total",
                    "Partition-map execution seconds by backend",
                    backend=kind,
                ),
                self.registry.counter(
                    "repro_partitions_total",
                    "Partitions executed by backend",
                    backend=kind,
                ),
            )
        counters[0].inc(seconds)
        if partitions:
            counters[1].inc(partitions)

    def _prepare(
        self, query: Union[TiltProgram, CompiledQuery]
    ) -> Tuple[TiltProgram, Optional[CompiledQuery]]:
        if isinstance(query, CompiledQuery):
            return query.program, query
        if not isinstance(query, TiltProgram):
            raise QueryBuildError(f"cannot execute object of type {type(query).__name__}")
        if self.mode == "compiled":
            compiled = self.compile(query)
            return compiled.program, compiled
        return query, None

    @staticmethod
    def _ingest(
        program: TiltProgram, streams: Mapping[str, StreamLike]
    ) -> Tuple[Dict[str, SSBuf], int]:
        inputs: Dict[str, SSBuf] = {}
        input_events = 0
        for name, stream in streams.items():
            if isinstance(stream, SSBuf):
                inputs[name] = stream
                input_events += stream.num_valid()
            elif isinstance(stream, EventStream):
                bufs = ssbufs_from_stream(stream)
                if not stream.is_structured:
                    # scalar stream: honour the caller-provided input name
                    inputs[name] = next(iter(bufs.values()))
                else:
                    for col_name, buf in bufs.items():
                        field = col_name.split(".", 1)[1]
                        inputs[f"{name}.{field}"] = buf
                input_events += len(stream)
            else:
                raise QueryBuildError(
                    f"input {name!r} must be an EventStream or SSBuf, got {type(stream).__name__}"
                )
        missing = [n for n in program.inputs if n not in inputs]
        if missing:
            raise ExecutionError(f"missing input streams: {missing}")
        return inputs, input_events

    @staticmethod
    def _time_range(
        inputs: Mapping[str, SSBuf], t_start: Optional[float], t_end: Optional[float]
    ) -> Tuple[float, float]:
        if t_start is None:
            starts = [buf.start_time for buf in inputs.values() if len(buf)]
            t_start = min(starts) if starts else 0.0
        if t_end is None:
            ends = [buf.end_time for buf in inputs.values() if len(buf)]
            t_end = max(ends) if ends else t_start
        if t_end < t_start:
            raise QueryBuildError("t_end must not precede t_start")
        return float(t_start), float(t_end)

    def _partition(
        self,
        inputs: Mapping[str, SSBuf],
        boundary: BoundarySpec,
        t_start: float,
        t_end: float,
        alignment: float = 0.0,
    ) -> List[Partition]:
        if self.partition_interval is not None:
            return partition_inputs(
                inputs,
                boundary,
                t_start,
                t_end,
                interval=self.partition_interval,
                align=alignment,
            )
        count = max(1, self.workers * self.partitions_per_worker)
        if self.workers == 1:
            count = 1
        return partition_inputs(
            inputs, boundary, t_start, t_end, num_partitions=count, align=alignment
        )
