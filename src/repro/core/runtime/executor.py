"""Worker-pool executors for partition-parallel query execution.

The compiled kernels are pure functions of their partition, so parallel
execution needs no locks, no shared aggregation state and no cross-worker
communication — the property the paper credits for TiLT's scalability
advantage over Grizzly's atomic shared state and LightSaber's aggregation
trees.  Two executors are provided:

* :class:`SerialExecutor` — runs partitions in the calling thread (the
  single-worker configuration, and the deterministic mode used by tests);
* :class:`ThreadPoolExecutor` — a pool of worker threads; the NumPy kernels
  release the GIL for their array work, so this gives real (if sub-linear)
  multi-core scaling on CPython.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, List, Sequence, TypeVar

__all__ = ["Executor", "SerialExecutor", "ThreadPoolExecutor", "make_executor"]

T = TypeVar("T")
R = TypeVar("R")


class Executor:
    """Minimal executor interface: order-preserving map over work items."""

    #: number of workers this executor uses (1 for serial)
    workers: int = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release pool resources (no-op for serial execution)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class SerialExecutor(Executor):
    """Run every item in the calling thread, in order."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadPoolExecutor(Executor):
    """Thread-pool executor with an order-preserving map."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=self.workers)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(workers: int) -> Executor:
    """Serial executor for one worker, a thread pool otherwise."""
    if workers <= 1:
        return SerialExecutor()
    return ThreadPoolExecutor(workers)
