"""Worker-pool executors for partition-parallel query execution.

The compiled kernels are pure functions of their partition, so parallel
execution needs no locks, no shared aggregation state and no cross-worker
communication — the property the paper credits for TiLT's scalability
advantage over Grizzly's atomic shared state and LightSaber's aggregation
trees.  Three executors are provided:

* :class:`SerialExecutor` — runs partitions in the calling thread (the
  single-worker configuration, and the deterministic mode used by tests);
* :class:`ThreadPoolExecutor` — a pool of worker threads; the NumPy kernels
  release the GIL for their array work, so this gives real (if sub-linear)
  multi-core scaling on CPython;
* :class:`ProcessPoolExecutor` — a pool of worker processes; partitions and
  compiled-query payloads are pickled across the boundary, so scaling is not
  bounded by the GIL at all.  Each worker process rebuilds the kernels from
  the generated source once per query (content-digest cache) and then runs
  partitions exactly as an in-process worker would.

Process dispatch cannot ship closures, so the engine submits the
module-level :func:`run_compiled_partition` task with a ``(digest, payload,
partition)`` tuple; queries whose artifacts cannot be pickled (e.g.
lambda-based custom aggregates) never reach this path — the engine falls
back to its thread executor (see :meth:`TiltEngine._map_partitions`).
"""

from __future__ import annotations

import concurrent.futures
import itertools
import math
import multiprocessing
import os
import threading
from collections import OrderedDict
from typing import Callable, List, Optional, Sequence, Set, Tuple, TypeVar

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "run_compiled_partition",
]

T = TypeVar("T")
R = TypeVar("R")

#: executor kinds accepted by :func:`make_executor` / ``TiltEngine``
EXECUTOR_KINDS = ("serial", "thread", "process")


class Executor:
    """Minimal executor interface: order-preserving map over work items."""

    #: number of workers this executor uses (1 for serial)
    workers: int = 1

    #: backend family: ``"serial"``, ``"thread"`` or ``"process"``
    kind: str = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release pool resources (no-op for serial execution)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class SerialExecutor(Executor):
    """Run every item in the calling thread, in order."""

    workers = 1
    kind = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadPoolExecutor(Executor):
    """Thread-pool executor with an order-preserving map."""

    kind = "thread"

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=self.workers)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def _warm_worker(_index: int) -> int:
    """No-op pool-warmup task (module-level so it pickles by reference)."""
    return os.getpid()


def _default_mp_context():
    """Multiprocessing start method for the process backend.

    ``fork`` where available: workers inherit the imported modules (cheap
    startup) and — unlike ``forkserver``/``spawn`` — nothing re-imports the
    parent's ``__main__``, so engines embedded in scripts without an
    ``if __name__ == "__main__"`` guard, in REPLs, or in stdin-driven
    programs keep working.  This matches the stdlib's own Linux default
    through Python 3.13.  The known caveat is forking a *multi-threaded*
    parent (locks copied mid-held into the child); embedders for whom that
    matters — and whose ``__main__`` is import-safe — can set the
    ``REPRO_MP_CONTEXT`` environment variable to ``forkserver`` or
    ``spawn``, which this honours verbatim.
    """
    name = os.environ.get("REPRO_MP_CONTEXT")
    if name:
        return multiprocessing.get_context(name)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")  # pragma: no cover - non-POSIX


class ProcessPoolExecutor(Executor):
    """Process-pool executor with an order-preserving map.

    The submitted callable must be picklable by reference (a module-level
    function); the engine uses :func:`run_compiled_partition`.  The pool is
    long-lived — it is created once per engine and reused by every run and
    every streaming tick, so worker startup and per-query kernel rebuilds
    are one-time costs.
    """

    kind = "process"

    def __init__(self, workers: int, mp_context=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        #: payload digests this pool has been seeded with (a completed map
        #: that carried the payload); later dispatches for these digests may
        #: go digest-only, with :class:`PayloadMissError` as the recovery
        #: path for workers that evicted (or never saw) the query.
        self.seeded_digests: Set[str] = set()
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=mp_context if mp_context is not None else _default_mp_context(),
        )
        # Pre-spawn every worker now rather than at the first submit: under
        # the default fork start method this snapshots the parent at pool
        # *creation* time — typically before an embedding application (the
        # multi-tenant service included) has started its own threads — so
        # workers never inherit another thread's locks mid-held.
        list(self._pool.map(_warm_worker, range(self.workers), chunksize=1))

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        # One chunk per worker: besides cutting IPC round trips, pickle
        # memoizes repeated objects *within* a chunk, so the shared query
        # payload embedded in every task crosses the boundary once per
        # worker instead of once per partition.  Static chunking is safe
        # here because partitions are cost-uniform by construction (equal
        # output intervals).
        chunksize = max(1, math.ceil(len(items) / self.workers))
        return list(self._pool.map(fn, items, chunksize=chunksize))

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(workers: int, kind: Optional[str] = None) -> Executor:
    """Build an executor.

    ``kind=None`` keeps the historical default: serial for one worker, a
    thread pool otherwise.  Explicit kinds force the backend regardless of
    the worker count (a one-worker process pool is still a separate
    process — useful for testing the serialization path).
    """
    if kind is None:
        return SerialExecutor() if workers <= 1 else ThreadPoolExecutor(workers)
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadPoolExecutor(max(1, workers))
    if kind == "process":
        return ProcessPoolExecutor(max(1, workers))
    raise ValueError(f"unknown executor kind {kind!r} (expected one of {EXECUTOR_KINDS})")


# ---------------------------------------------------------------------- #
# process-pool worker side
# ---------------------------------------------------------------------- #
class PayloadMissError(Exception):
    """A worker received a digest-only task for a query it has not cached.

    Raised back to the parent, which retries the map with the payload
    attached (see ``TiltEngine._map_partitions``).  Happens when the worker
    evicted the query from its bounded cache, or when a replacement worker
    process joined the pool after the query was first seeded.
    """

    def __init__(self, digest: str):
        super().__init__(digest)
        self.digest = digest


#: per-process LRU of unpickled compiled queries, keyed by payload digest.
#: Bounded so a long-lived worker serving many distinct queries cannot
#: accumulate kernels without limit (mirrors the engine's LRU compile
#: cache); eviction is recency-based, so a fleet's hot queries stay warm.
#: The bound comfortably exceeds QueryService's default ``max_tenants``
#: (64) — a full default-configuration fleet must not thrash the cache
#: (every eviction costs a PayloadMissError retry of a whole map).
_WORKER_QUERY_CACHE: "OrderedDict[str, object]" = OrderedDict()
_WORKER_QUERY_LOCK = threading.Lock()
_WORKER_QUERY_CACHE_LIMIT = 128

#: worker-side span-id sequence — distinct from any parent-side tracer ids
#: (those embed the parent pid; these the worker pid + a ``w`` marker)
_WORKER_SPAN_IDS = itertools.count(1)


def _worker_compiled_query(digest: str, payload: Optional[bytes]):
    import pickle

    with _WORKER_QUERY_LOCK:
        compiled = _WORKER_QUERY_CACHE.get(digest)
        if compiled is not None:
            _WORKER_QUERY_CACHE.move_to_end(digest)
            return compiled
    if payload is None:
        raise PayloadMissError(digest)
    compiled = pickle.loads(payload)
    with _WORKER_QUERY_LOCK:
        _WORKER_QUERY_CACHE[digest] = compiled
        _WORKER_QUERY_CACHE.move_to_end(digest)
        while len(_WORKER_QUERY_CACHE) > _WORKER_QUERY_CACHE_LIMIT:
            _WORKER_QUERY_CACHE.popitem(last=False)
    return compiled


def run_compiled_partition(task: Tuple):
    """Process-pool task: run one partition of a compiled query.

    ``task`` is ``(digest, payload, partition[, traced])`` where ``payload``
    is the pickled :class:`~repro.core.codegen.compiled.CompiledQuery` — or
    ``None`` once the parent has seeded the pool, so a long-running
    streaming session ships only the digest per tick.  The expensive
    unpickle+rebuild happens at most once per process, guarded by the
    digest LRU; a digest-only miss raises :class:`PayloadMissError` for the
    parent to retry with the payload.  ``partition`` is a
    :class:`~repro.core.runtime.partition.Partition`.  Returns the output
    snapshot buffer, which pickles back to the parent as raw arrays.

    With ``traced`` (the engine sets it when its tracer is enabled) the
    partition is timed worker-side and the return value becomes
    ``(buffer, [SpanRecord])`` — the span records ship back with the result
    and are adopted under the parent's dispatch span, so a traced tick's
    span tree crosses the process boundary intact.
    """
    digest, payload, partition = task[0], task[1], task[2]
    traced = len(task) > 3 and task[3]
    compiled = _worker_compiled_query(digest, payload)
    if not traced:
        return compiled.run(partition.inputs, partition.t_start, partition.t_end)
    import time

    from ...obs.trace import SpanRecord

    wall = time.time()
    c0 = time.thread_time()
    t0 = time.perf_counter()
    out = compiled.run(partition.inputs, partition.t_start, partition.t_end)
    duration = time.perf_counter() - t0
    cpu = time.thread_time() - c0
    record = SpanRecord(
        "kernel.partition",
        f"{os.getpid():x}-w{next(_WORKER_SPAN_IDS):x}",
        None,
        wall,
        duration,
        cpu,
        {
            "index": partition.index,
            "t_start": partition.t_start,
            "t_end": partition.t_end,
            "kernel_digest": digest[:12],
        },
        threading.get_ident(),
        os.getpid(),
    )
    return out, [record]
