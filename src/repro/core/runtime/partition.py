"""Boundary-driven stream partitioning (Section 6.2, Figure 6).

TiLT parallelizes a query by cutting the *output* time range into disjoint
intervals and giving each worker the input snapshots required to produce its
interval — the required input interval is exactly the output interval
extended by the margins that boundary resolution inferred.  Adjacent
partitions therefore duplicate a small amount of input (the shaded region of
Figure 6), which is the price of completely synchronization-free workers.

Margin invariants
-----------------
Both the one-shot engine and the streaming session layer
(:mod:`repro.core.runtime.session`) rely on two facts about the margins:

* **Sufficiency** — a partition producing ``(lo, hi]`` never reads any input
  outside ``(lo - lookback, hi + lookahead]``, so the slice built here is
  all a worker will ever see.  For a streaming session this is what makes
  incremental emission safe: output up to a watermark ``w`` is fully
  determined once input is complete through ``w + max_lookahead``.
* **Deadness** — once output through ``w`` has been emitted, every future
  partition has ``lo >= w`` and therefore reads no input at or before
  ``w - max_lookback``.  That is the carry-over rule: between ticks a
  session must retain (only) the input snapshots after ``w - max_lookback``,
  and may prune everything older.

Partition edges are additionally snapped to the query's coarsest
time-domain precision (``align``); streaming tick boundaries follow the
same rule, so a tick edge is indistinguishable from an interior partition
edge of a one-shot run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ...errors import QueryBuildError
from ..lineage.boundary import BoundarySpec
from .ssbuf import SSBuf

__all__ = ["Partition", "plan_partitions", "partition_inputs"]


@dataclass(frozen=True)
class Partition:
    """One unit of parallel work.

    ``(t_start, t_end]`` is the output interval this partition produces;
    ``inputs`` holds, per input stream, the slice of the input buffer the
    compiled kernel needs (already extended by the boundary margins).
    """

    index: int
    t_start: float
    t_end: float
    inputs: Dict[str, SSBuf]

    def __reduce__(self):
        # constructor-based reduction: a partition crosses a process
        # boundary as its two bounds plus raw-array snapshot buffers (see
        # :meth:`SSBuf.__reduce__`), with no per-instance dict state.
        return (Partition, (self.index, self.t_start, self.t_end, self.inputs))

    @property
    def span(self) -> float:
        return self.t_end - self.t_start

    def input_snapshot_count(self) -> int:
        """Total number of input snapshots handed to this partition."""
        return sum(len(buf) for buf in self.inputs.values())


def plan_partitions(
    t_start: float,
    t_end: float,
    *,
    num_partitions: Optional[int] = None,
    interval: Optional[float] = None,
    align: float = 0.0,
) -> List[Tuple[float, float]]:
    """Split ``(t_start, t_end]`` into consecutive output intervals.

    Exactly one of ``num_partitions`` / ``interval`` must be given: the former
    produces that many equal intervals (the common case: one per worker
    thread), the latter fixed-size intervals (the "user-defined interval
    size" of Section 6.2, also used for the latency-bounded throughput
    experiments where the interval plays the role of the batch size).

    ``align`` snaps the interior partition boundaries down to multiples of
    the given value.  The engine passes the coarsest time-domain precision of
    the query here, so that no partition boundary falls in the middle of a
    precision interval — otherwise a worker would have to evaluate the query
    at an off-grid time it does not have the data to evaluate consistently.
    """
    if t_end <= t_start:
        return []
    if (num_partitions is None) == (interval is None):
        raise QueryBuildError("specify exactly one of num_partitions or interval")
    if num_partitions is not None:
        if num_partitions <= 0:
            raise QueryBuildError("num_partitions must be positive")
        width = (t_end - t_start) / num_partitions
        edges = [t_start + i * width for i in range(num_partitions)] + [t_end]
    else:
        if interval is None or interval <= 0:
            raise QueryBuildError("interval must be positive")
        count = int(math.ceil((t_end - t_start) / interval))
        edges = [t_start + i * interval for i in range(count)] + [t_end]
        edges = [min(e, t_end) for e in edges]
    if align and align > 0:
        # Snapping must not move an interior edge below the range start: with
        # partitions narrower than the grid and an off-grid t_start, flooring
        # would otherwise create a partition that begins before (and overlaps)
        # the requested output range.  Clamped edges collapse into empty
        # partitions and are filtered below.
        interior = [
            max(math.floor(e / align) * align, edges[0]) for e in edges[1:-1]
        ]
        edges = [edges[0]] + interior + [edges[-1]]
    bounds: List[Tuple[float, float]] = []
    for i in range(len(edges) - 1):
        lo, hi = edges[i], edges[i + 1]
        if hi > lo:
            bounds.append((lo, hi))
    return bounds


def partition_inputs(
    inputs: Mapping[str, SSBuf],
    boundary: BoundarySpec,
    t_start: float,
    t_end: float,
    *,
    num_partitions: Optional[int] = None,
    interval: Optional[float] = None,
    align: float = 0.0,
) -> List[Partition]:
    """Materialize the partitions for a query run.

    Every partition receives, for each input stream, the slice
    ``(p_start - lookback, p_end + lookahead]`` of that stream's snapshot
    buffer (per-input margins from ``boundary``).  The ``inputs`` mapping
    may itself hold pruned tails rather than full streams: as long as each
    buffer still covers every requested slice — the session layer's
    carry-over invariant — the produced partitions are identical to those
    of a full-stream run, because ``SSBuf.slice`` is stable under such
    pruning (see :meth:`SSBuf.slice`).
    """
    bounds = plan_partitions(
        t_start, t_end, num_partitions=num_partitions, interval=interval, align=align
    )
    partitions: List[Partition] = []
    for idx, (lo, hi) in enumerate(bounds):
        sliced: Dict[str, SSBuf] = {}
        for name, buf in inputs.items():
            in_lo, in_hi = boundary.input_interval(name, lo, hi)
            sliced[name] = buf.slice(in_lo, in_hi)
        partitions.append(Partition(index=idx, t_start=lo, t_end=hi, inputs=sliced))
    return partitions
