"""Continuous streaming sessions: micro-batch execution of TiLT queries.

``TiltEngine.run`` is one-shot: it partitions a *finite* input buffer and
returns.  A :class:`StreamingSession` is the long-running execution path: it
compiles the query once and then advances it incrementally over unbounded
sources in micro-batch *ticks*.  Each tick

1. polls every source for newly arrived events and appends them to the
   per-input snapshot buffers (change-point form, exactly as
   :meth:`SSBuf.from_events` would build them);
2. computes the new output **watermark** ``w`` — the time up to which the
   output is fully determined by the ingested input;
3. re-plans only the new output interval ``(t_emitted, w]`` with the same
   boundary-margin partitioner as the batch engine and executes the
   partitions on the engine's shared worker pool;
4. emits the resulting output *delta* and prunes the retained input tail.

Correctness contract (tick concatenation ≡ one-shot batch)
----------------------------------------------------------
The session maintains two invariants derived from the resolved
:class:`~repro.core.lineage.boundary.BoundarySpec`:

* **Watermark trails the ingest horizon by the lookahead margin.**  Producing
  output over ``(Ts, Te]`` reads input up to ``Te + lookahead``, so a tick
  may only emit up to ``w = horizon - max_lookahead`` (where ``horizon`` is
  the sources' completeness watermark).  ``w`` is additionally snapped *down*
  to the query's coarsest time-domain precision so tick edges — like the
  batch partitioner's interior edges — never fall inside a precision
  interval.
* **Carry-over retains the lookback margin.**  After emitting through ``w``,
  every future partition starts at ``p_start >= w`` and reads input back to
  ``p_start - lookback``, so the retained per-input tail is pruned to
  ``(w - max_lookback, ·]`` and nothing older is ever needed again.

Within those invariants every partition slice handed to a kernel is
byte-identical to the slice the one-shot batch run would have produced for
the same output interval, so concatenating the per-tick deltas and merging
adjacent equal snapshots reproduces the batch output exactly.  (Tick and
partition edges do introduce extra snapshot boundaries, but — as in the
batch engine — they always carry the value the output already holds there,
and :meth:`SSBuf.compact` removes such duplicates canonically.)  The
equivalence is asserted byte-for-byte in ``tests/test_streaming_session.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...errors import ExecutionError, OverlappingEventsError, QueryBuildError
from ..codegen.compiled import CompiledQuery
from ..ir.nodes import TiltProgram
from ..lineage.boundary import resolve_boundaries
from .engine import QueryResult, TiltEngine
from .ssbuf import SSBuf
from .stream import Event

__all__ = ["TickResult", "StreamingSession"]

_INF = float("inf")


class _IngestColumn:
    """Incremental change-point accumulation for one program input.

    Appending an in-order event ``(s, e]`` mirrors ``SSBuf.from_events``:
    a φ snapshot at ``s`` when a gap precedes it, then a value snapshot at
    ``e``.  The column therefore materializes, at any point, exactly the
    prefix of the buffer the batch ingest would have built — which is what
    the byte-identical equivalence of session and batch execution rests on.

    ``anchor`` is the materialized buffer's ``start_time``; pruning advances
    it (see :meth:`prune`), matching ``SSBuf.slice``'s clamping semantics so
    partition slices taken from the pruned buffer are unchanged.
    """

    __slots__ = ("name", "field", "anchor", "prev_end", "_chunks", "_cache")

    def __init__(self, name: str, field: Optional[str] = None):
        self.name = name
        self.field = field
        self.anchor: Optional[float] = None
        self.prev_end: Optional[float] = None
        self._chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._cache: Optional[SSBuf] = None

    @property
    def started(self) -> bool:
        return self.prev_end is not None

    def extend(self, events: Sequence[Event]) -> None:
        if not events:
            return
        times: List[float] = []
        values: List[float] = []
        valid: List[bool] = []
        prev_end = self.prev_end
        for e in events:
            value = e.field(self.field) if self.field is not None else e.value()
            if prev_end is None:
                # auto-derived start, matching from_events: the first
                # snapshot interval is empty, values before it are φ
                self.anchor = e.start
                prev_end = e.start
            if e.start < prev_end:
                raise OverlappingEventsError(
                    f"input {self.name!r}: event starting at {e.start:g} overlaps or "
                    f"precedes ingested data ending at {prev_end:g}; sessions require "
                    "in-order, non-overlapping arrival"
                )
            if e.start > prev_end:
                times.append(e.start)
                values.append(0.0)
                valid.append(False)
            times.append(e.end)
            values.append(value)
            valid.append(True)
            prev_end = e.end
        self.prev_end = prev_end
        self._chunks.append(
            (
                np.asarray(times, dtype=np.float64),
                np.asarray(values, dtype=np.float64),
                np.asarray(valid, dtype=bool),
            )
        )
        self._cache = None

    def materialize(self) -> SSBuf:
        """The retained tail of this input as a snapshot buffer."""
        if self._cache is None:
            anchor = 0.0 if self.anchor is None else self.anchor
            if not self._chunks:
                self._cache = SSBuf.empty(anchor)
            else:
                self._cache = SSBuf(
                    np.concatenate([c[0] for c in self._chunks]),
                    np.concatenate([c[1] for c in self._chunks]),
                    np.concatenate([c[2] for c in self._chunks]),
                    start_time=anchor,
                )
        return self._cache

    def prune(self, t: float) -> None:
        """Drop snapshots at or before ``t`` (they can never be read again).

        Uses ``SSBuf.slice`` so a snapshot spanning ``t`` is kept whole and
        the buffer's ``start_time`` advances to ``t`` — any later
        ``slice(in_lo, in_hi)`` with ``in_lo >= t`` is byte-identical to the
        same slice of the unpruned buffer.
        """
        buf = self.materialize()
        if t <= buf.start_time:
            return
        pruned = SSBuf.empty(t) if buf.end_time <= t else buf.slice(t, buf.end_time)
        self._chunks = (
            [(pruned.times, pruned.values, pruned.valid)] if len(pruned) else []
        )
        self.anchor = pruned.start_time
        self._cache = pruned

    def retained_snapshots(self) -> int:
        return sum(len(c[0]) for c in self._chunks)


@dataclass
class TickResult:
    """Output of one micro-batch tick.

    ``delta`` holds the output snapshots produced for ``(t_start, t_end]``;
    a tick that could not advance the watermark (not enough input arrived)
    emits an empty delta with ``t_start == t_end``.
    """

    index: int
    t_start: float
    t_end: float
    delta: SSBuf
    events_ingested: int
    num_partitions: int
    elapsed_seconds: float

    @property
    def emitted(self) -> bool:
        return self.t_end > self.t_start

    @property
    def watermark(self) -> float:
        """Output is complete up to this time after the tick."""
        return self.t_end

    @property
    def output_snapshots(self) -> int:
        return len(self.delta)


class StreamingSession:
    """A long-running, incrementally advanced TiLT query.

    Create sessions through :meth:`TiltEngine.open_session`, which shares
    the compiled kernels (per-program compile cache) and the worker pool
    across all sessions of the engine.

    Parameters
    ----------
    engine:
        The owning engine; supplies workers, partitioning policy and the
        shared executor.
    query:
        A :class:`TiltProgram` or pre-compiled :class:`CompiledQuery`.
    sources:
        Pull sources covering every program input (see
        :mod:`repro.datagen.sources` for the protocol).  A scalar source
        named ``s`` feeds input ``s``; a structured source named ``s``
        feeds every ``s.<field>`` input.
    max_events_per_tick:
        Upper bound on events pulled from each source per tick (a bounded
        ingest buffer: anything beyond stays queued in the source —
        backpressure by not polling).  ``None`` defers to each source's own
        arrival rate.
    t_start:
        Optional explicit output start time (defaults to the earliest
        ingested event start, matching ``TiltEngine.run``).
    retain_output:
        Keep every emitted delta so :meth:`result` can assemble the full
        output buffer.  Turn off for indefinitely running sessions, where
        only the per-tick deltas and live metrics are wanted.
    """

    def __init__(
        self,
        engine: TiltEngine,
        query: Union[TiltProgram, CompiledQuery],
        sources: Sequence[object],
        *,
        max_events_per_tick: Optional[int] = None,
        t_start: Optional[float] = None,
        retain_output: bool = True,
    ):
        self._engine = engine
        program, compiled = engine._prepare(query)
        self._program = program
        self._compiled = compiled
        self._boundary = (
            compiled.boundary if compiled is not None else resolve_boundaries(program)
        )
        self._alignment = max((te.tdom.precision for te in program.exprs), default=0.0)
        self._max_events_per_tick = max_events_per_tick
        self._retain_output = retain_output

        self._sources = list(sources)
        if not self._sources:
            raise QueryBuildError("a streaming session needs at least one source")
        self._columns: Dict[str, _IngestColumn] = {}
        self._source_columns: List[Tuple[object, List[_IngestColumn]]] = []
        for src in self._sources:
            cols = []
            for input_name in program.inputs:
                field = None
                if input_name == src.name:
                    field = None
                elif input_name.startswith(src.name + "."):
                    field = input_name.split(".", 1)[1]
                else:
                    continue
                if input_name in self._columns:
                    raise QueryBuildError(
                        f"input {input_name!r} is fed by more than one source"
                    )
                col = _IngestColumn(input_name, field)
                self._columns[input_name] = col
                cols.append(col)
            if not cols:
                raise QueryBuildError(
                    f"source {src.name!r} matches no input of the program "
                    f"(inputs: {list(program.inputs)})"
                )
            self._source_columns.append((src, cols))
        missing = [n for n in program.inputs if n not in self._columns]
        if missing:
            raise ExecutionError(f"no source covers input streams: {missing}")

        self._user_t_start = t_start
        self._t_emit: Optional[float] = None
        self._emitted_any = False
        self._ticks = 0
        self._closed = False
        self._deltas: List[SSBuf] = []
        self._total_partitions = 0
        self._total_events = 0

        # imported lazily: repro.metrics sits above the core layers in the
        # package hierarchy, and importing it at module load time would
        # create an import cycle through repro.apps.
        from ...metrics.streaming import SessionMetrics

        self.metrics = SessionMetrics()
        engine._register_session(self)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def program(self) -> TiltProgram:
        return self._program

    @property
    def boundary(self):
        """Resolved boundary margins governing watermark and carry-over."""
        return self._boundary

    @property
    def watermark(self) -> float:
        """Time through which output has been emitted so far."""
        return -_INF if self._t_emit is None else self._t_emit

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def ticks(self) -> int:
        return self._ticks

    def retained_snapshots(self) -> int:
        """Total input snapshots currently held as carry-over state."""
        return sum(col.retained_snapshots() for col in self._columns.values())

    @property
    def exhausted(self) -> bool:
        """True when every source reports exhaustion (finite sources only)."""
        return all(getattr(src, "exhausted", False) for src, _ in self._source_columns)

    # ------------------------------------------------------------------ #
    # the micro-batch loop
    # ------------------------------------------------------------------ #
    def tick(self, max_events: Optional[int] = None) -> TickResult:
        """Ingest newly arrived events and emit the next output delta."""
        if self._closed:
            raise ExecutionError("session is closed")
        started = time.perf_counter()
        ingested = self._ingest(max_events)
        horizon = min(src.horizon for src, _ in self._source_columns)
        t_lo, t_hi, delta, partitions = self._emit(horizon, forced_end=None)
        return self._finish_tick(started, ingested, t_lo, t_hi, delta, partitions)

    def close(self, *, drain: bool = True) -> TickResult:
        """Flush the remaining output and end the session.

        With ``drain=True`` (the default) any events the sources still hold
        are ingested first — but only when every source is *finite*: an
        unbounded source can never be drained, so sessions over one skip
        straight to the flush.  The final flush extends to the last ingested
        event — the lookahead margin is waived because no further input can
        arrive, exactly as a batch run's ``t_end`` is the end of its
        (complete) input.
        """
        if self._closed:
            raise ExecutionError("session is already closed")
        started = time.perf_counter()
        ingested = 0
        all_finite = all(
            getattr(src, "finite", True) for src, _ in self._source_columns
        )
        if drain and all_finite:
            while not self.exhausted:
                polled = self._ingest(None)
                ingested += polled
                if polled == 0:
                    break
        ends = [c.prev_end for c in self._columns.values() if c.started]
        if not ends:
            self._closed = True
            return self._finish_tick(started, ingested, 0.0, 0.0, SSBuf.empty(0.0), 0)
        t_final = max(ends)
        t_lo, t_hi, delta, partitions = self._emit(_INF, forced_end=t_final)
        self._closed = True
        return self._finish_tick(started, ingested, t_lo, t_hi, delta, partitions)

    def abort(self) -> None:
        """Close immediately, skipping the final output flush.

        Unlike :meth:`close` this runs no query work at all, which makes it
        safe to call during teardown (``TiltEngine.close`` aborts any
        sessions still open before shutting down the worker pool).
        Idempotent: aborting a closed session is a no-op.
        """
        self._closed = True

    def run_to_exhaustion(self, max_ticks: Optional[int] = None) -> List[TickResult]:
        """Tick until every (finite) source is exhausted, then close.

        When the ``max_ticks`` budget runs out first (or a source is
        unbounded), the close flushes what was ingested without trying to
        drain the rest.
        """
        results: List[TickResult] = []
        while not self.exhausted:
            if max_ticks is not None and len(results) >= max_ticks:
                break
            results.append(self.tick())
        results.append(self.close(drain=self.exhausted))
        return results

    def result(self) -> QueryResult:
        """Cumulative result over everything emitted so far.

        Requires ``retain_output=True``.  The assembled buffer is
        byte-identical to what one ``TiltEngine.run`` over the full ingested
        input would have produced.
        """
        if not self._retain_output:
            raise ExecutionError("session was opened with retain_output=False")
        pieces = [d for d in self._deltas if len(d)]
        start = self._session_start() if self._t_emit is None else None
        if pieces:
            output = SSBuf.concat(pieces).compact()
        else:
            output = SSBuf.empty(self._t_emit if self._t_emit is not None else (start or 0.0))
        return QueryResult(
            output=output,
            elapsed_seconds=self.metrics.busy_seconds,
            num_partitions=self._total_partitions,
            workers=self._engine.workers,
            input_events=self._total_events,
            boundary=self._boundary,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ingest(self, max_events: Optional[int]) -> int:
        budget = max_events if max_events is not None else self._max_events_per_tick
        ingested = 0
        for src, cols in self._source_columns:
            events = src.poll(budget)
            if not events:
                continue
            for col in cols:
                col.extend(events)
            ingested += len(events)
        self._total_events += ingested
        return ingested

    def _session_start(self) -> Optional[float]:
        if self._user_t_start is not None:
            return float(self._user_t_start)
        starts = [c.anchor for c in self._columns.values() if c.started]
        return min(starts) if starts else None

    def _emit(
        self, horizon: float, forced_end: Optional[float]
    ) -> Tuple[float, float, SSBuf, int]:
        # (re-)derive the output start until the first delta is emitted: a
        # late-starting input may still lower it (its events are guaranteed
        # to arrive before any emittable watermark reaches them).
        if not self._emitted_any:
            start = self._session_start()
            if start is None:
                return (0.0, 0.0, SSBuf.empty(0.0), 0)
            self._t_emit = start
        assert self._t_emit is not None
        if forced_end is not None:
            w = forced_end
        else:
            w = horizon - self._boundary.max_lookahead
            if w < _INF and self._alignment > 0:
                w = float(np.floor(w / self._alignment) * self._alignment)
        if not (w > self._t_emit) or w == _INF:
            return (self._t_emit, self._t_emit, SSBuf.empty(self._t_emit), 0)

        inputs = {name: col.materialize() for name, col in self._columns.items()}
        partitions = self._engine._partition(
            inputs, self._boundary, self._t_emit, w, self._alignment
        )
        # single dispatch point shared with TiltEngine.run: picks the
        # engine's worker pool, ships picklable compiled queries to the
        # process backend, and falls back to threads otherwise.
        pieces = self._engine._map_partitions(
            self._compiled, self._program, self._boundary, partitions
        )
        delta = SSBuf.concat(pieces).compact() if pieces else SSBuf.empty(self._t_emit)
        t_lo = self._t_emit
        # retain the delta *before* advancing the watermark: a concurrent
        # reader of result() then sees at worst a one-tick-stale output,
        # never an output stamped complete through a watermark whose delta
        # is missing.
        if self._retain_output and len(delta):
            self._deltas.append(delta)
        self._t_emit = w
        self._emitted_any = True
        # carry-over: every future partition reads input no earlier than
        # (new watermark - max lookback); older snapshots are dead.
        prune_to = w - self._boundary.max_lookback
        for col in self._columns.values():
            col.prune(prune_to)
        return (t_lo, w, delta, len(partitions))

    def _finish_tick(
        self,
        started: float,
        ingested: int,
        t_lo: float,
        t_hi: float,
        delta: SSBuf,
        partitions: int,
    ) -> TickResult:
        elapsed = time.perf_counter() - started
        self._ticks += 1
        self._total_partitions += partitions
        result = TickResult(
            index=self._ticks - 1,
            t_start=t_lo,
            t_end=t_hi,
            delta=delta,
            events_ingested=ingested,
            num_partitions=partitions,
            elapsed_seconds=elapsed,
        )
        self.metrics.record_tick(
            input_events=ingested,
            output_snapshots=len(delta),
            seconds=elapsed,
            emitted=result.emitted,
        )
        return result

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, *exc) -> None:
        if not self._closed:
            self.close(drain=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"watermark={self.watermark:g}"
        return (
            f"StreamingSession({self._program.output!r}, ticks={self._ticks}, {state})"
        )
