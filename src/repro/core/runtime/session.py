"""Continuous streaming sessions: micro-batch execution of TiLT queries.

``TiltEngine.run`` is one-shot: it partitions a *finite* input buffer and
returns.  A :class:`StreamingSession` is the long-running execution path: it
compiles the query once and then advances it incrementally over unbounded
sources in micro-batch *ticks*.  Each tick

1. polls every source for newly arrived events and appends them to the
   per-input snapshot buffers (change-point form, exactly as
   :meth:`SSBuf.from_events` would build them);
2. computes the new output **watermark** ``w`` — the time up to which the
   output is fully determined by the ingested input;
3. re-plans only the new output interval ``(t_emitted, w]`` with the same
   boundary-margin partitioner as the batch engine and executes the
   partitions on the engine's shared worker pool;
4. emits the resulting output *delta* and prunes the retained input tail.

Correctness contract (tick concatenation ≡ one-shot batch)
----------------------------------------------------------
The session maintains two invariants derived from the resolved
:class:`~repro.core.lineage.boundary.BoundarySpec`:

* **Watermark trails the ingest horizon by the lookahead margin.**  Producing
  output over ``(Ts, Te]`` reads input up to ``Te + lookahead``, so a tick
  may only emit up to ``w = horizon - max_lookahead`` (where ``horizon`` is
  the sources' completeness watermark).  ``w`` is additionally snapped *down*
  to the query's coarsest time-domain precision so tick edges — like the
  batch partitioner's interior edges — never fall inside a precision
  interval.
* **Carry-over retains the lookback margin.**  After emitting through ``w``,
  every future partition starts at ``p_start >= w`` and reads input back to
  ``p_start - lookback``, so the retained per-input tail is pruned to
  ``(w - max_lookback, ·]`` and nothing older is ever needed again.

Within those invariants every partition slice handed to a kernel is
byte-identical to the slice the one-shot batch run would have produced for
the same output interval, so concatenating the per-tick deltas and merging
adjacent equal snapshots reproduces the batch output exactly.  (Tick and
partition edges do introduce extra snapshot boundaries, but — as in the
batch engine — they always carry the value the output already holds there,
and :meth:`SSBuf.compact` removes such duplicates canonically.)  The
equivalence is asserted byte-for-byte in ``tests/test_streaming_session.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...errors import ExecutionError, OverlappingEventsError, QueryBuildError
from ..codegen.compiled import CompiledQuery
from ..codegen.incremental import SessionStateStore
from ..ir.nodes import TiltProgram
from ..lineage.boundary import resolve_boundaries
from .engine import QueryResult, TiltEngine
from .ssbuf import SSBuf, _ssbuf_from_arrays
from .stream import Event

__all__ = ["TickResult", "StreamingSession"]

_INF = float("inf")


class _IngestColumn:
    """Incremental change-point accumulation for one program input.

    Appending an in-order event ``(s, e]`` mirrors ``SSBuf.from_events``:
    a φ snapshot at ``s`` when a gap precedes it, then a value snapshot at
    ``e``.  The column therefore materializes, at any point, exactly the
    prefix of the buffer the batch ingest would have built — which is what
    the byte-identical equivalence of session and batch execution rests on.

    ``anchor`` is the materialized buffer's ``start_time``; pruning advances
    it (see :meth:`prune`), matching ``SSBuf.slice``'s clamping semantics so
    partition slices taken from the pruned buffer are unchanged.

    Storage is a trio of geometrically grown arrays with a lazily advanced
    live-prefix index: appending a tick's events, materializing the buffer
    (a zero-copy view) and pruning the dead head are all O(new events) per
    tick — O(live) only when the amortized compaction fires.  Keeping every
    per-tick column operation off the O(retained) path is what lets
    incremental sessions achieve lookback-independent tick cost.
    """

    __slots__ = (
        "name",
        "field",
        "anchor",
        "prev_end",
        "_times",
        "_values",
        "_valid",
        "_n",
        "_lo",
        "_cache",
    )

    #: dead-head entries are compacted away only once they outnumber the
    #: live tail and exceed this count
    _COMPACT_MIN_DEAD = 4096

    def __init__(self, name: str, field: Optional[str] = None):
        self.name = name
        self.field = field
        self.anchor: Optional[float] = None
        self.prev_end: Optional[float] = None
        self._times = np.empty(0, dtype=np.float64)
        self._values = np.empty(0, dtype=np.float64)
        self._valid = np.empty(0, dtype=bool)
        self._n = 0
        self._lo = 0
        self._cache: Optional[SSBuf] = None

    @property
    def started(self) -> bool:
        return self.prev_end is not None

    def extend(self, events: Sequence[Event]) -> None:
        if not events:
            return
        if self.field is not None:
            f = self.field
            vals = np.asarray([e.field(f) for e in events], dtype=np.float64)
        else:
            vals = np.asarray([e.value() for e in events], dtype=np.float64)
        starts = np.asarray([e.start for e in events], dtype=np.float64)
        ends = np.asarray([e.end for e in events], dtype=np.float64)
        prev_end = self.prev_end
        first_anchor = None
        if prev_end is None:
            # auto-derived start, matching from_events: the first
            # snapshot interval is empty, values before it are φ
            first_anchor = float(starts[0])
            prev_end = first_anchor
        prev_ends = np.empty(len(ends))
        prev_ends[0] = prev_end
        prev_ends[1:] = ends[:-1]
        overlap = starts < prev_ends
        if np.any(overlap):
            i = int(np.argmax(overlap))
            raise OverlappingEventsError(
                f"input {self.name!r}: event starting at {starts[i]:g} overlaps or "
                f"precedes ingested data ending at {prev_ends[i]:g}; sessions require "
                "in-order, non-overlapping arrival"
            )
        if first_anchor is not None:
            self.anchor = first_anchor
        # one snapshot per event end, plus a φ snapshot at each gap start
        gaps = starts > prev_ends
        m = len(events) + int(np.count_nonzero(gaps))
        times = np.empty(m)
        values = np.empty(m)
        valid = np.empty(m, dtype=bool)
        pos = np.arange(len(events)) + np.cumsum(gaps)
        times[pos] = ends
        values[pos] = vals
        valid[pos] = True
        gap_pos = pos[gaps] - 1
        times[gap_pos] = starts[gaps]
        values[gap_pos] = 0.0
        valid[gap_pos] = False
        self.prev_end = float(ends[-1])
        self._append(times, values, valid)
        self._cache = None

    def _append(self, times: np.ndarray, values: np.ndarray, valid: np.ndarray) -> None:
        m = len(times)
        if self._n + m > len(self._times):
            cap = max(64, 2 * len(self._times), self._n + m)
            for attr in ("_times", "_values", "_valid"):
                old = getattr(self, attr)
                grown = np.empty(cap, dtype=old.dtype)
                grown[: self._n] = old[: self._n]
                setattr(self, attr, grown)
        self._times[self._n : self._n + m] = times
        self._values[self._n : self._n + m] = values
        self._valid[self._n : self._n + m] = valid
        self._n += m

    def materialize(self) -> SSBuf:
        """The retained tail of this input as a snapshot buffer.

        A validated-by-construction view over the live window of the
        column's arrays — no copy.  The view stays stable for the duration
        of a tick (appends land beyond it; compaction only happens in
        :meth:`prune`, which also drops the cache).
        """
        if self._cache is None:
            anchor = 0.0 if self.anchor is None else float(self.anchor)
            if self._n == self._lo:
                self._cache = SSBuf.empty(anchor)
            else:
                self._cache = _ssbuf_from_arrays(
                    self._times[self._lo : self._n],
                    self._values[self._lo : self._n],
                    self._valid[self._lo : self._n],
                    anchor,
                )
        return self._cache

    def prune(self, t: float) -> int:
        """Drop snapshots at or before ``t`` (they can never be read again).

        Matches ``SSBuf.slice`` semantics: a snapshot spanning ``t`` is kept
        whole and the buffer's ``start_time`` advances to ``t`` — any later
        ``slice(in_lo, in_hi)`` with ``in_lo >= t`` is byte-identical to the
        same slice of the unpruned buffer.  The dead head is dropped lazily
        (amortized compaction), keeping per-tick pruning O(log retained).
        Returns the number of snapshots newly retired (for the pruned-input
        accounting in the metrics registry).
        """
        if t <= (self.anchor if self.anchor is not None else 0.0):
            return 0
        pruned = int(
            np.searchsorted(self._times[self._lo : self._n], t, side="right")
        )
        self._lo += pruned
        self.anchor = t
        self._cache = None
        if self._lo >= self._COMPACT_MIN_DEAD and 2 * self._lo >= self._n:
            live = self._n - self._lo
            for attr in ("_times", "_values", "_valid"):
                arr = getattr(self, attr)
                arr[:live] = arr[self._lo : self._n].copy()
            self._n = live
            self._lo = 0
        return pruned

    def retained_snapshots(self) -> int:
        return self._n - self._lo


@dataclass
class TickResult:
    """Output of one micro-batch tick.

    ``delta`` holds the output snapshots produced for ``(t_start, t_end]``;
    a tick that could not advance the watermark (not enough input arrived)
    emits an empty delta with ``t_start == t_end``.
    """

    index: int
    t_start: float
    t_end: float
    delta: SSBuf
    events_ingested: int
    num_partitions: int
    elapsed_seconds: float

    @property
    def emitted(self) -> bool:
        return self.t_end > self.t_start

    @property
    def watermark(self) -> float:
        """Output is complete up to this time after the tick."""
        return self.t_end

    @property
    def output_snapshots(self) -> int:
        return len(self.delta)


class StreamingSession:
    """A long-running, incrementally advanced TiLT query.

    Create sessions through :meth:`TiltEngine.open_session`, which shares
    the compiled kernels (per-program compile cache) and the worker pool
    across all sessions of the engine.

    Parameters
    ----------
    engine:
        The owning engine; supplies workers, partitioning policy and the
        shared executor.
    query:
        A :class:`TiltProgram` or pre-compiled :class:`CompiledQuery`.
    sources:
        Pull sources covering every program input (see
        :mod:`repro.datagen.sources` for the protocol).  A scalar source
        named ``s`` feeds input ``s``; a structured source named ``s``
        feeds every ``s.<field>`` input.
    max_events_per_tick:
        Upper bound on events pulled from each source per tick (a bounded
        ingest buffer: anything beyond stays queued in the source —
        backpressure by not polling).  ``None`` defers to each source's own
        arrival rate.
    t_start:
        Optional explicit output start time (defaults to the earliest
        ingested event start, matching ``TiltEngine.run``).
    retain_output:
        Keep every emitted delta so :meth:`result` can assemble the full
        output buffer.  Turn off for indefinitely running sessions, where
        only the per-tick deltas and live metrics are wanted.
    incremental:
        Persist per-kernel window state across ticks (see
        :mod:`repro.core.codegen.incremental`) so tick cost is O(new
        events) instead of O(lookback + new events).  ``None`` (default)
        inherits the engine's ``incremental`` setting (env override
        ``REPRO_INCREMENTAL``).  Interpreted-mode sessions silently fall
        back to full recompute — the reference path is always available.
    trace_attrs:
        Attributes stamped onto every ``session.tick`` span this session
        emits (e.g. ``{"tenant": "alice"}``).  Ignored — at zero cost —
        when the engine's tracer is disabled.
    """

    def __init__(
        self,
        engine: TiltEngine,
        query: Union[TiltProgram, CompiledQuery],
        sources: Sequence[object],
        *,
        max_events_per_tick: Optional[int] = None,
        t_start: Optional[float] = None,
        retain_output: bool = True,
        incremental: Optional[bool] = None,
        trace_attrs: Optional[Dict[str, object]] = None,
    ):
        self._engine = engine
        self._tracer = engine.tracer
        self._trace_attrs = dict(trace_attrs) if trace_attrs else {}
        program, compiled = engine._prepare(query)
        self._program = program
        self._compiled = compiled
        if incremental is None:
            incremental = engine.incremental
        self._state_store: Optional[SessionStateStore] = (
            SessionStateStore(compiled, registry=engine.registry)
            if incremental and compiled is not None
            else None
        )
        self._pins: List[float] = []
        self._boundary = (
            compiled.boundary if compiled is not None else resolve_boundaries(program)
        )
        self._alignment = max((te.tdom.precision for te in program.exprs), default=0.0)
        self._max_events_per_tick = max_events_per_tick
        self._retain_output = retain_output

        self._sources = list(sources)
        if not self._sources:
            raise QueryBuildError("a streaming session needs at least one source")
        self._columns: Dict[str, _IngestColumn] = {}
        self._source_columns: List[Tuple[object, List[_IngestColumn]]] = []
        for src in self._sources:
            cols = []
            for input_name in program.inputs:
                field = None
                if input_name == src.name:
                    field = None
                elif input_name.startswith(src.name + "."):
                    field = input_name.split(".", 1)[1]
                else:
                    continue
                if input_name in self._columns:
                    raise QueryBuildError(
                        f"input {input_name!r} is fed by more than one source"
                    )
                col = _IngestColumn(input_name, field)
                self._columns[input_name] = col
                cols.append(col)
            if not cols:
                raise QueryBuildError(
                    f"source {src.name!r} matches no input of the program "
                    f"(inputs: {list(program.inputs)})"
                )
            self._source_columns.append((src, cols))
        missing = [n for n in program.inputs if n not in self._columns]
        if missing:
            raise ExecutionError(f"no source covers input streams: {missing}")

        self._user_t_start = t_start
        self._t_emit: Optional[float] = None
        self._emitted_any = False
        self._ticks = 0
        self._closed = False
        self._deltas: List[SSBuf] = []
        self._total_partitions = 0
        self._total_events = 0

        # imported lazily: repro.metrics sits above the core layers in the
        # package hierarchy, and importing it at module load time would
        # create an import cycle through repro.apps.
        from ...metrics.streaming import SessionMetrics

        self.metrics = SessionMetrics()
        self.metrics.bind_registry(engine.registry)
        self._m_pruned = engine.registry.counter(
            "repro_pruned_snapshots_total",
            "Carry-over input snapshots retired by watermark pruning",
        )
        self._m_late = engine.registry.counter(
            "repro_late_events_total",
            "Ingest batches rejected for out-of-order/overlapping arrival",
        )
        engine._register_session(self)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def program(self) -> TiltProgram:
        return self._program

    @property
    def boundary(self):
        """Resolved boundary margins governing watermark and carry-over."""
        return self._boundary

    @property
    def watermark(self) -> float:
        """Time through which output has been emitted so far."""
        return -_INF if self._t_emit is None else self._t_emit

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def ticks(self) -> int:
        return self._ticks

    @property
    def incremental(self) -> bool:
        """True when this session persists per-kernel window state."""
        return self._state_store is not None

    def retained_snapshots(self) -> int:
        """Total input snapshots currently held as carry-over state."""
        return sum(col.retained_snapshots() for col in self._columns.values())

    def state_snapshots(self) -> int:
        """Snapshots retained inside incremental kernel state (0 when the
        session runs the full-recompute path)."""
        return 0 if self._state_store is None else self._state_store.retained_snapshots()

    @property
    def exhausted(self) -> bool:
        """True when every source reports exhaustion (finite sources only)."""
        return all(getattr(src, "exhausted", False) for src, _ in self._source_columns)

    # ------------------------------------------------------------------ #
    # the micro-batch loop
    # ------------------------------------------------------------------ #
    def tick(self, max_events: Optional[int] = None) -> TickResult:
        """Ingest newly arrived events and emit the next output delta."""
        if self._closed:
            raise ExecutionError("session is closed")
        with self._tracer.span(
            "session.tick", tick=self._ticks, **self._trace_attrs
        ) as sp:
            started = time.perf_counter()
            ingested = self._ingest(max_events)
            horizon = min(src.horizon for src, _ in self._source_columns)
            t_lo, t_hi, delta, partitions = self._emit(horizon, forced_end=None)
            result = self._finish_tick(started, ingested, t_lo, t_hi, delta, partitions)
            sp.set(
                ingested=ingested,
                emitted=result.emitted,
                output_snapshots=len(delta),
                watermark=t_hi,
            )
            return result

    def close(self, *, drain: bool = True) -> TickResult:
        """Flush the remaining output and end the session.

        With ``drain=True`` (the default) any events the sources still hold
        are ingested first — but only when every source is *finite*: an
        unbounded source can never be drained, so sessions over one skip
        straight to the flush.  The final flush extends to the last ingested
        event — the lookahead margin is waived because no further input can
        arrive, exactly as a batch run's ``t_end`` is the end of its
        (complete) input.
        """
        if self._closed:
            raise ExecutionError("session is already closed")
        with self._tracer.span(
            "session.tick", tick=self._ticks, closing=True, **self._trace_attrs
        ) as sp:
            started = time.perf_counter()
            ingested = 0
            all_finite = all(
                getattr(src, "finite", True) for src, _ in self._source_columns
            )
            if drain and all_finite:
                while not self.exhausted:
                    polled = self._ingest(None)
                    ingested += polled
                    if polled == 0:
                        break
            ends = [c.prev_end for c in self._columns.values() if c.started]
            if not ends:
                self._closed = True
                return self._finish_tick(
                    started, ingested, 0.0, 0.0, SSBuf.empty(0.0), 0
                )
            t_final = max(ends)
            t_lo, t_hi, delta, partitions = self._emit(_INF, forced_end=t_final)
            self._closed = True
            result = self._finish_tick(started, ingested, t_lo, t_hi, delta, partitions)
            sp.set(ingested=ingested, emitted=result.emitted, watermark=t_hi)
            return result

    def abort(self) -> None:
        """Close immediately, skipping the final output flush.

        Unlike :meth:`close` this runs no query work at all, which makes it
        safe to call during teardown (``TiltEngine.close`` aborts any
        sessions still open before shutting down the worker pool).
        Idempotent: aborting a closed session is a no-op.
        """
        self._closed = True

    # ------------------------------------------------------------------ #
    # checkpoint / rewind
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> float:
        """Pin the current watermark so :meth:`rewind` can replay from it.

        While a pin is active, carry-over pruning retains input back to
        ``pin - max_lookback`` (see :meth:`_prune_floor`) — without the pin
        that input would be discarded as dead and a later rewind could not
        reproduce the batch-identical output.  Returns the pinned watermark,
        which doubles as the rewind token.  Pins stack: checkpoint twice,
        release once, and the other pin still holds.
        """
        if self._closed:
            raise ExecutionError("session is closed")
        if self._t_emit is None:
            raise ExecutionError("nothing emitted yet; there is no watermark to pin")
        token = float(self._t_emit)
        self._pins.append(token)
        return token

    def release(self, token: float) -> None:
        """Drop one checkpoint pin, letting pruning advance past it again."""
        try:
            self._pins.remove(token)
        except ValueError:
            raise ExecutionError(f"no active checkpoint at watermark {token:g}")

    def rewind(self, token: float) -> None:
        """Roll the session back to a pinned watermark and replay from there.

        Emitted deltas beyond ``token`` are discarded (a delta straddling it
        is clipped; the clip duplicates the value the replayed output holds
        at ``token`` and is canonically removed by ``compact``), the
        watermark drops to ``token``, and — in incremental mode — all
        persistent kernel state is cleared so the next tick re-ingests from
        the retained carry-over.  The pin stays active until released.
        """
        if self._closed:
            raise ExecutionError("session is closed")
        if token not in self._pins:
            raise ExecutionError(f"no active checkpoint at watermark {token:g}")
        kept: List[SSBuf] = []
        for d in self._deltas:
            if d.start_time >= token:
                continue
            if d.end_time <= token:
                kept.append(d)
                continue
            clipped = d.slice(d.start_time, token)
            if len(clipped):
                kept.append(clipped)
        self._deltas = kept
        self._t_emit = token
        if self._state_store is not None:
            self._state_store.clear()

    def run_to_exhaustion(self, max_ticks: Optional[int] = None) -> List[TickResult]:
        """Tick until every (finite) source is exhausted, then close.

        When the ``max_ticks`` budget runs out first (or a source is
        unbounded), the close flushes what was ingested without trying to
        drain the rest.
        """
        results: List[TickResult] = []
        while not self.exhausted:
            if max_ticks is not None and len(results) >= max_ticks:
                break
            results.append(self.tick())
        results.append(self.close(drain=self.exhausted))
        return results

    def result(self) -> QueryResult:
        """Cumulative result over everything emitted so far.

        Requires ``retain_output=True``.  The assembled buffer is
        byte-identical to what one ``TiltEngine.run`` over the full ingested
        input would have produced.
        """
        if not self._retain_output:
            raise ExecutionError("session was opened with retain_output=False")
        pieces = [d for d in self._deltas if len(d)]
        start = self._session_start() if self._t_emit is None else None
        if pieces:
            output = SSBuf.concat(pieces).compact()
        else:
            output = SSBuf.empty(self._t_emit if self._t_emit is not None else (start or 0.0))
        return QueryResult(
            output=output,
            elapsed_seconds=self.metrics.busy_seconds,
            num_partitions=self._total_partitions,
            workers=self._engine.workers,
            input_events=self._total_events,
            boundary=self._boundary,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ingest(self, max_events: Optional[int]) -> int:
        budget = max_events if max_events is not None else self._max_events_per_tick
        ingested = 0
        with self._tracer.span("tick.ingest") as sp:
            for src, cols in self._source_columns:
                events = src.poll(budget)
                if not events:
                    continue
                try:
                    for col in cols:
                        col.extend(events)
                except OverlappingEventsError:
                    self._m_late.inc(len(events))
                    raise
                ingested += len(events)
            self._total_events += ingested
            sp.set(events=ingested)
        return ingested

    def _session_start(self) -> Optional[float]:
        if self._user_t_start is not None:
            return float(self._user_t_start)
        starts = [c.anchor for c in self._columns.values() if c.started]
        return min(starts) if starts else None

    def _emit(
        self, horizon: float, forced_end: Optional[float]
    ) -> Tuple[float, float, SSBuf, int]:
        # (re-)derive the output start until the first delta is emitted: a
        # late-starting input may still lower it (its events are guaranteed
        # to arrive before any emittable watermark reaches them).
        if not self._emitted_any:
            start = self._session_start()
            if start is None:
                return (0.0, 0.0, SSBuf.empty(0.0), 0)
            self._t_emit = start
        assert self._t_emit is not None
        if forced_end is not None:
            w = forced_end
        else:
            w = horizon - self._boundary.max_lookahead
            if w < _INF and self._alignment > 0:
                w = float(np.floor(w / self._alignment) * self._alignment)
        if not (w > self._t_emit) or w == _INF:
            return (self._t_emit, self._t_emit, SSBuf.empty(self._t_emit), 0)

        with self._tracer.span("tick.emit", t_start=self._t_emit, t_end=w):
            inputs = {name: col.materialize() for name, col in self._columns.items()}
            if self._state_store is not None:
                # incremental path: one in-process evaluation of (t_emit, w]
                # against persistent per-kernel state — no partitioner, no
                # executor, no O(lookback) index rebuilds.
                with self._tracer.span("emit.incremental") as sp:
                    piece = self._run_incremental(inputs, self._t_emit, w)
                    sp.set(state_snapshots=self._state_store.retained_snapshots())
                delta = SSBuf.concat([piece]).compact() if len(piece) else SSBuf.empty(self._t_emit)
                num_partitions = 1
            else:
                with self._tracer.span("emit.plan") as sp:
                    partitions = self._engine._partition(
                        inputs, self._boundary, self._t_emit, w, self._alignment
                    )
                    sp.set(partitions=len(partitions))
                # single dispatch point shared with TiltEngine.run: picks the
                # engine's worker pool, ships picklable compiled queries to
                # the process backend, and falls back to threads otherwise.
                pieces = self._engine._map_partitions(
                    self._compiled, self._program, self._boundary, partitions
                )
                delta = SSBuf.concat(pieces).compact() if pieces else SSBuf.empty(self._t_emit)
                num_partitions = len(partitions)
            t_lo = self._t_emit
            # retain the delta *before* advancing the watermark: a concurrent
            # reader of result() then sees at worst a one-tick-stale output,
            # never an output stamped complete through a watermark whose
            # delta is missing.
            if self._retain_output and len(delta):
                self._deltas.append(delta)
            self._t_emit = w
            self._emitted_any = True
            # carry-over: every future partition reads input no earlier than
            # (new watermark - max lookback); older snapshots are dead —
            # unless a checkpoint pin or an incremental site's ingest horizon
            # still needs them (see _prune_floor).
            with self._tracer.span("emit.prune") as sp:
                prune_to = self._prune_floor(w)
                pruned = 0
                for col in self._columns.values():
                    pruned += col.prune(prune_to)
                if self._state_store is not None:
                    self._state_store.prune(prune_to)
                if pruned:
                    self._m_pruned.inc(pruned)
                sp.set(pruned=pruned, floor=prune_to)
        return (t_lo, w, delta, num_partitions)

    def _prune_floor(self, w: float) -> float:
        """Oldest input time the carry-over must retain after emitting ``w``.

        The naive rule ``w - max_lookback`` is correct only for stateless
        full-recompute sessions.  Two things can hold input alive longer:

        * an active checkpoint pin (a :meth:`rewind` may re-emit from the
          pinned watermark, whose partitions read back to
          ``pin - max_lookback``);
        * incremental kernel state whose ingest horizon trails the
          watermark — input newer than a site's ``ingested_through`` has not
          been consumed into any persistent index yet, so discarding it
          would silently corrupt every later window crossing the gap.
        """
        floor = w
        if self._pins:
            floor = min(floor, min(self._pins))
        floor -= self._boundary.max_lookback
        if self._state_store is not None:
            floor = min(floor, self._state_store.ingested_floor())
        return floor

    def _run_incremental(self, inputs: Dict[str, SSBuf], t_start: float, t_end: float) -> SSBuf:
        """Evaluate ``(t_start, t_end]`` against the persistent state store.

        The output kernel runs over the *unsliced* carry-over buffers with a
        session-private :class:`IncrementalKernelRuntime`, so its reductions
        over program inputs extend persistent indices by exactly the new
        tail (the buffers must be unsliced: sites may only ever ingest true
        input snapshots, never slice-clipped phantoms).  In an unfused query
        the intermediate kernels are rebuilt each tick over their margin
        window from margin slices of the inputs — byte-identical to the
        single-partition batch materialization — so flat-in-lookback tick
        cost requires the (default) fusion to a single kernel.
        """
        compiled = self._compiled
        assert compiled is not None and self._state_store is not None
        output = compiled.output
        if len(compiled.kernels) == 1:
            kernel = compiled.kernels[0]
            return kernel.run(
                inputs, t_start, t_end, runtime=self._state_store.runtime_for(kernel)
            )
        lookback = self._boundary.max_lookback
        lookahead = self._boundary.max_lookahead
        ienv: Dict[str, SSBuf] = {}
        for name, buf in inputs.items():
            in_lo, in_hi = self._boundary.input_interval(name, t_start, t_end)
            ienv[name] = buf.slice(in_lo, in_hi)
        env = dict(inputs)
        for kernel in compiled.kernels:
            if kernel.name == output:
                continue
            piece = kernel.run(ienv, t_start - lookback, t_end + lookahead)
            ienv[kernel.name] = piece
            env[kernel.name] = piece
        kernel = compiled.kernel_named(output)
        return kernel.run(env, t_start, t_end, runtime=self._state_store.runtime_for(kernel))

    def _finish_tick(
        self,
        started: float,
        ingested: int,
        t_lo: float,
        t_hi: float,
        delta: SSBuf,
        partitions: int,
    ) -> TickResult:
        elapsed = time.perf_counter() - started
        self._ticks += 1
        self._total_partitions += partitions
        result = TickResult(
            index=self._ticks - 1,
            t_start=t_lo,
            t_end=t_hi,
            delta=delta,
            events_ingested=ingested,
            num_partitions=partitions,
            elapsed_seconds=elapsed,
        )
        self.metrics.record_tick(
            input_events=ingested,
            output_snapshots=len(delta),
            seconds=elapsed,
            emitted=result.emitted,
        )
        return result

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, *exc) -> None:
        if not self._closed:
            self.close(drain=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"watermark={self.watermark:g}"
        return (
            f"StreamingSession({self._program.output!r}, ticks={self._ticks}, {state})"
        )
