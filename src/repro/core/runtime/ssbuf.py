"""Snapshot buffers (SSBuf): the physical representation of temporal objects.

Section 6.1.1 of the paper: a temporal object conceptually defines a value at
*every* point in time, but physically TiLT only stores the *changes* of that
value.  A snapshot buffer is an ordered sequence of snapshots
``(timestamp, value)`` where the snapshot with timestamp ``t_i`` records the
value held over the half-open interval ``(t_{i-1}, t_i]`` (``t_{-1}`` is the
buffer's ``start_time``).  Gaps in the stream are explicit snapshots whose
value is the null value φ (represented here by a ``False`` entry in the
validity mask).

Example (Figure 5 of the paper)::

    events:   a over (5, 10],   b over (16, 23],   c over (30, 35]
    SSBuf:    (5, φ) (10, a) (16, φ) (23, b) (30, φ) (35, c)

The buffer stores three parallel NumPy arrays (``times``, ``values``,
``valid``) so that the code-generated kernels can operate on it without any
per-snapshot Python overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import OverlappingEventsError, QueryBuildError
from .stream import Event, EventStream

__all__ = ["Snapshot", "SSBuf", "ssbuf_from_stream", "ssbufs_from_stream"]


@dataclass(frozen=True)
class Snapshot:
    """A single change point of a temporal object.

    ``value`` holds over the interval ``(previous timestamp, time]``.  When
    ``valid`` is False the temporal object is φ (null) over that interval and
    ``value`` is meaningless.
    """

    time: float
    value: float
    valid: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.time:g}, {self.value:g})" if self.valid else f"({self.time:g}, φ)"


class SSBuf:
    """An ordered snapshot buffer over a bounded time range.

    Parameters
    ----------
    times:
        Strictly increasing snapshot end-timestamps.
    values:
        Snapshot values (float64).  Entries where ``valid`` is False are
        ignored.
    valid:
        Validity mask; False marks a φ (null) snapshot.
    start_time:
        Time at which the first snapshot's interval begins.  Values before
        ``start_time`` are undefined (treated as φ).
    """

    def __init__(
        self,
        times: Sequence[float],
        values: Sequence[float],
        valid: Optional[Sequence[bool]] = None,
        start_time: Optional[float] = None,
    ):
        self.times = np.asarray(times, dtype=np.float64)
        self.values = np.asarray(values, dtype=np.float64)
        if valid is None:
            self.valid = np.ones(len(self.times), dtype=bool)
        else:
            self.valid = np.asarray(valid, dtype=bool)
        if not (len(self.times) == len(self.values) == len(self.valid)):
            raise QueryBuildError("times, values and valid must have equal length")
        if len(self.times) > 1 and not np.all(np.diff(self.times) > 0):
            raise QueryBuildError("snapshot timestamps must be strictly increasing")
        if start_time is None:
            start_time = float(self.times[0]) if len(self.times) else 0.0
            # by convention an auto-derived start leaves no room before the
            # first snapshot, i.e. the first snapshot interval is empty unless
            # the caller provided an explicit earlier start.
            start_time = min(start_time, float(self.times[0]) - 0.0) if len(self.times) else 0.0
        self.start_time = float(start_time)
        if len(self.times) and self.start_time > self.times[0]:
            raise QueryBuildError("start_time must not exceed the first snapshot timestamp")

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        # Serialized as the three raw NumPy arrays plus the start time, and
        # reconstructed without re-validation: the arrays of a live buffer
        # are already ordered/equal-length, and skipping the checks keeps
        # process-parallel partition transfer cheap.
        return (_ssbuf_from_arrays, (self.times, self.values, self.valid, self.start_time))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, start_time: float = 0.0) -> "SSBuf":
        """An SSBuf with no snapshots (φ everywhere)."""
        return cls(np.empty(0), np.empty(0), np.empty(0, dtype=bool), start_time=start_time)

    @classmethod
    def from_events(
        cls,
        events: Iterable[Event],
        *,
        field: Optional[str] = None,
        on_overlap: str = "error",
        start_time: Optional[float] = None,
    ) -> "SSBuf":
        """Convert an in-order sequence of events to change-point form.

        Gaps between events become φ snapshots.  Overlapping events either
        raise :class:`OverlappingEventsError` (``on_overlap='error'``) or are
        resolved by letting the most recently started event win
        (``on_overlap='last'``), which is the list/map flattening strategy
        mentioned in Section 6.1.1 reduced to a single representative value.

        The streaming session's ingest columns
        (:class:`repro.core.runtime.session._IngestColumn`) build the same
        change-point form incrementally; any edit to the non-overlapping
        construction here must be mirrored there, or tick-by-tick ingestion
        stops being prefix-identical to batch ingestion.
        """
        evs = list(events)
        if not evs:
            return cls.empty(start_time if start_time is not None else 0.0)

        def payload(e: Event) -> float:
            return e.field(field) if field is not None else e.value()

        if on_overlap not in ("error", "last"):
            raise QueryBuildError(f"unknown overlap policy {on_overlap!r}")

        has_overlap = any(evs[i + 1].start < evs[i].end for i in range(len(evs) - 1))
        if has_overlap and on_overlap == "error":
            raise OverlappingEventsError(
                "events have overlapping validity intervals; pass on_overlap='last'"
            )

        first_start = evs[0].start
        buf_start = first_start if start_time is None else min(start_time, first_start)

        if not has_overlap:
            times: List[float] = []
            values: List[float] = []
            valid: List[bool] = []
            if buf_start < first_start:
                times.append(first_start)
                values.append(0.0)
                valid.append(False)
            prev_end = first_start
            for e in evs:
                if e.start > prev_end:
                    times.append(e.start)
                    values.append(0.0)
                    valid.append(False)
                times.append(e.end)
                values.append(payload(e))
                valid.append(True)
                prev_end = e.end
            return cls(times, values, valid, start_time=buf_start)

        # Overlap resolution via a boundary sweep: the most recently started
        # active event provides the value of each elementary interval.
        bounds = sorted({b for e in evs for b in (e.start, e.end)})
        starts = np.array([e.start for e in evs])
        ends = np.array([e.end for e in evs])
        vals = np.array([payload(e) for e in evs])
        times_l: List[float] = []
        values_l: List[float] = []
        valid_l: List[bool] = []
        if buf_start < bounds[0]:
            times_l.append(bounds[0])
            values_l.append(0.0)
            valid_l.append(False)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            active = np.nonzero((starts < hi) & (ends >= hi) & (starts <= lo))[0]
            if len(active):
                winner = active[np.argmax(starts[active])]
                times_l.append(hi)
                values_l.append(float(vals[winner]))
                valid_l.append(True)
            else:
                times_l.append(hi)
                values_l.append(0.0)
                valid_l.append(False)
        buf = cls(times_l, values_l, valid_l, start_time=buf_start)
        return buf.compact()

    @classmethod
    def constant(cls, value: float, start: float, end: float) -> "SSBuf":
        """A buffer holding ``value`` over the whole interval ``(start, end]``."""
        return cls([end], [value], [True], start_time=start)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Snapshot]:
        for t, v, ok in zip(self.times, self.values, self.valid):
            yield Snapshot(float(t), float(v), bool(ok))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = " ".join(repr(s) for s in list(self)[:8])
        more = " ..." if len(self) > 8 else ""
        return f"SSBuf(start={self.start_time:g}, [{inner}{more}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SSBuf):
            return NotImplemented
        if len(self) != len(other) or self.start_time != other.start_time:
            return False
        if not np.array_equal(self.times, other.times):
            return False
        if not np.array_equal(self.valid, other.valid):
            return False
        return bool(np.allclose(self.values[self.valid], other.values[other.valid]))

    @property
    def end_time(self) -> float:
        """Timestamp of the last snapshot (== ``start_time`` when empty)."""
        return float(self.times[-1]) if len(self.times) else self.start_time

    @property
    def interval_starts(self) -> np.ndarray:
        """Start of every snapshot interval: ``[start_time, times[:-1]...]``."""
        if not len(self.times):
            return np.empty(0)
        return np.concatenate(([self.start_time], self.times[:-1]))

    def num_valid(self) -> int:
        """Number of non-φ snapshots."""
        return int(np.count_nonzero(self.valid))

    def snapshots(self) -> List[Snapshot]:
        """Materialize the snapshots as a Python list."""
        return list(self)

    # ------------------------------------------------------------------ #
    # point and range queries
    # ------------------------------------------------------------------ #
    def index_at(self, t: float) -> int:
        """Index of the snapshot whose interval contains ``t`` (-1 if none)."""
        if not len(self.times) or t <= self.start_time or t > self.times[-1]:
            return -1
        return int(np.searchsorted(self.times, t, side="left"))

    def value_at(self, t: float) -> Tuple[float, bool]:
        """Value and validity of the temporal object at time ``t``."""
        idx = self.index_at(t)
        if idx < 0 or not self.valid[idx]:
            return (0.0, False)
        return (float(self.values[idx]), True)

    def values_at(self, ts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`value_at` over an array of query times."""
        ts = np.asarray(ts, dtype=np.float64)
        if not len(self.times):
            return np.zeros(len(ts)), np.zeros(len(ts), dtype=bool)
        idx = np.searchsorted(self.times, ts, side="left")
        in_range = (ts > self.start_time) & (ts <= self.times[-1])
        idx_c = np.clip(idx, 0, len(self.times) - 1)
        vals = self.values[idx_c]
        ok = in_range & self.valid[idx_c]
        return np.where(ok, vals, 0.0), ok

    def change_times_in(self, start: float, end: float) -> np.ndarray:
        """Snapshot timestamps lying inside ``(start, end]``."""
        lo = np.searchsorted(self.times, start, side="right")
        hi = np.searchsorted(self.times, end, side="right")
        return self.times[lo:hi]

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def slice(self, start: float, end: float) -> "SSBuf":
        """Restrict the buffer to the interval ``(start, end]``.

        Used by the partitioner (Section 6.2): each worker receives a slice of
        the input SSBuf extended backwards by the resolved lookback margin.

        Slicing is *stable under pruning*, which the streaming session layer
        depends on for its carry-over state: for any ``t <= start``,
        ``buf.slice(t, buf.end_time).slice(start, end) == buf.slice(start, end)``.
        A snapshot spanning the cut point is kept whole (only its implicit
        interval start moves, via ``start_time``), so pruning a buffer to
        ``(t, ·]`` between micro-batch ticks never changes any later slice
        that starts at or after ``t`` — retained tails produce byte-identical
        partitions to the full stream.  A snapshot spanning ``end`` is
        clipped to ``end`` (keeping its value), so a slice always covers its
        whole interval.
        """
        if end <= start:
            return SSBuf.empty(start)
        start = max(start, self.start_time)
        if not len(self.times) or start >= self.times[-1]:
            return SSBuf.empty(start)
        lo = int(np.searchsorted(self.times, start, side="right"))
        hi = int(np.searchsorted(self.times, end, side="right"))
        times = list(self.times[lo:hi])
        values = list(self.values[lo:hi])
        valid = list(self.valid[lo:hi])
        if hi < len(self.times) and (not times or times[-1] < end):
            # the snapshot at index `hi` spans past `end`; clip it.
            times.append(end)
            values.append(float(self.values[hi]))
            valid.append(bool(self.valid[hi]))
        return SSBuf(times, values, valid, start_time=start)

    def shift(self, dt: float) -> "SSBuf":
        """Shift the buffer forward in time by ``dt`` seconds.

        The shifted object at time ``t`` has the value this object had at
        ``t - dt`` — the semantics of the ``Shift`` operator used by the RSI,
        imputation, resampling and fraud-detection queries.
        """
        return SSBuf(self.times + dt, self.values.copy(), self.valid.copy(), self.start_time + dt)

    def compact(self) -> "SSBuf":
        """Merge adjacent snapshots that hold identical values.

        Compaction keeps the *last* snapshot of every maximal run of equal
        values, which makes it a canonical form: compacting concatenated
        pieces gives the same result whether or not the pieces were
        compacted individually.  The engine and the streaming session both
        rely on this — partition edges and tick edges introduce snapshot
        boundaries carrying the value the output already holds, and
        compaction erases exactly those, so per-tick deltas concatenate to
        the same bytes as a one-shot run.
        """
        if len(self.times) <= 1:
            return self
        keep = np.ones(len(self.times), dtype=bool)
        for i in range(len(self.times) - 1):
            same_validity = self.valid[i] == self.valid[i + 1]
            same_value = (not self.valid[i]) or self.values[i] == self.values[i + 1]
            if same_validity and same_value:
                keep[i] = False
        return SSBuf(
            self.times[keep], self.values[keep], self.valid[keep], start_time=self.start_time
        )

    def map_values(self, fn) -> "SSBuf":
        """Apply ``fn`` to every valid snapshot value (φ snapshots unchanged)."""
        vals = self.values.copy()
        vals[self.valid] = np.array([fn(v) for v in self.values[self.valid]], dtype=np.float64)
        return SSBuf(self.times.copy(), vals, self.valid.copy(), start_time=self.start_time)

    def to_events(self, compact: bool = True) -> List[Event]:
        """Convert back to a list of events (dropping φ snapshots)."""
        buf = self.compact() if compact else self
        events: List[Event] = []
        starts = buf.interval_starts
        for i in range(len(buf.times)):
            if buf.valid[i] and buf.times[i] > starts[i]:
                events.append(Event(float(starts[i]), float(buf.times[i]), float(buf.values[i])))
        return events

    def to_stream(self, name: str = "stream") -> EventStream:
        """Convert back to an :class:`EventStream`."""
        return EventStream(self.to_events(), name=name, check_order=False)

    # ------------------------------------------------------------------ #
    # combination helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def merged_change_times(bufs: Sequence["SSBuf"], start: float, end: float) -> np.ndarray:
        """Union of the change timestamps of several buffers inside ``(start, end]``.

        This is the grid on which a fused temporal expression must be
        evaluated: the output can only change when one of its inputs changes
        (the invariant exploited by loop synthesis in Section 6.1.3).
        """
        pieces = [b.change_times_in(start, end) for b in bufs]
        pieces = [p for p in pieces if len(p)]
        if not pieces:
            return np.empty(0)
        return np.unique(np.concatenate(pieces))

    @staticmethod
    def concat(parts: Sequence["SSBuf"]) -> "SSBuf":
        """Concatenate partition results back into one buffer (in time order)."""
        parts = [p for p in parts if len(p)]
        if not parts:
            return SSBuf.empty()
        parts = sorted(parts, key=lambda b: b.start_time)
        times = np.concatenate([p.times for p in parts])
        values = np.concatenate([p.values for p in parts])
        valid = np.concatenate([p.valid for p in parts])
        order = np.argsort(times, kind="mergesort")
        times, values, valid = times[order], values[order], valid[order]
        uniq = np.ones(len(times), dtype=bool)
        uniq[1:] = np.diff(times) > 0
        return SSBuf(times[uniq], values[uniq], valid[uniq], start_time=parts[0].start_time)


def _ssbuf_from_arrays(times, values, valid, start_time) -> "SSBuf":
    """Unpickle hook: rebuild an :class:`SSBuf` from its raw arrays without
    re-running constructor validation (see :meth:`SSBuf.__reduce__`)."""
    buf = SSBuf.__new__(SSBuf)
    buf.times = times
    buf.values = values
    buf.valid = valid
    buf.start_time = start_time
    return buf


def ssbuf_from_stream(
    stream: EventStream,
    field: Optional[str] = None,
    on_overlap: str = "error",
) -> SSBuf:
    """Convert an :class:`EventStream` (or one field of it) to an :class:`SSBuf`."""
    return SSBuf.from_events(stream.events, field=field, on_overlap=on_overlap)


def ssbufs_from_stream(stream: EventStream, on_overlap: str = "error") -> Dict[str, SSBuf]:
    """Convert a structured stream into one SSBuf per payload field.

    Scalar streams produce a single entry keyed by the stream name.
    """
    if not stream.is_structured:
        return {stream.name: ssbuf_from_stream(stream, on_overlap=on_overlap)}
    return {
        f"{stream.name}.{field}": ssbuf_from_stream(stream, field=field, on_overlap=on_overlap)
        for field in stream.fields()
    }
