"""Event streams: the ingress data model.

A data stream is an ordered, unbounded sequence of *events*.  Following the
paper (Section 2), every event carries a payload and a validity interval
``(start, end]``.  Payloads are either a single float or a flat mapping of
field name to float (a "struct" payload); structured streams are decomposed
into one column per field before they reach the TiLT runtime.

The classes here are deliberately simple containers: all heavy lifting
(change-point conversion, windowing, partitioning) happens on
:class:`~repro.core.runtime.ssbuf.SSBuf`, the snapshot-buffer representation
described in Section 6.1.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ...errors import QueryBuildError, StreamOrderError

Payload = Union[float, int, Mapping[str, float]]


@dataclass(frozen=True)
class Event:
    """A single stream event.

    Attributes
    ----------
    start:
        Exclusive start of the validity interval.
    end:
        Inclusive end of the validity interval.  ``end`` must be strictly
        greater than ``start``.
    payload:
        Either a scalar (float/int) or a flat mapping of field names to
        scalars for structured streams.
    """

    start: float
    end: float
    payload: Payload

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise QueryBuildError(
                f"event interval must satisfy end > start, got ({self.start}, {self.end}]"
            )

    @property
    def duration(self) -> float:
        """Length of the validity interval."""
        return self.end - self.start

    def field(self, name: str) -> float:
        """Return a named field of a structured payload."""
        if not isinstance(self.payload, Mapping):
            raise QueryBuildError(f"event payload is scalar; field {name!r} does not exist")
        return float(self.payload[name])

    def value(self) -> float:
        """Return the scalar payload value."""
        if isinstance(self.payload, Mapping):
            raise QueryBuildError("event payload is structured; use .field(name)")
        return float(self.payload)


class EventStream:
    """An in-order, bounded slice of an event stream.

    The stream keeps its events sorted by start time.  Helper constructors
    build streams from arrays (the common case for synthetic data generators)
    or from point samples of a fixed-frequency signal.
    """

    def __init__(self, events: Sequence[Event], name: str = "stream", *, check_order: bool = True):
        self.name = name
        self._events: List[Event] = list(events)
        if check_order:
            self._check_order()

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        starts: Sequence[float],
        ends: Sequence[float],
        values: Sequence[Payload],
        name: str = "stream",
    ) -> "EventStream":
        """Build a stream from parallel arrays of starts, ends and payloads."""
        starts = list(starts)
        ends = list(ends)
        values = list(values)
        if not (len(starts) == len(ends) == len(values)):
            raise QueryBuildError("starts, ends and values must have equal length")
        events = [Event(float(s), float(e), v) for s, e, v in zip(starts, ends, values)]
        return cls(events, name=name)

    @classmethod
    def from_samples(
        cls,
        values: Sequence[Payload],
        period: float = 1.0,
        start: float = 0.0,
        name: str = "stream",
    ) -> "EventStream":
        """Build a fixed-frequency signal stream.

        Sample ``i`` becomes an event valid over
        ``(start + i*period, start + (i+1)*period]`` — the representation used
        for the 1000 Hz synthetic signals and the ECG/vibration waveforms in
        the paper's benchmark suite.
        """
        events = [
            Event(start + i * period, start + (i + 1) * period, v)
            for i, v in enumerate(values)
        ]
        return cls(events, name=name, check_order=False)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, idx: int) -> Event:
        return self._events[idx]

    @property
    def events(self) -> List[Event]:
        """The underlying event list (do not mutate)."""
        return self._events

    @property
    def is_structured(self) -> bool:
        """True when payloads are field mappings rather than scalars."""
        return bool(self._events) and isinstance(self._events[0].payload, Mapping)

    def fields(self) -> List[str]:
        """Field names of a structured stream (empty for scalar streams)."""
        if not self.is_structured:
            return []
        return list(self._events[0].payload.keys())  # type: ignore[union-attr]

    def time_range(self) -> Tuple[float, float]:
        """Return ``(min start, max end)`` over all events."""
        if not self._events:
            return (0.0, 0.0)
        return (self._events[0].start, max(e.end for e in self._events))

    def starts(self) -> np.ndarray:
        """Event start times as a float64 array."""
        return np.array([e.start for e in self._events], dtype=np.float64)

    def ends(self) -> np.ndarray:
        """Event end times as a float64 array."""
        return np.array([e.end for e in self._events], dtype=np.float64)

    def values(self, field: Optional[str] = None) -> np.ndarray:
        """Scalar payloads (or one field of structured payloads) as float64."""
        if field is None:
            return np.array([e.value() for e in self._events], dtype=np.float64)
        return np.array([e.field(field) for e in self._events], dtype=np.float64)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def select_field(self, field: str, name: Optional[str] = None) -> "EventStream":
        """Project a structured stream onto a single scalar field."""
        events = [Event(e.start, e.end, e.field(field)) for e in self._events]
        return EventStream(events, name=name or f"{self.name}.{field}", check_order=False)

    def filter(self, predicate) -> "EventStream":
        """Return a new stream with only the events satisfying ``predicate``."""
        return EventStream(
            [e for e in self._events if predicate(e)], name=self.name, check_order=False
        )

    def slice_time(self, start: float, end: float) -> "EventStream":
        """Events whose interval intersects ``(start, end]``."""
        kept = [e for e in self._events if e.end > start and e.start < end]
        return EventStream(kept, name=self.name, check_order=False)

    def partition_by(self, key_field: str) -> Dict[float, "EventStream"]:
        """Split a structured stream into per-key sub-streams.

        This models the partitioned-stream parallelism that the paper notes
        is the *only* parallelization option in Trill-like engines.
        """
        groups: Dict[float, List[Event]] = {}
        for e in self._events:
            groups.setdefault(e.field(key_field), []).append(e)
        return {
            k: EventStream(v, name=f"{self.name}[{key_field}={k}]", check_order=False)
            for k, v in groups.items()
        }

    def concat(self, other: "EventStream") -> "EventStream":
        """Concatenate two streams and re-sort by start time."""
        merged = sorted(self._events + other._events, key=lambda e: (e.start, e.end))
        return EventStream(merged, name=self.name, check_order=False)

    # ------------------------------------------------------------------ #
    # internal helpers
    # ------------------------------------------------------------------ #
    def _check_order(self) -> None:
        prev = -np.inf
        for e in self._events:
            if e.start < prev:
                raise StreamOrderError(
                    f"stream {self.name!r}: event starting at {e.start} arrived after {prev}"
                )
            prev = e.start


def interleave(streams: Iterable[EventStream], name: str = "interleaved") -> EventStream:
    """Merge several in-order streams into one in-order stream."""
    events: List[Event] = []
    for s in streams:
        events.extend(s.events)
    events.sort(key=lambda e: (e.start, e.end))
    return EventStream(events, name=name, check_order=False)
