"""Synthetic data generators standing in for the paper's datasets."""

from .generators import (
    credit_card_stream,
    ecg_stream,
    random_signal_stream,
    stock_price_stream,
    uniform_value_stream,
    vibration_stream,
    ysb_stream,
)

__all__ = [
    "stock_price_stream",
    "random_signal_stream",
    "ecg_stream",
    "vibration_stream",
    "credit_card_stream",
    "ysb_stream",
    "uniform_value_stream",
]
