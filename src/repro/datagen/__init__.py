"""Synthetic data generators and unbounded sources for streaming sessions."""

from .generators import (
    credit_card_stream,
    ecg_stream,
    random_signal_stream,
    stock_price_stream,
    uniform_value_stream,
    vibration_stream,
    ysb_stream,
)
from .sources import (
    BoundedIngestQueue,
    EventSource,
    GeneratorSource,
    QueuedSource,
    StreamReplaySource,
    ThrottledSource,
    sources_for_streams,
)

__all__ = [
    "stock_price_stream",
    "random_signal_stream",
    "ecg_stream",
    "vibration_stream",
    "credit_card_stream",
    "ysb_stream",
    "uniform_value_stream",
    "EventSource",
    "StreamReplaySource",
    "GeneratorSource",
    "ThrottledSource",
    "BoundedIngestQueue",
    "QueuedSource",
    "sources_for_streams",
]
