"""Synthetic data generators.

The paper evaluates on NYSE stock ticks, a synthetic 1000 Hz signal, MIMIC-III
ECG waveforms, bearing-vibration recordings, Kaggle credit-card transactions
and the Yahoo Streaming Benchmark ad events.  None of those datasets can be
redistributed here, so each generator below produces a synthetic stream with
the same schema, rate and the statistical features its query exploits (the
paper's own artifact does the same: "results on the synthetic data set should
be comparable to the results on the real data set").

All generators are deterministic given a seed and return
:class:`~repro.core.runtime.stream.EventStream` objects ready to feed any of
the engines.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..core.runtime.stream import Event, EventStream

__all__ = [
    "stock_price_stream",
    "random_signal_stream",
    "ecg_stream",
    "vibration_stream",
    "credit_card_stream",
    "ysb_stream",
    "uniform_value_stream",
]


def stock_price_stream(
    num_events: int,
    *,
    seed: int = 7,
    start_price: float = 100.0,
    volatility: float = 0.5,
    tick_period: float = 1.0,
    drift: float = 0.01,
    name: str = "stock",
) -> EventStream:
    """Synthetic stock tick stream (stand-in for the NYSE feed).

    A geometric-random-walk price sampled every ``tick_period`` seconds with
    a small upward drift, so trend/RSI queries see realistic alternations of
    up- and down-trends.
    """
    rng = np.random.default_rng(seed)
    steps = rng.normal(drift, volatility, num_events)
    prices = start_price + np.cumsum(steps)
    prices = np.maximum(prices, 1.0)
    return EventStream.from_samples(prices, period=tick_period, name=name)


def random_signal_stream(
    num_events: int,
    *,
    seed: int = 11,
    frequency_hz: float = 1000.0,
    scale: float = 10.0,
    offset: float = 0.0,
    missing_fraction: float = 0.0,
    name: str = "signal",
) -> EventStream:
    """Random floating-point signal at a fixed frequency (default 1000 Hz).

    This is the synthetic dataset of Table 2 used by the normalization,
    imputation and resampling queries.  ``missing_fraction`` drops a fraction
    of the samples to create the gaps the imputation query fills.
    """
    rng = np.random.default_rng(seed)
    period = 1.0 / frequency_hz
    values = offset + scale * rng.standard_normal(num_events)
    if missing_fraction <= 0:
        return EventStream.from_samples(values, period=period, name=name)
    keep = rng.random(num_events) >= missing_fraction
    events = [
        Event(i * period, (i + 1) * period, float(v))
        for i, (v, k) in enumerate(zip(values, keep))
        if k
    ]
    return EventStream(events, name=name, check_order=False)


def ecg_stream(
    num_events: int,
    *,
    seed: int = 13,
    frequency_hz: float = 125.0,
    heart_rate_bpm: float = 72.0,
    noise: float = 0.03,
    name: str = "ecg",
) -> EventStream:
    """Synthetic ECG waveform with QRS complexes (stand-in for MIMIC-III).

    The waveform is a periodic sum of Gaussians approximating the P, QRS and
    T features of a heartbeat plus white noise; the Pan-Tompkins query's job
    is to locate the R peaks, so the essential property is a sharp dominant
    QRS spike per beat — which this generator provides.
    """
    rng = np.random.default_rng(seed)
    period = 1.0 / frequency_hz
    beat_period = 60.0 / heart_rate_bpm
    t = np.arange(num_events) * period
    phase = np.mod(t, beat_period) / beat_period

    def gaussian(center: float, width: float, amplitude: float) -> np.ndarray:
        return amplitude * np.exp(-((phase - center) ** 2) / (2 * width ** 2))

    wave = (
        gaussian(0.18, 0.025, 0.15)    # P wave
        + gaussian(0.295, 0.012, -0.12)  # Q dip
        + gaussian(0.31, 0.014, 1.0)     # R spike
        + gaussian(0.325, 0.012, -0.18)  # S dip
        + gaussian(0.50, 0.045, 0.30)    # T wave
    )
    wave = wave + noise * rng.standard_normal(num_events)
    return EventStream.from_samples(wave, period=period, name=name)


def vibration_stream(
    num_events: int,
    *,
    seed: int = 17,
    frequency_hz: float = 10_000.0,
    rotation_hz: float = 30.0,
    fault_impulse_every: float = 0.085,
    fault_amplitude: float = 9.0,
    noise: float = 0.3,
    name: str = "vibration",
) -> EventStream:
    """Synthetic bearing-vibration signal (stand-in for the bearing dataset).

    A base sinusoid at the shaft rotation frequency plus periodic high-energy
    fault impulses and broadband noise.  Kurtosis / RMS / crest-factor
    windows (the vibration-analysis query) respond strongly to the impulses,
    which is the behaviour the real dataset exhibits for a faulty bearing.
    """
    rng = np.random.default_rng(seed)
    period = 1.0 / frequency_hz
    t = np.arange(num_events) * period
    base = np.sin(2 * math.pi * rotation_hz * t) + 0.4 * np.sin(2 * math.pi * 2 * rotation_hz * t)
    impulses = np.zeros(num_events)
    impulse_phase = np.mod(t, fault_impulse_every)
    impulse_mask = impulse_phase < (3 * period)
    impulses[impulse_mask] = fault_amplitude * np.exp(
        -impulse_phase[impulse_mask] / (1.5 * period)
    )
    wave = base + impulses + noise * rng.standard_normal(num_events)
    return EventStream.from_samples(wave, period=period, name=name)


def credit_card_stream(
    num_events: int,
    *,
    seed: int = 19,
    num_users: int = 50,
    mean_amount: float = 60.0,
    fraud_fraction: float = 0.005,
    fraud_multiplier: float = 20.0,
    mean_interarrival: float = 30.0,
    name: str = "transactions",
) -> EventStream:
    """Synthetic credit-card transaction stream (stand-in for the Kaggle data).

    Structured events with ``user`` and ``amount`` fields.  Amounts are
    log-normal; a small fraction of transactions are inflated by
    ``fraud_multiplier`` so that the μ+3σ rule of the fraud-detection query
    has something to flag.
    """
    rng = np.random.default_rng(seed)
    gaps = np.maximum(rng.exponential(mean_interarrival, num_events), 1e-3)
    starts = np.cumsum(gaps)
    users = rng.integers(0, num_users, num_events)
    amounts = rng.lognormal(mean=math.log(mean_amount), sigma=0.6, size=num_events)
    fraud = rng.random(num_events) < fraud_fraction
    amounts = np.where(fraud, amounts * fraud_multiplier, amounts)
    # a transaction is valid until the next one arrives (capped at 60 s) so
    # that event intervals never overlap.
    next_starts = np.concatenate((starts[1:], [starts[-1] + mean_interarrival]))
    ends = np.minimum(starts + 60.0, next_starts)
    events = [
        Event(
            float(s),
            float(e),
            {"user": float(u), "amount": float(a), "is_fraud": 1.0 if f else 0.0},
        )
        for s, e, u, a, f in zip(starts, ends, users, amounts, fraud)
    ]
    return EventStream(events, name=name, check_order=False)


def ysb_stream(
    num_events: int,
    *,
    seed: int = 23,
    num_campaigns: int = 100,
    events_per_second: float = 10_000.0,
    view_fraction: float = 0.333,
    name: str = "ads",
) -> EventStream:
    """Yahoo Streaming Benchmark ad events.

    Structured events with ``campaign``, ``ad`` and ``event_type`` fields;
    ``event_type`` is 0 = view, 1 = click, 2 = purchase, with roughly one
    third of the events being views (the type the query filters on).
    """
    rng = np.random.default_rng(seed)
    period = 1.0 / events_per_second
    campaigns = rng.integers(0, num_campaigns, num_events)
    ads = rng.integers(0, 10 * num_campaigns, num_events)
    event_types = rng.choice([0.0, 1.0, 2.0], size=num_events,
                             p=[view_fraction, (1 - view_fraction) / 2, (1 - view_fraction) / 2])
    events = [
        Event(
            i * period,
            (i + 1) * period,
            {"campaign": float(c), "ad": float(a), "event_type": float(t)},
        )
        for i, (c, a, t) in enumerate(zip(campaigns, ads, event_types))
    ]
    return EventStream(events, name=name, check_order=False)


def uniform_value_stream(
    num_events: int,
    *,
    seed: int = 29,
    low: float = 0.0,
    high: float = 100.0,
    period: float = 1.0,
    name: str = "values",
) -> EventStream:
    """Uniform random scalar stream used by the primitive-operator benchmarks."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(low, high, num_events)
    return EventStream.from_samples(values, period=period, name=name)
