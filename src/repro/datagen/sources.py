"""Pull-based unbounded event sources for continuous streaming sessions.

The generators in :mod:`repro.datagen.generators` produce one finite
:class:`~repro.core.runtime.stream.EventStream` per call — the right shape
for the paper's one-shot throughput experiments, but not for a long-running
session that ingests events forever.  This module adapts them (and arbitrary
event producers) to a small pull protocol consumed by
:class:`~repro.core.runtime.session.StreamingSession`:

* :meth:`EventSource.poll` hands over the next batch of events, in
  start-time order;
* :attr:`EventSource.horizon` is the *completeness watermark*: the source
  guarantees that every event with ``start < horizon`` has already been
  delivered by previous ``poll`` calls.  The session derives its output
  watermark from this (minus the query's lookahead margin), which is what
  makes tick-by-tick output exactly equal to a one-shot batch run;
* :attr:`EventSource.exhausted` is True once a *finite* source has nothing
  left (unbounded sources simply never set it).

Arrival-rate control is the ``events_per_poll`` knob: each session tick
performs one poll per source, so ``events_per_poll`` is the per-tick arrival
batch.  :class:`BoundedIngestQueue` / :class:`QueuedSource` add the push
side: producers (e.g. a network thread) block when the bounded queue fills
up — the simple backpressure of every micro-batch ingest path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

from ..core.runtime.stream import Event, EventStream
from ..errors import QueryBuildError, QueueClosedError

__all__ = [
    "EventSource",
    "StreamReplaySource",
    "GeneratorSource",
    "ThrottledSource",
    "BoundedIngestQueue",
    "QueuedSource",
    "sources_for_streams",
]

_INF = float("inf")


class EventSource:
    """Protocol base class for pull-based event sources.

    Subclasses must deliver events in start-time order and keep
    :attr:`horizon` consistent with what they have delivered: after a
    ``poll``, every event with ``start < horizon`` must already have been
    returned.  (The horizon is *strict*: an event starting exactly at the
    horizon may still be pending.)
    """

    #: stream name; scalar sources must match the program input name, and a
    #: structured source named ``s`` feeds the ``s.<field>`` inputs.
    name: str = "source"

    #: whether this source can ever report :attr:`exhausted`.  Sessions only
    #: drain finite sources on ``close()`` — draining an unbounded source
    #: would never terminate.
    finite: bool = True

    def poll(self, max_events: Optional[int] = None) -> List[Event]:
        """Return the next in-order batch of events (possibly empty)."""
        raise NotImplementedError

    @property
    def horizon(self) -> float:
        """Delivery is complete for all events starting strictly before this."""
        raise NotImplementedError

    @property
    def exhausted(self) -> bool:
        """True when a finite source has delivered everything."""
        return False


class StreamReplaySource(EventSource):
    """Replay a finite :class:`EventStream` as a pull source.

    ``events_per_poll`` simulates the arrival rate: each poll releases at
    most that many events (default: everything that is left).  This is the
    source used by the streaming-equivalence tests — replaying the exact
    dataset of a batch run, tick by tick.
    """

    def __init__(
        self,
        stream: EventStream,
        *,
        name: Optional[str] = None,
        events_per_poll: Optional[int] = None,
    ):
        if events_per_poll is not None and events_per_poll < 1:
            raise QueryBuildError("events_per_poll must be >= 1")
        self.name = name or stream.name
        self._events = list(stream.events)
        self._pos = 0
        self._events_per_poll = events_per_poll

    def poll(self, max_events: Optional[int] = None) -> List[Event]:
        limit = len(self._events) - self._pos
        if self._events_per_poll is not None:
            limit = min(limit, self._events_per_poll)
        if max_events is not None:
            limit = min(limit, max_events)
        if limit <= 0:
            return []
        chunk = self._events[self._pos : self._pos + limit]
        self._pos += limit
        return chunk

    @property
    def horizon(self) -> float:
        if self._pos >= len(self._events):
            return _INF
        return self._events[self._pos].start

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._events)


class GeneratorSource(EventSource):
    """Unbounded source stitched from successive generator chunks.

    ``make_chunk(i)`` must return the ``i``-th finite chunk as an
    :class:`EventStream` whose time axis starts at (or near) zero — exactly
    what the :mod:`repro.datagen.generators` produce.  Each chunk is shifted
    forward by the cumulative span of the previous chunks, so the stitched
    stream is contiguous and unbounded::

        src = GeneratorSource(lambda i: stock_price_stream(10_000, seed=i),
                              name="stock", events_per_poll=2_000)

    Varying the seed with the chunk index keeps the data non-repeating while
    staying fully deterministic.
    """

    finite = False

    def __init__(
        self,
        make_chunk: Callable[[int], EventStream],
        *,
        name: str,
        events_per_poll: Optional[int] = None,
    ):
        if events_per_poll is not None and events_per_poll < 1:
            raise QueryBuildError("events_per_poll must be >= 1")
        self.name = name
        self._make_chunk = make_chunk
        self._events_per_poll = events_per_poll
        self._chunk_index = 0
        self._offset = 0.0
        self._pending: Deque[Event] = deque()

    def _refill(self) -> None:
        chunk = self._make_chunk(self._chunk_index)
        self._chunk_index += 1
        if not len(chunk):
            raise QueryBuildError("generator chunk produced no events")
        lo, hi = chunk.time_range()
        shift = self._offset - min(lo, 0.0)
        for e in chunk.events:
            self._pending.append(Event(e.start + shift, e.end + shift, e.payload))
        self._offset = shift + hi

    def poll(self, max_events: Optional[int] = None) -> List[Event]:
        limit = self._events_per_poll if self._events_per_poll is not None else None
        if max_events is not None:
            limit = max_events if limit is None else min(limit, max_events)
        if limit is None:
            # no rate configured: release exactly one chunk per poll
            if not self._pending:
                self._refill()
            out = list(self._pending)
            self._pending.clear()
            return out
        while len(self._pending) < limit:
            self._refill()
        return [self._pending.popleft() for _ in range(limit)]

    @property
    def horizon(self) -> float:
        if not self._pending:
            self._refill()
        return self._pending[0].start


class ThrottledSource(EventSource):
    """Cap the arrival rate of any inner source to ``events_per_poll``."""

    def __init__(self, inner: EventSource, events_per_poll: int):
        if events_per_poll < 1:
            raise QueryBuildError("events_per_poll must be >= 1")
        self.inner = inner
        self.name = inner.name
        self._events_per_poll = int(events_per_poll)

    def poll(self, max_events: Optional[int] = None) -> List[Event]:
        limit = self._events_per_poll
        if max_events is not None:
            limit = min(limit, max_events)
        return self.inner.poll(limit)

    @property
    def finite(self) -> bool:  # type: ignore[override]
        return self.inner.finite

    @property
    def horizon(self) -> float:
        return self.inner.horizon

    @property
    def exhausted(self) -> bool:
        return self.inner.exhausted

    @property
    def depth(self) -> int:
        """Forwarded from the inner source (0 when it has no queue): a
        throttled queue-backed source must still report buffered events so
        a parked service tenant becomes ready again."""
        return getattr(self.inner, "depth", 0)


class BoundedIngestQueue:
    """Thread-safe bounded event queue with blocking ``put`` (backpressure).

    Producers block when the queue holds ``capacity`` events, which is the
    micro-batch backpressure contract: ingest can never run further ahead of
    the consumer than one queue's worth of events.
    """

    def __init__(self, capacity: int = 65_536):
        if capacity < 1:
            raise QueryBuildError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._events: Deque[Event] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, events: Sequence[Event], timeout: Optional[float] = None) -> int:
        """Append events, blocking while the queue is full.

        Returns the number of events actually enqueued.  ``timeout`` is a
        total deadline: if it expires before the whole batch fits, the
        already-enqueued prefix stays enqueued and its length is returned —
        the caller retries ``events[n:]``.

        A ``put`` into a closed queue raises :class:`QueueClosedError`
        instead of silently accepting nothing; a producer *blocked* on a
        full queue is woken by :meth:`close` and gets the same exception
        (no deadlock), with ``exc.enqueued`` reporting the prefix that was
        accepted before the close and stays deliverable to the consumer.
        """
        remaining = list(events)
        enqueued = 0
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            while remaining:
                if self._closed:
                    raise QueueClosedError(
                        f"put into closed queue ({enqueued} of "
                        f"{enqueued + len(remaining)} events were accepted "
                        "before the close)",
                        enqueued=enqueued,
                    )
                free = self.capacity - len(self._events)
                if free > 0:
                    take, remaining = remaining[:free], remaining[free:]
                    self._events.extend(take)
                    enqueued += len(take)
                    continue
                wait = None if deadline is None else deadline - time.monotonic()
                if wait is not None and wait <= 0:
                    break
                if not self._not_full.wait(timeout=wait):
                    break
        return enqueued

    def drain(self, max_events: Optional[int] = None) -> List[Event]:
        """Pop up to ``max_events`` events (all of them when None)."""
        with self._not_full:
            count = len(self._events) if max_events is None else min(max_events, len(self._events))
            out = [self._events.popleft() for _ in range(count)]
            if count:
                self._not_full.notify_all()
            return out

    def peek_start(self) -> Optional[float]:
        """Start time of the first queued event (None when empty)."""
        with self._lock:
            return self._events[0].start if self._events else None

    def close(self) -> None:
        """Reject further ``put`` calls and wake blocked producers."""
        with self._not_full:
            self._closed = True
            self._not_full.notify_all()


class QueuedSource(EventSource):
    """Push-fed source: producers push into a bounded queue, the session polls.

    The producer must push events in start-time order; the completeness
    watermark advances to the start of the most recently pushed event (and
    can be advanced past quiet periods with :meth:`advance_to`).  Closing
    the source marks it exhausted once the queue drains, which lets
    ``StreamingSession.close`` flush the tail.
    """

    def __init__(self, name: str, *, capacity: int = 65_536):
        self.name = name
        self.queue = BoundedIngestQueue(capacity)
        self._watermark = -_INF
        self._last_pushed_start = -_INF
        self._closed = False
        # serializes concurrent producers: order validation and the queue
        # put must be atomic, or two in-order batches could interleave
        self._push_lock = threading.Lock()

    def push(self, events: Sequence[Event], timeout: Optional[float] = None) -> int:
        """Producer side: enqueue in-order events (blocks when full).

        Returns the number of events accepted.  On timeout the accepted
        prefix stays delivered and the order/watermark state only reflects
        it, so the producer can safely retry ``events[n:]``.  Pushing into a
        closed source raises :class:`~repro.errors.QueueClosedError`; any
        prefix accepted before the close stays delivered and is reflected in
        the watermark before the exception propagates.

        Thread-safe: concurrent producers are serialized, so each one's
        order check sees the state its batch will actually follow.  (A
        blocked push holds the serialization lock — concurrent producers
        queue behind it and are all woken by :meth:`close`.)
        """
        events = list(events)
        with self._push_lock:
            last = self._last_pushed_start
            for e in events:
                if e.start < last:
                    raise QueryBuildError(
                        f"source {self.name!r}: events must be pushed in start order"
                    )
                last = e.start
            try:
                # deliberate (see docstring): a blocked push parks concurrent
                # producers on the serialization lock; close() wakes them all
                n = self.queue.put(events, timeout=timeout)  # lint: allow(LNT101)
            except QueueClosedError as exc:
                self._record_pushed(events, exc.enqueued)
                raise
            self._record_pushed(events, n)
            return n

    def _record_pushed(self, events: Sequence[Event], n: int) -> None:
        if n:
            self._last_pushed_start = events[n - 1].start
            self._watermark = max(self._watermark, events[n - 1].start)

    def advance_to(self, t: float) -> None:
        """Promise that no future event will start before ``t``."""
        self._watermark = max(self._watermark, float(t))

    def close(self) -> None:
        """Producer side: no more events will ever be pushed."""
        self._closed = True
        self.queue.close()

    def poll(self, max_events: Optional[int] = None) -> List[Event]:
        return self.queue.drain(max_events)

    @property
    def depth(self) -> int:
        """Events currently buffered and not yet polled by the consumer."""
        return len(self.queue)

    @property
    def horizon(self) -> float:
        # events still sitting in the queue have not reached the consumer
        # yet, so completeness only extends to the first queued event.
        first = self.queue.peek_start()
        if first is not None:
            return first
        if self._closed:
            return _INF
        return self._watermark

    @property
    def exhausted(self) -> bool:
        return self._closed and len(self.queue) == 0


def sources_for_streams(
    streams,
    *,
    events_per_poll: Optional[int] = None,
) -> List[StreamReplaySource]:
    """Replay sources for a ``{input name: EventStream}`` mapping.

    Convenience for tests and benchmarks: turns the dict fed to
    ``TiltEngine.run`` into the source list fed to ``open_session``.
    """
    return [
        StreamReplaySource(stream, name=name, events_per_poll=events_per_poll)
        for name, stream in streams.items()
    ]
