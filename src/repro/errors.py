"""Exception hierarchy for the TiLT reproduction.

Every error raised by the library derives from :class:`TiltError` so callers
can catch a single base class.  Sub-classes are grouped by pipeline stage:
query construction, IR validation, boundary resolution, compilation, and
runtime execution.
"""

from __future__ import annotations


class TiltError(Exception):
    """Base class for all errors raised by this library."""


class QueryBuildError(TiltError):
    """The frontend query description is malformed (bad operator arguments,
    unknown input, incompatible window parameters, ...)."""


class ValidationError(TiltError):
    """A TiLT IR program failed structural validation."""


class BoundaryResolutionError(TiltError):
    """Temporal lineage could not be resolved to finite boundary margins."""


class CompilationError(TiltError):
    """Lowering the IR to an executable kernel failed."""


class AnalysisError(CompilationError):
    """The static analyzer found error-severity findings (e.g. a windowed
    access not covered by the resolved partition margins); the program is
    refused before any kernel is generated.  ``report`` carries the full
    :class:`~repro.analysis.findings.ProgramReport`."""

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class ExecutionError(TiltError):
    """A compiled query failed while running."""


class QueueClosedError(ExecutionError):
    """A producer tried to ``put`` into a closed :class:`BoundedIngestQueue`.

    ``enqueued`` is the length of the prefix that was accepted before the
    close was observed (0 when the queue was already closed on entry); those
    events stay enqueued and will still be delivered to the consumer.
    """

    def __init__(self, message: str, enqueued: int = 0):
        super().__init__(message)
        self.enqueued = int(enqueued)


class AdmissionError(TiltError):
    """The multi-tenant query service refused to admit a new tenant
    (the configured tenant limit is reached; free a slot by cancelling or
    draining an existing tenant)."""


class UnsupportedOperationError(TiltError):
    """An engine was asked to run an operator it does not implement.

    The baseline engines (Grizzly-like, LightSaber-like) raise this for
    temporal joins and other operators outside their aggregation-only
    vocabulary, mirroring the coverage limitations reported in the paper.
    """


class OverlappingEventsError(TiltError):
    """An event stream contains events with overlapping validity intervals
    where the operation requires disjoint intervals."""


class StreamOrderError(TiltError):
    """Events were supplied out of (start-time) order."""
