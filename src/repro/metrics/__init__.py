"""Measurement harness: throughput, latency-bounded throughput, reports,
live metrics for continuous streaming sessions, and fleet-level aggregates
for the multi-tenant query service."""

from .fleet import FleetSnapshot, aggregate_fleet, jain_fairness_index
from .latency import (
    LatencySweepPoint,
    baseline_latency_sweep,
    events_to_interval,
    tilt_latency_sweep,
)
from .report import (
    arithmetic_mean,
    format_sweep,
    format_table,
    geometric_mean,
    speedups,
    throughput_table,
)
from .streaming import LatencyDistribution, RollingThroughput, SessionMetrics
from .throughput import ThroughputResult, baseline_throughput, measure, tilt_throughput

__all__ = [
    "RollingThroughput",
    "LatencyDistribution",
    "SessionMetrics",
    "FleetSnapshot",
    "aggregate_fleet",
    "jain_fairness_index",
    "ThroughputResult",
    "measure",
    "tilt_throughput",
    "baseline_throughput",
    "LatencySweepPoint",
    "tilt_latency_sweep",
    "baseline_latency_sweep",
    "events_to_interval",
    "format_table",
    "throughput_table",
    "speedups",
    "geometric_mean",
    "arithmetic_mean",
    "format_sweep",
]
