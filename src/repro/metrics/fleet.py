"""Fleet-level metrics: service-wide aggregates over many tenant sessions.

:class:`~repro.metrics.streaming.SessionMetrics` describes *one* streaming
session.  A multi-tenant :class:`~repro.serve.QueryService` hosts many, so
its dashboard numbers are aggregates: total sustained events/sec across the
fleet, service-wide tick-latency percentiles (merged over every tenant's
recent sample window), total queue depth awaiting ingestion, and a
**fairness index** summarizing how evenly the scheduler spread execution
time across tenants.

Fairness is Jain's index over the per-tenant busy-time shares, normalized by
the tenants' scheduler weights: 1.0 means every tenant received exactly its
weighted fair share of engine time; ``1/n`` means one tenant monopolized the
service.  Comparing the index between scheduler policies is how the
multi-tenant benchmark shows deficit fair-share beating round-robin under
skewed tenant costs.

Like :mod:`repro.metrics.streaming`, this module depends on NumPy only, so
the serving layer can use it without importing the measurement harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from .streaming import SessionMetrics

__all__ = ["jain_fairness_index", "FleetSnapshot", "aggregate_fleet"]


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n · Σx²)`` over non-negative shares.

    Ranges from ``1/n`` (one party gets everything) to 1.0 (perfectly even).
    An empty or all-zero allocation is vacuously fair (1.0).
    """
    x = np.asarray(list(values), dtype=np.float64)
    if x.size == 0:
        return 1.0
    if np.any(x < 0):
        raise ValueError("fairness shares must be non-negative")
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / denom


@dataclass
class FleetSnapshot:
    """Point-in-time aggregate over the tenants of a query service."""

    tenants: int
    active_tenants: int
    input_events: int
    output_snapshots: int
    busy_seconds: float
    events_per_second: float
    tick_latency_p50: float
    tick_latency_p99: float
    queue_depth: int
    shed_events: int
    fairness: float
    per_tenant_events_per_second: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        """JSON-friendly flat rendering (stable keys)."""
        return {
            "tenants": float(self.tenants),
            "active_tenants": float(self.active_tenants),
            "input_events": float(self.input_events),
            "output_snapshots": float(self.output_snapshots),
            "busy_seconds": self.busy_seconds,
            "events_per_second": self.events_per_second,
            "tick_latency_p50": self.tick_latency_p50,
            "tick_latency_p99": self.tick_latency_p99,
            "queue_depth": float(self.queue_depth),
            "shed_events": float(self.shed_events),
            "fairness": self.fairness,
        }

    def format(self) -> str:
        """One-line human-readable rendering for live logs."""
        return (
            f"{self.active_tenants}/{self.tenants} tenants active | "
            f"{self.input_events:,} events | "
            f"{self.events_per_second / 1e6:.3f} M ev/s | "
            f"tick p50 {self.tick_latency_p50 * 1e3:.2f} ms / "
            f"p99 {self.tick_latency_p99 * 1e3:.2f} ms | "
            f"queued {self.queue_depth} | fairness {self.fairness:.3f}"
        )


def aggregate_fleet(
    per_tenant: Mapping[str, SessionMetrics],
    *,
    active: Optional[Sequence[str]] = None,
    weights: Optional[Mapping[str, float]] = None,
    queue_depths: Optional[Mapping[str, int]] = None,
    shed_events: Optional[Mapping[str, int]] = None,
) -> FleetSnapshot:
    """Fold per-tenant :class:`SessionMetrics` into one :class:`FleetSnapshot`.

    ``weights`` normalizes the fairness shares (a tenant with weight 2 is
    *supposed* to receive twice the engine time, so its share is halved
    before the index is taken).  ``queue_depths`` / ``shed_events`` fold in
    the admission-control side, which sessions know nothing about.
    """
    names = list(per_tenant)
    input_events = sum(m.input_events for m in per_tenant.values())
    output_snapshots = sum(m.output_snapshots for m in per_tenant.values())
    busy = sum(m.busy_seconds for m in per_tenant.values())
    # one snapshot per tenant window, one sort of the merged samples: both
    # service-wide percentiles come out of a single np.percentile call
    merged: List[float] = []
    for m in per_tenant.values():
        merged.extend(m.latency.samples())
    if merged:
        arr = np.asarray(merged, dtype=np.float64)
        p50, p99 = (float(v) for v in np.percentile(arr, [50.0, 99.0]))
    else:
        p50 = p99 = 0.0
    shares = [
        per_tenant[n].busy_seconds / (weights[n] if weights and weights.get(n) else 1.0)
        for n in names
    ]
    return FleetSnapshot(
        tenants=len(names),
        active_tenants=len(active) if active is not None else len(names),
        input_events=input_events,
        output_snapshots=output_snapshots,
        busy_seconds=busy,
        events_per_second=input_events / busy if busy > 0 else 0.0,
        tick_latency_p50=p50,
        tick_latency_p99=p99,
        queue_depth=sum((queue_depths or {}).values()),
        shed_events=sum((shed_events or {}).values()),
        fairness=jain_fairness_index(shares),
        per_tenant_events_per_second={
            n: per_tenant[n].throughput for n in names
        },
    )
