"""Latency-bounded throughput (Figure 9 of the paper).

A streaming engine cannot wait for the whole dataset before emitting
results: the batch (or snapshot-buffer) size bounds the result latency, and
small batches expose the engine's per-batch overheads.  The paper sweeps the
batch size from 10 to 1M events and reports the throughput at each point;
TiLT stays flat across the sweep while Trill collapses at small batches.

For the TiLT engine the equivalent knob is the partition interval (the
"user-defined interval size" of Section 6.2): a smaller interval means the
engine produces output for a shorter time span at a time.  For the baseline
engines the knob is the micro-batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..apps.base import StreamingApplication
from ..core.runtime.engine import TiltEngine
from ..core.runtime.stream import EventStream
from .throughput import ThroughputResult, measure

__all__ = ["LatencySweepPoint", "tilt_latency_sweep", "baseline_latency_sweep", "events_to_interval"]


@dataclass
class LatencySweepPoint:
    """Throughput measured at one batch-size setting."""

    batch_events: int
    result: ThroughputResult

    @property
    def events_per_second(self) -> float:
        return self.result.events_per_second


def events_to_interval(streams: Dict[str, EventStream], batch_events: int) -> float:
    """Convert a batch size in events into a time interval for partitioning.

    Uses the average event rate of the inputs, so a partition of the returned
    length contains roughly ``batch_events`` events.
    """
    total_events = sum(len(s) for s in streams.values())
    spans = [s.time_range() for s in streams.values() if len(s)]
    if not spans or total_events == 0:
        return 1.0
    duration = max(hi for _, hi in spans) - min(lo for lo, _ in spans)
    if duration <= 0:
        return 1.0
    rate = total_events / duration
    return max(batch_events / rate, 1e-9)


def tilt_latency_sweep(
    app: StreamingApplication,
    streams: Dict[str, EventStream],
    batch_sizes: Sequence[int],
    *,
    workers: int = 1,
) -> List[LatencySweepPoint]:
    """Latency-bounded throughput of the TiLT engine across batch sizes."""
    points: List[LatencySweepPoint] = []
    input_events = app.total_events(streams)
    program = app.program()
    for batch in batch_sizes:
        interval = events_to_interval(streams, batch)
        engine = TiltEngine(workers=workers, partition_interval=interval)
        compiled = engine.compile(program)
        result = measure(
            lambda: engine.run(compiled, streams),
            engine=f"tilt[batch={batch}]",
            workload=app.name,
            input_events=input_events,
        )
        points.append(LatencySweepPoint(batch_events=batch, result=result))
    return points


def baseline_latency_sweep(
    app: StreamingApplication,
    engine_factory: Callable[[int], object],
    streams: Dict[str, EventStream],
    batch_sizes: Sequence[int],
) -> List[LatencySweepPoint]:
    """Latency-bounded throughput of a baseline engine across batch sizes.

    ``engine_factory(batch_size)`` must return a configured engine instance.
    """
    points: List[LatencySweepPoint] = []
    input_events = app.total_events(streams)
    query = app.query()
    for batch in batch_sizes:
        engine = engine_factory(batch)
        result = measure(
            lambda: engine.run(query, streams),
            engine=f"{engine.name}[batch={batch}]",
            workload=app.name,
            input_events=input_events,
        )
        points.append(LatencySweepPoint(batch_events=batch, result=result))
    return points
