"""Plain-text reporting helpers for the benchmark harness.

The benchmark scripts print the same rows/series the paper's tables and
figures report; these helpers format them consistently and compute the
summary statistics the paper quotes (per-benchmark speedups and their
geometric mean / average).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .throughput import ThroughputResult

__all__ = [
    "format_table",
    "throughput_table",
    "speedups",
    "geometric_mean",
    "arithmetic_mean",
    "format_sweep",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned text table."""
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def throughput_table(results: Mapping[str, Mapping[str, ThroughputResult]]) -> str:
    """Format a {workload: {engine: result}} mapping as a throughput table.

    Throughput is reported in million events per second, the unit used by
    the paper's figures.
    """
    engines: List[str] = []
    for per_engine in results.values():
        for engine in per_engine:
            if engine not in engines:
                engines.append(engine)
    headers = ["workload"] + [f"{e} (Mev/s)" for e in engines]
    rows = []
    for workload, per_engine in results.items():
        row: List[object] = [workload]
        for engine in engines:
            result = per_engine.get(engine)
            row.append(result.millions_per_second if result else "-")
        rows.append(row)
    return format_table(headers, rows)


def speedups(
    results: Mapping[str, Mapping[str, ThroughputResult]],
    *,
    subject: str,
    baseline: str,
) -> Dict[str, float]:
    """Per-workload speedup of ``subject`` over ``baseline``."""
    out: Dict[str, float] = {}
    for workload, per_engine in results.items():
        if subject in per_engine and baseline in per_engine:
            out[workload] = per_engine[subject].speedup_over(per_engine[baseline])
    return out


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (returns 0 for an empty input)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (returns 0 for an empty input)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def format_sweep(label: str, points: Sequence) -> str:
    """Format a latency/scalability sweep as ``x -> Mev/s`` pairs."""
    parts = [
        f"{getattr(p, 'batch_events', getattr(p, 'workers', '?'))}: "
        f"{p.events_per_second / 1e6:.2f}"
        for p in points
    ]
    return f"{label}: " + ", ".join(parts)
