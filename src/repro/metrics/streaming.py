"""Live metrics for continuous streaming sessions.

The one-shot harnesses in :mod:`repro.metrics.throughput` time a complete
query run over a prepared dataset.  A :class:`~repro.core.runtime.session.StreamingSession`
instead runs indefinitely in micro-batch ticks, so its interesting numbers
are *rolling*: the sustained ingest rate over the last few seconds of
processing, and the distribution of per-tick latencies (the time from
pulling a micro-batch to emitting its output delta, which bounds result
staleness the same way batch size bounds it in Figure 9 of the paper).

This module is deliberately dependency-free (NumPy only) so the session
runtime can use it without creating an upward import from
``repro.core.runtime`` into the measurement harnesses.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RollingThroughput", "LatencyDistribution", "SessionMetrics"]


class RollingThroughput:
    """Events per second over a sliding window of recent ticks.

    The window is bounded by tick count, so a long-running session uses O(1)
    memory: old ticks fall out as new ones are recorded.  Cumulative totals
    are tracked separately and never forget.

    Readers and the recording thread may differ (a monitoring thread polls
    service stats while the scheduler records ticks), so the window is read
    and written under a lock.
    """

    def __init__(self, window_ticks: int = 64):
        if window_ticks < 1:
            raise ValueError("window_ticks must be >= 1")
        self.window_ticks = int(window_ticks)
        self._window: Deque[Tuple[int, float]] = deque(maxlen=self.window_ticks)
        self._lock = threading.Lock()
        self.total_events = 0
        self.total_seconds = 0.0

    def record(self, events: int, seconds: float) -> None:
        with self._lock:
            self._window.append((int(events), float(seconds)))
            self.total_events += int(events)
            self.total_seconds += float(seconds)

    @property
    def window_events(self) -> int:
        with self._lock:
            return sum(e for e, _ in self._window)

    @property
    def window_seconds(self) -> float:
        with self._lock:
            return sum(s for _, s in self._window)

    @property
    def events_per_second(self) -> float:
        """Rolling throughput over the window (0.0 before any work)."""
        seconds = self.window_seconds
        if seconds <= 0.0:
            return 0.0
        return self.window_events / seconds

    @property
    def cumulative_events_per_second(self) -> float:
        if self.total_seconds <= 0.0:
            return 0.0
        return self.total_events / self.total_seconds


class LatencyDistribution:
    """Percentile tracker over a bounded history of per-tick latencies.

    Keeps the most recent ``capacity`` samples in a ring buffer; percentiles
    are therefore *recent* percentiles, which is what a live dashboard wants
    from a server that has been up for days.

    Like :class:`RollingThroughput`, safe to read from a monitoring thread
    while another thread records.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._samples: Deque[float] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.count = 0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self.count += 1
            self.max_seconds = max(self.max_seconds, float(seconds))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of recent tick latencies."""
        return self.quantiles([q])[0]

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Several percentiles (0..100) from **one** snapshot of the window.

        The sample window is copied and sorted once, however many quantiles
        are requested — the batch API callers should prefer over repeated
        ``p50``/``p95``/``p99`` reads, each of which snapshots on its own.
        """
        samples = self.samples()
        if not samples:
            return [0.0] * len(qs)
        arr = np.asarray(samples, dtype=np.float64)
        return [float(v) for v in np.percentile(arr, list(qs))]

    def samples(self) -> List[float]:
        """The retained recent samples, oldest first (a copy).

        Fleet-level aggregation merges the per-tenant sample windows into
        one distribution before taking service-wide percentiles.
        """
        with self._lock:
            return list(self._samples)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        samples = self.samples()
        if not samples:
            return 0.0
        return float(np.mean(np.asarray(samples, dtype=np.float64)))


class SessionMetrics:
    """Aggregated live metrics of one streaming session.

    Sessions call :meth:`record_tick` once per micro-batch; everything else
    is derived.  ``busy_seconds`` counts only time spent inside ticks, so
    ``throughput`` matches the paper's metric (events per second of query
    execution, excluding idle/arrival time).
    """

    def __init__(self, *, window_ticks: int = 64, latency_history: int = 1024):
        self.rolling = RollingThroughput(window_ticks=window_ticks)
        self.latency = LatencyDistribution(capacity=latency_history)
        self.ticks = 0
        self.empty_ticks = 0
        self.input_events = 0
        self.output_snapshots = 0
        self.busy_seconds = 0.0
        self._registry_sinks = None
        self._subscribers: List = []

    def bind_registry(self, registry) -> None:
        """Publish this session's tick stream into a central
        :class:`~repro.obs.registry.MetricsRegistry`.

        Sessions bind their owning engine's registry at construction, so the
        unified exporters see fleet-wide tick totals and the tick-latency
        histogram without any layer keeping a second copy of the counts —
        ``record_tick`` is the single write path for both views.
        """
        if registry is None:
            self._registry_sinks = None
            return
        self._registry_sinks = (
            registry.counter("repro_ticks_total", "Micro-batch ticks executed"),
            registry.counter("repro_empty_ticks_total", "Ticks that emitted no output"),
            registry.counter("repro_ingested_events_total", "Input events ingested"),
            registry.counter("repro_output_snapshots_total", "Output snapshots emitted"),
            registry.histogram("repro_tick_seconds", "Per-tick wall time"),
        )

    def subscribe(self, callback) -> None:
        """Register an observer invoked after every :meth:`record_tick`.

        The callback receives the tick observation as keyword arguments
        (``input_events``, ``output_snapshots``, ``seconds``, ``emitted``).
        This is how derived consumers — the serving layer's SLO monitor —
        see every tick without a second write path: sessions keep calling
        ``record_tick`` exactly as before, whether they run standalone or
        under a service.  Callbacks run on the recording (scheduling)
        thread and must be cheap and exception-free.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def record_tick(
        self,
        *,
        input_events: int,
        output_snapshots: int,
        seconds: float,
        emitted: bool = True,
    ) -> None:
        self.ticks += 1
        if not emitted:
            self.empty_ticks += 1
        self.input_events += int(input_events)
        self.output_snapshots += int(output_snapshots)
        self.busy_seconds += float(seconds)
        self.rolling.record(input_events, seconds)
        self.latency.record(seconds)
        sinks = self._registry_sinks
        if sinks is not None:
            ticks, empty, events, snaps, hist = sinks
            ticks.inc()
            if not emitted:
                empty.inc()
            if input_events:
                events.inc(int(input_events))
            if output_snapshots:
                snaps.inc(int(output_snapshots))
            hist.observe(float(seconds))
        for callback in self._subscribers:
            callback(
                input_events=input_events,
                output_snapshots=output_snapshots,
                seconds=seconds,
                emitted=emitted,
            )

    @property
    def throughput(self) -> float:
        """Cumulative input events per second of tick (busy) time."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.input_events / self.busy_seconds

    @property
    def rolling_throughput(self) -> float:
        return self.rolling.events_per_second

    def summary(self) -> Dict[str, float]:
        """Snapshot of the headline numbers (stable keys, JSON-friendly)."""
        p50, p95, p99 = self.latency.quantiles([50.0, 95.0, 99.0])
        return {
            "ticks": float(self.ticks),
            "empty_ticks": float(self.empty_ticks),
            "input_events": float(self.input_events),
            "output_snapshots": float(self.output_snapshots),
            "busy_seconds": self.busy_seconds,
            "events_per_second": self.throughput,
            "rolling_events_per_second": self.rolling_throughput,
            "tick_latency_p50": p50,
            "tick_latency_p95": p95,
            "tick_latency_p99": p99,
        }

    def format(self) -> str:
        """One-line human-readable rendering for live logs."""
        p50, p99 = self.latency.quantiles([50.0, 99.0])
        return (
            f"{self.ticks} ticks | {self.input_events:,} events | "
            f"{self.rolling_throughput / 1e6:.3f} M ev/s rolling "
            f"({self.throughput / 1e6:.3f} cumulative) | "
            f"tick p50 {p50 * 1e3:.2f} ms / "
            f"p99 {p99 * 1e3:.2f} ms"
        )
