"""Throughput measurement harness.

The paper's primary metric is data-processing throughput: input events
processed per second of query-execution time, excluding data loading
(Section 7, "Metrics").  The helpers here time a query run on a prepared
in-memory dataset and report events/second, for both the TiLT engine and the
baseline engines.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..apps.base import StreamingApplication
from ..core.runtime.engine import TiltEngine
from ..core.runtime.stream import EventStream

__all__ = ["ThroughputResult", "measure", "tilt_throughput", "baseline_throughput"]


@dataclass
class ThroughputResult:
    """Throughput of one engine on one workload."""

    engine: str
    workload: str
    input_events: int
    elapsed_seconds: float
    output_events: int = 0
    runs: int = 1
    per_run_seconds: List[float] = field(default_factory=list)

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.input_events / self.elapsed_seconds

    @property
    def millions_per_second(self) -> float:
        return self.events_per_second / 1e6

    def speedup_over(self, other: "ThroughputResult") -> float:
        """How many times faster this result is than ``other``."""
        if other.events_per_second == 0:
            return float("inf")
        return self.events_per_second / other.events_per_second

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ThroughputResult({self.engine}/{self.workload}: "
            f"{self.events_per_second:,.0f} events/s)"
        )


def measure(
    run: Callable[[], object],
    *,
    engine: str,
    workload: str,
    input_events: int,
    repeats: int = 1,
    count_output: Optional[Callable[[object], int]] = None,
) -> ThroughputResult:
    """Time ``run()`` (already bound to its prepared inputs) ``repeats`` times.

    The reported elapsed time is the median of the runs, mirroring the
    paper's averaging over 5 runs with low variance.
    """
    durations: List[float] = []
    output_events = 0
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run()
        durations.append(time.perf_counter() - start)
    if count_output is not None and result is not None:
        output_events = count_output(result)
    return ThroughputResult(
        engine=engine,
        workload=workload,
        input_events=input_events,
        elapsed_seconds=statistics.median(durations),
        output_events=output_events,
        runs=len(durations),
        per_run_seconds=durations,
    )


def tilt_throughput(
    app: StreamingApplication,
    streams: Dict[str, EventStream],
    *,
    workers: int = 1,
    repeats: int = 1,
    **engine_kwargs,
) -> ThroughputResult:
    """Measure the TiLT engine on one application.

    The query is compiled once outside the timed region (compilation is a
    one-time cost for a long-running streaming query), then executed
    ``repeats`` times.
    """
    engine = TiltEngine(workers=workers, **engine_kwargs)
    compiled = engine.compile(app.program())
    input_events = app.total_events(streams)
    return measure(
        lambda: engine.run(compiled, streams),
        engine=f"tilt[{workers}w]",
        workload=app.name,
        input_events=input_events,
        repeats=repeats,
        count_output=lambda r: r.output.num_valid(),
    )


def baseline_throughput(
    app: StreamingApplication,
    engine,
    streams: Dict[str, EventStream],
    *,
    repeats: int = 1,
) -> ThroughputResult:
    """Measure one of the baseline engines on one application."""
    query = app.query()
    input_events = app.total_events(streams)
    return measure(
        lambda: engine.run(query, streams),
        engine=engine.name,
        workload=app.name,
        input_events=input_events,
        repeats=repeats,
        count_output=lambda out: len(out),
    )
