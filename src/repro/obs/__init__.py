"""``repro.obs`` — cross-cutting observability: tracing, metrics, exporters.

The execution stack (engine → session → scheduler → executor → kernel) is
instrumented against the interfaces in this package:

* :mod:`repro.obs.trace` — low-overhead span tracing with per-thread
  buffers, a strict no-op disabled path (:data:`NULL_TRACER`) and
  cross-process record adoption; enable with ``TiltEngine(trace=True)`` or
  ``REPRO_TRACE=1``;
* :mod:`repro.obs.registry` — the unified :class:`MetricsRegistry`
  (counters / gauges / histograms) every layer publishes into, with
  Prometheus text (:meth:`MetricsRegistry.to_prometheus`) and JSON
  (:meth:`MetricsRegistry.to_json`) exporters;
* :mod:`repro.obs.export` — Chrome trace-event JSON for spans
  (:func:`to_chrome_trace`) and span-tree assembly
  (:func:`build_span_trees`);
* :mod:`repro.obs.recorder` — the :class:`FlightRecorder`: a bounded ring
  of recent tick span trees per tenant with a slow-tick pinning trigger
  (fixed wall-clock or adaptive rolling-p99), surfaced through
  ``QueryService.stats()``;
* :mod:`repro.obs.slo` — declarative per-tenant :class:`SLOSpec` service
  objectives evaluated with multi-window burn-rate logic by an
  :class:`SLOMonitor` (verdicts ``healthy``/``degraded``/``overloaded``);
* :mod:`repro.obs.http` — :class:`TelemetryServer`, a zero-dependency
  stdlib HTTP endpoint serving ``/metrics`` (Prometheus), ``/healthz``
  (SLO verdict), ``/slo``, ``/tenants`` and ``/trace`` from a background
  thread;
* :mod:`repro.obs.logging` — structured JSON log records
  (:class:`JsonFormatter`) correlated with active span ids
  (:class:`SpanCorrelationFilter`).

This package sits below every other layer (stdlib + nothing else), so the
core runtime, codegen, serving and metrics modules can all import it
without cycles.

Quickstart::

    from repro import TiltEngine
    from repro.obs import chrome_trace_json

    engine = TiltEngine(workers=2, trace=True)
    engine.run(program, streams)
    print(engine.registry.to_prometheus())
    open("trace.json", "w").write(chrome_trace_json(engine.tracer.drain()))
"""

from .export import SpanTree, build_span_trees, chrome_trace_json, to_chrome_trace
from .http import TelemetryServer
from .logging import JsonFormatter, SpanCorrelationFilter, configure_json_logging
from .recorder import FlightRecorder, PinnedTick
from .registry import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .slo import (
    DEGRADED,
    HEALTHY,
    OVERLOADED,
    SLOBreach,
    SLOMonitor,
    SLOSpec,
    SLOStatus,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    make_tracer,
    trace_enabled_by_env,
)

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "make_tracer",
    "trace_enabled_by_env",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "SpanTree",
    "build_span_trees",
    "to_chrome_trace",
    "chrome_trace_json",
    "FlightRecorder",
    "PinnedTick",
    "SLOSpec",
    "SLOMonitor",
    "SLOStatus",
    "SLOBreach",
    "HEALTHY",
    "DEGRADED",
    "OVERLOADED",
    "TelemetryServer",
    "JsonFormatter",
    "SpanCorrelationFilter",
    "configure_json_logging",
]
