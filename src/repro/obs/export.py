"""Span exporters: Chrome trace-event JSON and span-tree assembly.

Two consumers want the records a :class:`~repro.obs.trace.Tracer` collects:

* a human with a browser — :func:`to_chrome_trace` renders records as
  Chrome's trace-event format (the JSON ``chrome://tracing`` / Perfetto
  load), one complete ``"X"`` event per span with wall-clock microsecond
  timestamps, so a slow tick can be inspected visually across the
  session → executor → kernel stack;
* the flight recorder and tests — :func:`build_span_trees` reassembles the
  flat record list into parent→children trees (roots first, children in
  start order), the structural form assertions and the slow-tick pinning
  work on.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .trace import SpanRecord

__all__ = ["SpanTree", "build_span_trees", "to_chrome_trace", "chrome_trace_json"]


class SpanTree:
    """One span and its children, ordered by start time."""

    __slots__ = ("record", "children")

    def __init__(self, record: SpanRecord):
        self.record = record
        self.children: List["SpanTree"] = []

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def duration(self) -> float:
        return self.record.duration

    def find(self, name: str) -> List["SpanTree"]:
        """All descendants (including self) with the given span name."""
        found = [self] if self.record.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def total_spans(self) -> int:
        return 1 + sum(c.total_spans() for c in self.children)

    def to_dict(self) -> Dict[str, object]:
        d = self.record.to_dict()
        d["children"] = [c.to_dict() for c in self.children]
        return d

    def format(self, indent: int = 0) -> str:
        """Indented one-line-per-span rendering for logs and reports."""
        line = (
            f"{'  ' * indent}{self.record.name} "
            f"{self.record.duration * 1e3:.3f} ms"
        )
        if self.record.attrs:
            attrs = " ".join(f"{k}={v}" for k, v in sorted(self.record.attrs.items()))
            line += f" [{attrs}]"
        return "\n".join([line] + [c.format(indent + 1) for c in self.children])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanTree({self.record.name!r}, {len(self.children)} children)"


def build_span_trees(records: Sequence[SpanRecord]) -> List[SpanTree]:
    """Assemble flat records into trees.

    A record whose parent is absent from ``records`` becomes a root (spans
    can be drained mid-run, orphaning children of still-active parents).
    Roots and children are ordered by start time.
    """
    nodes: Dict[str, SpanTree] = {r.span_id: SpanTree(r) for r in records}
    roots: List[SpanTree] = []
    for r in sorted(records, key=lambda r: r.start):
        node = nodes[r.span_id]
        parent = nodes.get(r.parent_id) if r.parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def to_chrome_trace(records: Sequence[SpanRecord]) -> Dict[str, object]:
    """Records as a Chrome trace-event document (load in ``chrome://tracing``).

    Every span becomes one complete (``"ph": "X"``) event with microsecond
    wall-clock timestamps; pid/tid reproduce the producing process/thread,
    so the process backend's worker spans appear on their own tracks.
    """
    events: List[Dict[str, object]] = []
    for r in sorted(records, key=lambda r: r.start):
        args: Dict[str, object] = {str(k): v for k, v in r.attrs.items()}
        args["cpu_time_ms"] = round(r.cpu_time * 1e3, 6)
        args["span_id"] = r.span_id
        if r.parent_id is not None:
            args["parent_id"] = r.parent_id
        events.append(
            {
                "name": r.name,
                "ph": "X",
                "ts": r.start * 1e6,
                "dur": r.duration * 1e6,
                "pid": r.pid,
                "tid": r.thread_id,
                "cat": r.name.split(".", 1)[0],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(records: Sequence[SpanRecord], *, indent: Optional[int] = None) -> str:
    """:func:`to_chrome_trace` serialized to a JSON string."""
    return json.dumps(to_chrome_trace(records), indent=indent, sort_keys=True)
