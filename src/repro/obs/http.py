"""A zero-dependency telemetry endpoint for a running fleet.

Everything the observability layer collects is pull-from-Python until this
module: scraping a live service meant attaching a debugger or sprinkling
``print(service.stats())``.  :class:`TelemetryServer` runs a stdlib
``http.server`` on a background thread and serves the existing exporters
over HTTP, so a Prometheus scraper, a ``curl`` in a terminal, or a
load-balancer health check can watch a fleet from outside the process:

========== ============================================================
Route      Payload
========== ============================================================
``/``          JSON index of the available routes
``/metrics``   Prometheus text exposition (``MetricsRegistry.to_prometheus``)
``/healthz``   SLO-derived verdict — 200 when ``healthy``, 503 when
               ``degraded``/``overloaded`` (plain 200 liveness when no
               SLO engine is attached)
``/slo``       Full :class:`~repro.obs.slo.SLOStatus` document (JSON)
``/tenants``   Per-tenant stats rows (JSON)
``/trace``     Recent ticks as Chrome trace-event JSON
               (``?tenant=NAME`` filters to one tenant)
``/analyze``   Static-analysis reports for the running queries
               (``?tenant=NAME`` returns one tenant's full finding list;
               without it, a per-tenant summary rollup)
========== ============================================================

The server is deliberately *source-agnostic*: it is constructed from plain
callables, so it lives below the serving layer (``repro.obs`` imports
nothing above the stdlib) and anything — a :class:`QueryService`, a bare
engine, a test stub — can expose itself by passing closures.  Handlers run
on the ``ThreadingHTTPServer`` worker threads; every provider callable
must therefore be thread-safe (the registry/SLO/stats paths all are), and
a callable that raises turns into a 500 response instead of killing the
server.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

__all__ = ["TelemetryServer"]

_LOG = logging.getLogger("repro.obs.http")

#: content type of the Prometheus text exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class TelemetryServer:
    """Serve observability exporters over HTTP from a background thread.

    Parameters
    ----------
    metrics:
        ``() -> str`` — Prometheus text for ``/metrics``.
    health:
        ``() -> (status_code, json_dict)`` for ``/healthz``.  ``None``
        degrades the route to an unconditional 200 liveness check.
    slo / tenants:
        ``() -> json_dict`` for ``/slo`` / ``/tenants``; ``None`` makes
        the route 404.
    trace:
        ``(tenant: Optional[str]) -> json_dict`` for ``/trace``.
    analyze:
        ``(tenant: Optional[str]) -> json_dict`` for ``/analyze``.
    host / port:
        Bind address.  Port 0 picks an ephemeral port; read the bound one
        from :attr:`port` after :meth:`start`.  The default host is
        loopback-only — telemetry is diagnostic surface, exposing it
        beyond the machine is an explicit decision.
    """

    def __init__(
        self,
        *,
        metrics: Optional[Callable[[], str]] = None,
        health: Optional[Callable[[], Tuple[int, Dict[str, object]]]] = None,
        slo: Optional[Callable[[], Optional[Dict[str, object]]]] = None,
        tenants: Optional[Callable[[], Dict[str, object]]] = None,
        trace: Optional[Callable[[Optional[str]], Dict[str, object]]] = None,
        analyze: Optional[Callable[[Optional[str]], Dict[str, object]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._providers = {
            "metrics": metrics,
            "health": health,
            "slo": slo,
            "tenants": tenants,
            "trace": trace,
            "analyze": analyze,
        }
        self._host = host
        self._requested_port = int(port)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        #: requests served, by route (diagnostic; read via :meth:`request_counts`)
        self._requests: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------- #
    def start(self) -> "TelemetryServer":
        """Bind the socket and start serving on a daemon thread."""
        with self._lock:
            if self._server is not None:
                return self
            handler = _make_handler(self)
            server = ThreadingHTTPServer((self._host, self._requested_port), handler)
            server.daemon_threads = True
            self._server = server
            self._thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        with self._lock:
            server, thread = self._server, self._thread
            self._server = self._thread = None
        if server is None:
            return
        server.shutdown()
        thread.join()
        server.server_close()

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> Optional[int]:
        """The bound port (``None`` before :meth:`start` / after close)."""
        server = self._server
        return server.server_address[1] if server is not None else None

    @property
    def url(self) -> Optional[str]:
        port = self.port
        return f"http://{self._host}:{port}" if port is not None else None

    def request_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._requests)

    def _count(self, route: str) -> None:
        with self._lock:
            self._requests[route] = self._requests.get(route, 0) + 1

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self.url if self.running else "stopped"
        return f"TelemetryServer({state})"


def _make_handler(owner: TelemetryServer):
    """A handler class bound to one server's providers.

    ``http.server`` instantiates the handler per request; closing over the
    owner keeps per-server state (providers, counters) without globals.
    """

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-telemetry/1.0"
        protocol_version = "HTTP/1.1"

        # -- responses -------------------------------------------------- #
        def _send(self, code: int, content_type: str, body: bytes) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, code: int, doc) -> None:
            body = json.dumps(doc, sort_keys=True, default=str).encode("utf-8")
            self._send(code, JSON_CONTENT_TYPE, body)

        def _provider(self, name: str):
            return owner._providers.get(name)

        # -- routes ------------------------------------------------------ #
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            try:
                if route == "/":
                    self._index()
                elif route == "/metrics":
                    self._metrics()
                elif route == "/healthz":
                    self._healthz()
                elif route == "/slo":
                    self._json_route("slo")
                elif route == "/tenants":
                    self._json_route("tenants")
                elif route == "/trace":
                    self._tenant_route("trace", parse_qs(parsed.query))
                elif route == "/analyze":
                    self._tenant_route("analyze", parse_qs(parsed.query))
                else:
                    self._send_json(404, {"error": f"unknown route {route!r}"})
                    return
                owner._count(route)
            except BrokenPipeError:  # scraper hung up mid-response
                pass
            except Exception as exc:  # noqa: BLE001 - provider isolation
                _LOG.exception("telemetry provider failed for %s", route)
                try:
                    self._send_json(500, {"error": repr(exc)})
                except Exception:  # headers already sent
                    pass

        def _index(self) -> None:
            available = ["/", "/metrics", "/healthz"]
            if self._provider("slo") is not None:
                available.append("/slo")
            if self._provider("tenants") is not None:
                available.append("/tenants")
            if self._provider("trace") is not None:
                available.append("/trace")
            if self._provider("analyze") is not None:
                available.append("/analyze")
            self._send_json(200, {"routes": available})

        def _metrics(self) -> None:
            provider = self._provider("metrics")
            if provider is None:
                self._send_json(404, {"error": "no metrics provider"})
                return
            self._send(200, PROMETHEUS_CONTENT_TYPE, provider().encode("utf-8"))

        def _healthz(self) -> None:
            provider = self._provider("health")
            if provider is None:
                # liveness only: the process is up and serving
                self._send_json(200, {"status": "ok"})
                return
            code, body = provider()
            self._send_json(code, body)

        def _json_route(self, name: str) -> None:
            provider = self._provider(name)
            doc = provider() if provider is not None else None
            if doc is None:
                self._send_json(404, {"error": f"no {name} provider"})
                return
            self._send_json(200, doc)

        def _tenant_route(self, name: str, query: Dict[str, list]) -> None:
            provider = self._provider(name)
            if provider is None:
                self._send_json(404, {"error": f"no {name} provider"})
                return
            tenant = query.get("tenant", [None])[0]
            self._send_json(200, provider(tenant))

        def log_message(self, fmt: str, *args) -> None:  # noqa: A003
            _LOG.debug("%s %s", self.address_string(), fmt % args)

    return Handler
