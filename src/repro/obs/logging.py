"""Structured JSON logging correlated with active trace spans.

The serving layer reports noteworthy events (tenant failures, slow-tick
pins, SLO breaches) through standard :mod:`logging` loggers.  Production
embedders aggregate logs as JSON lines and join them against traces; this
module provides the two pieces that make that work without any third-party
dependency:

* :class:`JsonFormatter` — renders each record as one JSON object with
  stable keys (``ts``, ``level``, ``logger``, ``message``) plus every
  structured field the call site attached via ``extra=``.  Fields are
  discovered by diffing against the stock ``LogRecord`` attributes, so
  call sites just write ``log.error("...", extra={"tenant": name})``.
* :class:`SpanCorrelationFilter` — stamps each record with the calling
  thread's innermost active span id (``span_id``), so a log line emitted
  inside a traced tick can be joined to its span tree in the Chrome trace
  export.  With tracing disabled the filter stamps ``None`` and costs a
  method call.

:func:`configure_json_logging` wires both onto the ``repro`` logger tree::

    from repro.obs.logging import configure_json_logging
    configure_json_logging(tracer=engine.tracer)

Log output then looks like::

    {"ts": 1723111845.1, "level": "ERROR", "logger": "repro.serve",
     "message": "tenant 'ysb-3' failed ...", "tenant": "ysb-3",
     "tick": 17, "span_id": "1a2b-3f"}
"""

from __future__ import annotations

import json
import logging
from typing import Optional

__all__ = ["JsonFormatter", "SpanCorrelationFilter", "configure_json_logging"]

#: attributes every LogRecord carries; anything else came from ``extra=``
_STOCK_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record, structured fields included.

    ``exc_info`` renders into an ``exception`` field (the formatted
    traceback) rather than being appended to the message, so a JSON-lines
    consumer never sees a multi-line record.
    """

    def __init__(self, *, sort_keys: bool = True):
        super().__init__()
        self.sort_keys = sort_keys

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _STOCK_ATTRS or key.startswith("_"):
                continue
            doc[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            doc["exception"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=self.sort_keys, default=repr)


class SpanCorrelationFilter(logging.Filter):
    """Attach the calling thread's active span id to every record.

    A :class:`~repro.obs.trace.Tracer` (or the null tracer) is consulted at
    emit time; records produced outside any span carry ``span_id: None``.
    An existing ``span_id`` set explicitly via ``extra=`` is preserved.
    """

    def __init__(self, tracer):
        super().__init__()
        self._tracer = tracer

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "span_id"):
            record.span_id = self._tracer.current_span_id()
        return True


def configure_json_logging(
    logger_name: str = "repro",
    *,
    tracer=None,
    stream=None,
    level: int = logging.INFO,
) -> logging.Handler:
    """Install a JSON-lines handler (with span correlation) on a logger.

    Returns the handler so an embedder can remove it again.  Idempotent in
    spirit: an existing handler previously installed by this function on
    the same logger is replaced, not duplicated.
    """
    logger = logging.getLogger(logger_name)
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_json_handler", False):
            logger.removeHandler(existing)
    handler = logging.StreamHandler(stream)
    handler._repro_json_handler = True
    handler.setFormatter(JsonFormatter())
    if tracer is not None:
        handler.addFilter(SpanCorrelationFilter(tracer))
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
