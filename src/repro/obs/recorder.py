"""Flight recorder: bounded history of recent tick span trees per tenant.

Tracing answers "what is happening now"; the flight recorder answers "why
was *that* tick slow" after the fact.  It keeps, per tenant, a bounded ring
of the most recent tick span trees, and — when a tick's root span exceeds
``slow_tick_threshold`` — **pins** the offending tick's full span tree
together with its kernel/source context (program output, kernel digests and
generated sources) so the evidence survives long after the ring has cycled.

The recorder is fed by :meth:`QueryService.step
<repro.serve.service.QueryService.step>` after each tick (the service
drains the tracer and hands the records over), but it is service-agnostic:
anything that produces span records for a logical "tick" can use it.
Everything it holds is exposed through :meth:`summary` (and therefore
``QueryService.stats()``) as plain JSON-friendly structures.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Sequence

from .export import SpanTree, build_span_trees, to_chrome_trace
from .trace import SpanRecord

__all__ = ["PinnedTick", "FlightRecorder"]


class PinnedTick:
    """A slow tick frozen for post-hoc diagnosis."""

    __slots__ = ("tenant", "tick_index", "duration", "wall_time", "tree", "context")

    def __init__(
        self,
        tenant: str,
        tick_index: Optional[int],
        duration: float,
        wall_time: float,
        tree: SpanTree,
        context: Dict[str, object],
    ):
        self.tenant = tenant
        self.tick_index = tick_index
        self.duration = duration
        self.wall_time = wall_time
        self.tree = tree
        self.context = context

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "tick_index": self.tick_index,
            "duration": self.duration,
            "wall_time": self.wall_time,
            "span_tree": self.tree.to_dict(),
            "context": dict(self.context),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PinnedTick({self.tenant!r}, tick={self.tick_index}, "
            f"{self.duration * 1e3:.1f} ms)"
        )


class _TenantRing:
    __slots__ = ("trees", "ticks_recorded", "slow_ticks")

    def __init__(self, capacity: int):
        self.trees: Deque[SpanTree] = deque(maxlen=capacity)
        self.ticks_recorded = 0
        self.slow_ticks = 0


class FlightRecorder:
    """Bounded per-tenant span-tree history with a slow-tick trigger.

    Parameters
    ----------
    capacity_per_tenant:
        Recent tick span trees retained per tenant (ring buffer).
    slow_tick_threshold:
        Root-span duration (seconds) past which a tick is pinned.  ``None``
        disables pinning; the recent rings still fill.
    max_pinned:
        Bound on retained :class:`PinnedTick` evidence (oldest evicted
        first) — pinning carries kernel sources, so it must not grow with
        uptime on a persistently slow fleet.
    """

    def __init__(
        self,
        *,
        capacity_per_tenant: int = 16,
        slow_tick_threshold: Optional[float] = None,
        max_pinned: int = 8,
    ):
        if capacity_per_tenant < 1:
            raise ValueError("capacity_per_tenant must be >= 1")
        if max_pinned < 1:
            raise ValueError("max_pinned must be >= 1")
        if slow_tick_threshold is not None and slow_tick_threshold <= 0:
            raise ValueError("slow_tick_threshold must be positive (or None)")
        self.capacity_per_tenant = int(capacity_per_tenant)
        self.slow_tick_threshold = slow_tick_threshold
        self.max_pinned = int(max_pinned)
        self._lock = threading.Lock()
        self._tenants: "OrderedDict[str, _TenantRing]" = OrderedDict()
        self._pinned: Deque[PinnedTick] = deque(maxlen=self.max_pinned)
        self._records_seen = 0

    # -- feeding --------------------------------------------------------- #
    def record_tick(
        self,
        tenant: str,
        records: Sequence[SpanRecord],
        *,
        context: Optional[Dict[str, object]] = None,
    ) -> Optional[PinnedTick]:
        """Fold one tick's drained span records into the tenant's ring.

        The tick's root span is the first root whose subtree contains a
        ``session.tick`` span (a drain can sweep up unrelated spans from
        other threads, e.g. a concurrent submit's ``engine.compile``);
        when none qualifies, the earliest-starting root stands in.  Its
        duration drives the slow-tick trigger.  Returns the
        :class:`PinnedTick` when the threshold tripped, else ``None``.
        """
        if not records:
            return None
        roots = build_span_trees(records)
        if not roots:
            return None
        tree = next((r for r in roots if r.find("session.tick")), roots[0])
        with self._lock:
            self._records_seen += len(records)
            ring = self._tenants.get(tenant)
            if ring is None:
                ring = self._tenants[tenant] = _TenantRing(self.capacity_per_tenant)
            ring.trees.append(tree)
            ring.ticks_recorded += 1
            threshold = self.slow_tick_threshold
            if threshold is None or tree.record.duration < threshold:
                return None
            ring.slow_ticks += 1
            ticks = tree.find("session.tick")
            tick_index = None
            if ticks:
                tick_index = ticks[0].record.attrs.get("tick")
            pinned = PinnedTick(
                tenant,
                tick_index,
                tree.record.duration,
                tree.record.start,
                tree,
                dict(context or {}),
            )
            self._pinned.append(pinned)
            return pinned

    # -- introspection --------------------------------------------------- #
    def recent(self, tenant: str) -> List[SpanTree]:
        """The tenant's retained recent tick span trees, oldest first."""
        with self._lock:
            ring = self._tenants.get(tenant)
            return list(ring.trees) if ring is not None else []

    def pinned(self) -> List[PinnedTick]:
        with self._lock:
            return list(self._pinned)

    def tenants(self) -> List[str]:
        with self._lock:
            return list(self._tenants)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly snapshot for ``QueryService.stats()``."""
        with self._lock:
            tenants = {
                name: {
                    "ticks_recorded": ring.ticks_recorded,
                    "slow_ticks": ring.slow_ticks,
                    "recent_tick_ms": [
                        round(t.record.duration * 1e3, 3) for t in ring.trees
                    ],
                }
                for name, ring in self._tenants.items()
            }
            pinned = [p.to_dict() for p in self._pinned]
        return {
            "slow_tick_threshold": self.slow_tick_threshold,
            "records_seen": self._records_seen,
            "tenants": tenants,
            "pinned_slow_ticks": pinned,
        }

    def to_chrome_trace(self, tenant: Optional[str] = None) -> Dict[str, object]:
        """Everything retained (one tenant, or all) as a Chrome trace doc."""
        records: List[SpanRecord] = []

        def collect(tree: SpanTree) -> None:
            records.append(tree.record)
            for child in tree.children:
                collect(child)

        with self._lock:
            rings = (
                [self._tenants[tenant]]
                if tenant is not None and tenant in self._tenants
                else list(self._tenants.values())
                if tenant is None
                else []
            )
            trees = [t for ring in rings for t in ring.trees]
            trees.extend(p.tree for p in self._pinned)
        for tree in trees:
            collect(tree)
        return to_chrome_trace(records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"FlightRecorder({len(self._tenants)} tenants, "
                f"{len(self._pinned)} pinned)"
            )
