"""Flight recorder: bounded history of recent tick span trees per tenant.

Tracing answers "what is happening now"; the flight recorder answers "why
was *that* tick slow" after the fact.  It keeps, per tenant, a bounded ring
of the most recent tick span trees, and — when a tick's root span exceeds
``slow_tick_threshold`` — **pins** the offending tick's full span tree
together with its kernel/source context (program output, kernel digests and
generated sources) so the evidence survives long after the ring has cycled.

The recorder is fed by :meth:`QueryService.step
<repro.serve.service.QueryService.step>` after each tick (the service
drains the tracer and hands the records over), but it is service-agnostic:
anything that produces span records for a logical "tick" can use it.
Everything it holds is exposed through :meth:`summary` (and therefore
``QueryService.stats()``) as plain JSON-friendly structures.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Sequence

from .export import SpanTree, build_span_trees, to_chrome_trace
from .trace import SpanRecord

__all__ = ["PinnedTick", "FlightRecorder"]


class PinnedTick:
    """A slow tick frozen for post-hoc diagnosis."""

    __slots__ = ("tenant", "tick_index", "duration", "wall_time", "tree", "context")

    def __init__(
        self,
        tenant: str,
        tick_index: Optional[int],
        duration: float,
        wall_time: float,
        tree: SpanTree,
        context: Dict[str, object],
    ):
        self.tenant = tenant
        self.tick_index = tick_index
        self.duration = duration
        self.wall_time = wall_time
        self.tree = tree
        self.context = context

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "tick_index": self.tick_index,
            "duration": self.duration,
            "wall_time": self.wall_time,
            "span_tree": self.tree.to_dict(),
            "context": dict(self.context),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PinnedTick({self.tenant!r}, tick={self.tick_index}, "
            f"{self.duration * 1e3:.1f} ms)"
        )


class _TenantRing:
    __slots__ = ("trees", "ticks_recorded", "slow_ticks", "durations")

    def __init__(self, capacity: int, history: int):
        self.trees: Deque[SpanTree] = deque(maxlen=capacity)
        self.ticks_recorded = 0
        self.slow_ticks = 0
        #: rolling tick-duration history driving the adaptive threshold
        self.durations: Deque[float] = deque(maxlen=history)

    def rolling_p99(self) -> Optional[float]:
        """The p99 of the retained durations (nearest-rank), or ``None``."""
        if not self.durations:
            return None
        ordered = sorted(self.durations)
        rank = max(0, -(-len(ordered) * 99 // 100) - 1)  # ceil(0.99 n) - 1
        return ordered[rank]


class FlightRecorder:
    """Bounded per-tenant span-tree history with a slow-tick trigger.

    Parameters
    ----------
    capacity_per_tenant:
        Recent tick span trees retained per tenant (ring buffer).
    slow_tick_threshold:
        Root-span duration (seconds) past which a tick is pinned.  ``None``
        disables pinning; the recent rings still fill.  The string
        ``"adaptive"`` pins *relative* outliers instead: a tick slower
        than ``adaptive_multiplier`` times the tenant's rolling p99 — so a
        quiet fleet whose ticks take microseconds still captures its own
        outliers, which no sensible fixed wall-clock cutoff would catch.
    adaptive_multiplier:
        How far past the tenant's rolling p99 a tick must land to count as
        an outlier (adaptive mode only).
    adaptive_min_ticks:
        Ticks observed per tenant before the adaptive trigger arms — the
        rolling p99 of three cold-start ticks is noise, not a baseline.
    adaptive_history:
        Tick durations retained per tenant for the rolling p99.
    max_pinned:
        Bound on retained :class:`PinnedTick` evidence (oldest evicted
        first) — pinning carries kernel sources, so it must not grow with
        uptime on a persistently slow fleet.
    """

    ADAPTIVE = "adaptive"

    def __init__(
        self,
        *,
        capacity_per_tenant: int = 16,
        slow_tick_threshold: "Optional[float | str]" = None,
        adaptive_multiplier: float = 3.0,
        adaptive_min_ticks: int = 32,
        adaptive_history: int = 256,
        max_pinned: int = 8,
    ):
        if capacity_per_tenant < 1:
            raise ValueError("capacity_per_tenant must be >= 1")
        if max_pinned < 1:
            raise ValueError("max_pinned must be >= 1")
        if isinstance(slow_tick_threshold, str):
            if slow_tick_threshold != self.ADAPTIVE:
                raise ValueError(
                    f"slow_tick_threshold must be a number, None or "
                    f"{self.ADAPTIVE!r} (got {slow_tick_threshold!r})"
                )
        elif slow_tick_threshold is not None and slow_tick_threshold <= 0:
            raise ValueError("slow_tick_threshold must be positive (or None)")
        if adaptive_multiplier <= 1.0:
            raise ValueError("adaptive_multiplier must be > 1")
        if adaptive_min_ticks < 2:
            raise ValueError("adaptive_min_ticks must be >= 2")
        if adaptive_history < adaptive_min_ticks:
            raise ValueError("adaptive_history must be >= adaptive_min_ticks")
        self.capacity_per_tenant = int(capacity_per_tenant)
        self.slow_tick_threshold = slow_tick_threshold
        self.adaptive_multiplier = float(adaptive_multiplier)
        self.adaptive_min_ticks = int(adaptive_min_ticks)
        self.adaptive_history = int(adaptive_history)
        self.max_pinned = int(max_pinned)
        self._lock = threading.Lock()
        self._tenants: "OrderedDict[str, _TenantRing]" = OrderedDict()
        self._pinned: Deque[PinnedTick] = deque(maxlen=self.max_pinned)
        self._records_seen = 0

    @property
    def adaptive(self) -> bool:
        return self.slow_tick_threshold == self.ADAPTIVE

    def _effective_threshold(self, ring: _TenantRing) -> Optional[float]:
        """The pin threshold for this tenant's *next* tick (``None``: off).

        Fixed mode returns the configured cutoff; adaptive mode returns
        ``multiplier × rolling p99`` once enough history has accumulated.
        """
        if not self.adaptive:
            return self.slow_tick_threshold
        if len(ring.durations) < self.adaptive_min_ticks:
            return None
        p99 = ring.rolling_p99()
        return None if p99 is None else self.adaptive_multiplier * p99

    # -- feeding --------------------------------------------------------- #
    def record_tick(
        self,
        tenant: str,
        records: Sequence[SpanRecord],
        *,
        context: Optional[Dict[str, object]] = None,
    ) -> Optional[PinnedTick]:
        """Fold one tick's drained span records into the tenant's ring.

        The tick's root span is the first root whose subtree contains a
        ``session.tick`` span (a drain can sweep up unrelated spans from
        other threads, e.g. a concurrent submit's ``engine.compile``);
        when none qualifies, the earliest-starting root stands in.  Its
        duration drives the slow-tick trigger.  Returns the
        :class:`PinnedTick` when the threshold tripped, else ``None``.
        """
        if not records:
            return None
        roots = build_span_trees(records)
        if not roots:
            return None
        tree = next((r for r in roots if r.find("session.tick")), roots[0])
        with self._lock:
            self._records_seen += len(records)
            ring = self._tenants.get(tenant)
            if ring is None:
                ring = self._tenants[tenant] = _TenantRing(
                    self.capacity_per_tenant, self.adaptive_history
                )
            ring.trees.append(tree)
            ring.ticks_recorded += 1
            duration = tree.record.duration
            # the adaptive threshold is computed from the history *before*
            # this tick joins it: an outlier must not raise its own bar
            threshold = self._effective_threshold(ring)
            ring.durations.append(duration)
            if threshold is None or duration < threshold:
                return None
            ring.slow_ticks += 1
            ticks = tree.find("session.tick")
            tick_index = None
            if ticks:
                tick_index = ticks[0].record.attrs.get("tick")
            pinned = PinnedTick(
                tenant,
                tick_index,
                tree.record.duration,
                tree.record.start,
                tree,
                dict(context or {}),
            )
            self._pinned.append(pinned)
            return pinned

    # -- introspection --------------------------------------------------- #
    def recent(self, tenant: str) -> List[SpanTree]:
        """The tenant's retained recent tick span trees, oldest first."""
        with self._lock:
            ring = self._tenants.get(tenant)
            return list(ring.trees) if ring is not None else []

    def pinned(self) -> List[PinnedTick]:
        with self._lock:
            return list(self._pinned)

    def tenants(self) -> List[str]:
        with self._lock:
            return list(self._tenants)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly snapshot for ``QueryService.stats()``."""
        with self._lock:
            tenants = {}
            for name, ring in self._tenants.items():
                row = {
                    "ticks_recorded": ring.ticks_recorded,
                    "slow_ticks": ring.slow_ticks,
                    "recent_tick_ms": [
                        round(t.record.duration * 1e3, 3) for t in ring.trees
                    ],
                }
                if self.adaptive:
                    threshold = self._effective_threshold(ring)
                    row["adaptive_threshold_ms"] = (
                        round(threshold * 1e3, 3) if threshold is not None else None
                    )
                tenants[name] = row
            pinned = [p.to_dict() for p in self._pinned]
        return {
            "slow_tick_threshold": self.slow_tick_threshold,
            "adaptive": self.adaptive,
            "records_seen": self._records_seen,
            "tenants": tenants,
            "pinned_slow_ticks": pinned,
        }

    def to_chrome_trace(self, tenant: Optional[str] = None) -> Dict[str, object]:
        """Everything retained (one tenant, or all) as a Chrome trace doc."""
        records: List[SpanRecord] = []

        def collect(tree: SpanTree) -> None:
            records.append(tree.record)
            for child in tree.children:
                collect(child)

        with self._lock:
            rings = (
                [self._tenants[tenant]]
                if tenant is not None and tenant in self._tenants
                else list(self._tenants.values())
                if tenant is None
                else []
            )
            trees = [t for ring in rings for t in ring.trees]
            trees.extend(p.tree for p in self._pinned)
        for tree in trees:
            collect(tree)
        return to_chrome_trace(records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"FlightRecorder({len(self._tenants)} tenants, "
                f"{len(self._pinned)} pinned)"
            )
