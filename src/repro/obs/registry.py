"""Unified metrics registry: counters, gauges and histograms with exporters.

Before this module, the repo's operational numbers lived in three
disconnected places — :class:`~repro.metrics.streaming.SessionMetrics` per
session, :class:`~repro.metrics.fleet.FleetSnapshot` per service, and
ad-hoc fields on the scheduler/admission objects.  The
:class:`MetricsRegistry` is the single sink they all publish into: every
layer (engine compile cache, executor dispatch, session ticks, incremental
state stores, admission control, scheduler) registers named instruments
here, and one registry snapshot answers "what is the system doing" in
either Prometheus text exposition format (:meth:`MetricsRegistry.to_prometheus`)
or a JSON document (:meth:`MetricsRegistry.to_json`).

Instruments follow the Prometheus data model:

* :class:`Counter` — monotonically increasing total (``*_total`` names);
* :class:`Gauge` — a value that goes up and down (queue depth, tenants);
* :class:`Histogram` — cumulative bucket counts plus sum/count, suitable
  for latency distributions (``repro_tick_seconds`` et al.).

Instruments are identified by ``(name, sorted label items)``; requesting
the same identity returns the same instrument, so call sites do not cache
them (though hot paths may, to skip the dict lookup).  All mutation is a
single GIL-atomic operation or lock-protected, so recording from worker
and scheduler threads is safe.
"""

from __future__ import annotations

import json
import re
import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: default histogram buckets (seconds) — tuned for tick/kernel latencies,
#: sub-millisecond through tens of seconds
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]

#: Prometheus charsets — metric names may use colons (recording rules do),
#: label names may not; both are validated at instrument creation so a bad
#: name fails at the registration site instead of corrupting a scrape
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _validate_name(kind: str, name: str) -> None:
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: must match {_METRIC_NAME_RE.pattern}"
        )
    # unit-suffix conventions: ``_total`` is the counter suffix — a counter
    # without it (or a gauge/histogram with it) misleads every dashboard
    # that relies on the convention
    if kind == "counter" and not name.endswith("_total"):
        raise ValueError(f"counter {name!r} must end with '_total'")
    if kind != "counter" and name.endswith("_total"):
        raise ValueError(f"{kind} {name!r} must not end with '_total' (counters only)")


def _validate_labels(kind: str, name: str, labels: Mapping[str, object]) -> None:
    for label in labels:
        label = str(label)
        if not _LABEL_NAME_RE.match(label):
            raise ValueError(
                f"invalid label name {label!r} on {name!r}: "
                f"must match {_LABEL_NAME_RE.pattern}"
            )
        if label.startswith("__"):
            raise ValueError(f"label {label!r} on {name!r}: '__' prefix is reserved")
        if kind == "histogram" and label == "le":
            raise ValueError(f"label 'le' on {name!r} is reserved for histogram buckets")


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(labels: _LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    """Escape a label value per the exposition format (backslash, quote,
    newline — in that order, so escapes are not double-escaped)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    """HELP text escapes backslash and newline only (quotes stay literal)."""
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


class Counter:
    """Monotonically increasing total (float increments allowed — per-backend
    kernel *seconds* are counters too)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can be set, raised and lowered."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` is O(len(buckets)) with a single lock acquisition; the
    export renders the classic ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triple with cumulative counts.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, labels: _LabelKey, buckets: Sequence[float]):
        self.name = name
        self.labels = labels
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +inf bucket last
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            i = 0
            for bound in self.buckets:
                if value <= bound:
                    break
                i += 1
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ``inf`` last."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.buckets, counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Central, thread-safe home of every instrument in the system.

    ``counter``/``gauge``/``histogram`` create-or-return instruments;
    ``to_prometheus``/``to_json`` export a consistent point-in-time view.
    A metric name is bound to one type and one help string on first use —
    re-registering it as a different type raises, which catches name
    collisions between layers early.
    """

    def __init__(self):
        self._lock = threading.Lock()
        #: name -> (type name, help string)
        self._families: "OrderedDict[str, Tuple[str, str]]" = OrderedDict()
        #: (name, label key) -> instrument
        self._instruments: "OrderedDict[Tuple[str, _LabelKey], object]" = OrderedDict()

    # -- registration ---------------------------------------------------- #
    def _get(self, kind: str, name: str, help: str, labels: Mapping[str, object], **kw):
        key = (name, _label_key(labels))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                _validate_name(kind, name)
                self._families[name] = (kind, help)
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family[0]} "
                    f"(requested {kind})"
                )
            elif help and not family[1]:
                self._families[name] = (kind, help)
            instrument = self._instruments.get(key)
            if instrument is None:
                _validate_labels(kind, name, labels)
                cls = _TYPES[kind]
                instrument = cls(name, key[1], **kw) if kw else cls(name, key[1])
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> Histogram:
        return self._get(
            "histogram", name, help, labels, buckets=buckets or DEFAULT_BUCKETS
        )

    # -- introspection --------------------------------------------------- #
    def families(self) -> Dict[str, Tuple[str, str]]:
        with self._lock:
            return dict(self._families)

    def instruments(self) -> List[object]:
        with self._lock:
            return list(self._instruments.values())

    def _grouped(self):
        """``(name, kind, help, [instruments...])`` in registration order."""
        with self._lock:
            families = list(self._families.items())
            instruments = list(self._instruments.items())
        by_name: Dict[str, List[object]] = {}
        for (name, _), instrument in instruments:
            by_name.setdefault(name, []).append(instrument)
        return [
            (name, kind, help, by_name.get(name, []))
            for name, (kind, help) in families
        ]

    # -- exporters ------------------------------------------------------- #
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name, kind, help, instruments in self._grouped():
            if help:
                lines.append(f"# HELP {name} {_escape_help(help)}")
            lines.append(f"# TYPE {name} {kind}")
            for inst in instruments:
                if kind == "histogram":
                    for bound, count in inst.bucket_counts():
                        le = "+Inf" if bound == float("inf") else _format_value(bound)
                        le_label = 'le="%s"' % le
                        lines.append(
                            f"{name}_bucket"
                            f"{_format_labels(inst.labels, le_label)} {count}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(inst.labels)} {_format_value(inst.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(inst.labels)} {inst.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(inst.labels)} {_format_value(inst.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> Dict[str, object]:
        """JSON-friendly snapshot: ``{name: {type, help, series: [...]}}``."""
        out: Dict[str, object] = {}
        for name, kind, help, instruments in self._grouped():
            series = []
            for inst in instruments:
                labels = dict(inst.labels)
                if kind == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "count": inst.count,
                            "sum": inst.sum,
                            "buckets": [
                                {"le": b, "count": c} for b, c in inst.bucket_counts()
                            ],
                        }
                    )
                else:
                    series.append({"labels": labels, "value": inst.value})
            out[name] = {"type": kind, "help": help, "series": series}
        return out

    def to_json_str(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_json(), sort_keys=True, **dumps_kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return f"MetricsRegistry({len(self._instruments)} instruments)"
