"""Per-tenant SLOs evaluated with multi-window burn-rate logic.

The metrics registry answers "what is the system doing"; this module
answers "is it keeping its promises".  A :class:`SLOSpec` declares what a
tenant is owed — tick latency, output freshness, how much load shedding is
tolerable — and an :class:`SLOMonitor` folds the per-tick observations the
serving layer already produces into a verdict: ``healthy``, ``degraded``
or ``overloaded``.  The verdict drives the ``/healthz`` endpoint of
:mod:`repro.obs.http` (200 vs. 503) and feeds the scheduler's escalation
path, so a tenant burning its freshness budget gets serviced ahead of the
policy before the promise is broken outright.

Evaluation follows the SRE multi-window burn-rate recipe rather than
point-in-time thresholds.  Each objective classifies every observation as
*good* or *bad* (a tick under the latency target, an emit gap under the
freshness target, an accepted vs. a shed event) and grants an error
budget: the fraction of bad observations the SLO tolerates
(``1 - objective`` for ratio objectives, ``max_shed_ratio`` for
shedding).  The **burn rate** is how fast that budget is being spent —
``bad_ratio / budget``, so 1.0 means "exactly on budget" and 10.0 means
"burning ten times faster than sustainable".  An objective *breaches*
only when the burn rate exceeds the spec's threshold over **both** a fast
and a slow sliding window: the slow window keeps a short blip from
paging, the fast window makes the alert reset quickly once the problem
stops (a slow-window-only alert would stay red long after recovery).

Everything here is stdlib-only and clock-injectable, so the serving layer
can drive it with its own monotonic clock and the tests can replay
schedules deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Mapping, Optional, Tuple

__all__ = [
    "SLOSpec",
    "ObjectiveStatus",
    "TenantSLO",
    "SLOBreach",
    "SLOStatus",
    "SLOMonitor",
    "HEALTHY",
    "DEGRADED",
    "OVERLOADED",
]

#: service-level verdicts, in increasing order of distress
HEALTHY = "healthy"
DEGRADED = "degraded"
OVERLOADED = "overloaded"

#: objective names (stable keys in every exported document)
LATENCY = "latency"
FRESHNESS = "freshness"
SHED = "shed"
ERRORS = "errors"


@dataclass(frozen=True)
class SLOSpec:
    """What a tenant is promised.

    Parameters
    ----------
    tick_p99_seconds:
        Latency target: a tick slower than this is a *bad* observation.
        The ``latency_objective`` fraction of ticks must stay under it —
        the spec-level rendering of "tick p99 <= target".  ``None``
        disables the latency objective.
    emit_gap_seconds:
        Freshness target: the wall-clock gap between consecutive emitted
        ticks.  A gap longer than this is a bad observation.  ``None``
        disables the freshness objective.
    max_shed_ratio:
        Error budget of the shedding objective: the sustainable fraction
        of offered events the admission controller may drop.  ``None``
        disables the shedding objective.
    latency_objective / freshness_objective:
        Good-observation fractions promised by the latency / freshness
        objectives (0.99 = "99% of ticks on time"); the error budget is
        one minus this.
    fast_window_seconds / slow_window_seconds:
        The two sliding windows of the burn-rate evaluation; fast must be
        shorter than slow.
    burn_rate_threshold:
        Burn rate (multiple of the sustainable budget spend) past which —
        in *both* windows — an objective breaches.
    """

    tick_p99_seconds: Optional[float] = 0.25
    emit_gap_seconds: Optional[float] = None
    max_shed_ratio: Optional[float] = 0.05
    latency_objective: float = 0.99
    freshness_objective: float = 0.99
    fast_window_seconds: float = 60.0
    slow_window_seconds: float = 300.0
    burn_rate_threshold: float = 6.0

    def __post_init__(self):
        for name in ("tick_p99_seconds", "emit_gap_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")
        if self.max_shed_ratio is not None and not (0.0 < self.max_shed_ratio <= 1.0):
            raise ValueError("max_shed_ratio must be in (0, 1] (or None)")
        for name in ("latency_objective", "freshness_objective"):
            if not (0.0 < getattr(self, name) < 1.0):
                raise ValueError(f"{name} must be in (0, 1)")
        if self.fast_window_seconds <= 0 or self.slow_window_seconds <= 0:
            raise ValueError("window sizes must be positive")
        if self.fast_window_seconds >= self.slow_window_seconds:
            raise ValueError("fast_window_seconds must be < slow_window_seconds")
        if self.burn_rate_threshold <= 0:
            raise ValueError("burn_rate_threshold must be positive")

    @classmethod
    def resolve(cls, slo) -> "SLOSpec":
        """Coerce the service-level ``slo=`` knob into a spec.

        ``True`` means the defaults; a mapping is splatted into the
        constructor; an existing spec passes through.
        """
        if slo is True:
            return cls()
        if isinstance(slo, cls):
            return slo
        if isinstance(slo, Mapping):
            return cls(**slo)
        raise TypeError(
            f"slo must be an SLOSpec, a mapping of its fields, or True "
            f"(got {type(slo).__name__})"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "tick_p99_seconds": self.tick_p99_seconds,
            "emit_gap_seconds": self.emit_gap_seconds,
            "max_shed_ratio": self.max_shed_ratio,
            "latency_objective": self.latency_objective,
            "freshness_objective": self.freshness_objective,
            "fast_window_seconds": self.fast_window_seconds,
            "slow_window_seconds": self.slow_window_seconds,
            "burn_rate_threshold": self.burn_rate_threshold,
        }


class BurnWindow:
    """Good/bad observation counts over one sliding wall-clock window."""

    __slots__ = ("seconds", "_entries", "_good", "_bad")

    def __init__(self, seconds: float):
        self.seconds = float(seconds)
        self._entries: Deque[Tuple[float, int, int]] = deque()
        self._good = 0
        self._bad = 0

    def record(self, now: float, good: int, bad: int) -> None:
        self._entries.append((now, good, bad))
        self._good += good
        self._bad += bad
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.seconds
        entries = self._entries
        while entries and entries[0][0] <= horizon:
            _, good, bad = entries.popleft()
            self._good -= good
            self._bad -= bad

    def bad_ratio(self, now: float) -> float:
        """Fraction of observations in the window that were bad (0 if empty)."""
        self._prune(now)
        total = self._good + self._bad
        return self._bad / total if total else 0.0

    def totals(self, now: float) -> Tuple[int, int]:
        self._prune(now)
        return self._good, self._bad


@dataclass
class ObjectiveStatus:
    """One objective's burn-rate evaluation at a point in time."""

    name: str
    budget: float
    target: Optional[float]
    burn_fast: float
    burn_slow: float
    breached: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "budget": self.budget,
            "target": self.target,
            "burn_fast": round(self.burn_fast, 4),
            "burn_slow": round(self.burn_slow, 4),
            "breached": self.breached,
        }


class _Objective:
    """Burn-rate state of one objective of one tenant."""

    __slots__ = ("name", "budget", "target", "fast", "slow", "breached")

    def __init__(self, name: str, budget: float, target: Optional[float], spec: SLOSpec):
        self.name = name
        self.budget = float(budget)
        self.target = target
        self.fast = BurnWindow(spec.fast_window_seconds)
        self.slow = BurnWindow(spec.slow_window_seconds)
        self.breached = False

    def record(self, now: float, good: int, bad: int) -> None:
        self.fast.record(now, good, bad)
        self.slow.record(now, good, bad)

    def evaluate(self, now: float, threshold: float) -> ObjectiveStatus:
        burn_fast = self.fast.bad_ratio(now) / self.budget
        burn_slow = self.slow.bad_ratio(now) / self.budget
        self.breached = burn_fast >= threshold and burn_slow >= threshold
        return ObjectiveStatus(
            self.name, self.budget, self.target, burn_fast, burn_slow, self.breached
        )


class TenantSLO:
    """All objectives of one tenant, driven by its spec."""

    __slots__ = ("tenant", "spec", "objectives", "failed", "failure")

    def __init__(self, tenant: str, spec: SLOSpec):
        self.tenant = tenant
        self.spec = spec
        self.objectives: Dict[str, _Objective] = {}
        if spec.tick_p99_seconds is not None:
            self.objectives[LATENCY] = _Objective(
                LATENCY, 1.0 - spec.latency_objective, spec.tick_p99_seconds, spec
            )
        if spec.emit_gap_seconds is not None:
            self.objectives[FRESHNESS] = _Objective(
                FRESHNESS, 1.0 - spec.freshness_objective, spec.emit_gap_seconds, spec
            )
        if spec.max_shed_ratio is not None:
            self.objectives[SHED] = _Objective(SHED, spec.max_shed_ratio, None, spec)
        #: a tenant whose query raised is permanently in breach of the
        #: error objective until the monitor is told to forget it — window
        #: decay must not let a dead tenant fade back to healthy
        self.failed = False
        self.failure: Optional[str] = None

    def evaluate(self, now: float) -> Dict[str, ObjectiveStatus]:
        threshold = self.spec.burn_rate_threshold
        statuses = {
            name: obj.evaluate(now, threshold) for name, obj in self.objectives.items()
        }
        statuses[ERRORS] = ObjectiveStatus(
            ERRORS, 0.0, None, 0.0, 0.0, self.failed
        )
        return statuses


@dataclass(frozen=True)
class SLOBreach:
    """An objective transitioning into (or out of) breach."""

    wall_time: float
    tenant: str
    objective: str
    kind: str  # "breach" | "recovery"
    burn_fast: float
    burn_slow: float
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "wall_time": self.wall_time,
            "tenant": self.tenant,
            "objective": self.objective,
            "kind": self.kind,
            "burn_fast": round(self.burn_fast, 4),
            "burn_slow": round(self.burn_slow, 4),
            "detail": self.detail,
        }


@dataclass
class SLOStatus:
    """Point-in-time service-level verdict plus the per-tenant evidence."""

    verdict: str
    evaluated_at: float
    tenants: Dict[str, Dict[str, ObjectiveStatus]] = field(default_factory=dict)
    failed_tenants: List[str] = field(default_factory=list)
    recent_breaches: List[SLOBreach] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return self.verdict == HEALTHY

    def breached(self) -> Dict[str, List[str]]:
        """``{tenant: [breached objective names]}`` (only tenants in breach)."""
        out: Dict[str, List[str]] = {}
        for tenant, objectives in self.tenants.items():
            names = [n for n, s in objectives.items() if s.breached]
            if names:
                out[tenant] = names
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "healthy": self.healthy,
            "evaluated_at": self.evaluated_at,
            "tenants": {
                tenant: {name: s.to_dict() for name, s in objectives.items()}
                for tenant, objectives in self.tenants.items()
            },
            "failed_tenants": list(self.failed_tenants),
            "recent_breaches": [b.to_dict() for b in self.recent_breaches],
        }


class SLOMonitor:
    """Folds serving-layer observations into per-tenant burn-rate state.

    Thread-safe: the scheduling thread records ticks while producer
    threads record ingest outcomes and monitoring threads evaluate.
    ``clock`` must be monotonic (the serving layer injects its own so
    fake-clock tests can replay schedules); breach events additionally
    carry ``time.time()`` wall stamps for logs.
    """

    def __init__(
        self,
        spec: Optional[SLOSpec] = None,
        *,
        clock=time.monotonic,
        registry=None,
        max_breaches: int = 64,
    ):
        self.spec = spec if spec is not None else SLOSpec()
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantSLO] = {}
        self._breaches: Deque[SLOBreach] = deque(maxlen=max_breaches)
        self._m_breaches = (
            registry.counter(
                "repro_slo_breaches_total",
                "Objectives transitioning into breach (multi-window burn rate)",
            )
            if registry is not None
            else None
        )

    # -- tenant lifecycle ------------------------------------------------ #
    def watch(self, tenant: str, spec: Optional[SLOSpec] = None) -> None:
        """Start tracking a tenant (optionally under its own spec)."""
        with self._lock:
            if tenant not in self._tenants:
                self._tenants[tenant] = TenantSLO(tenant, spec or self.spec)

    def forget(self, tenant: str) -> None:
        """Stop tracking a tenant (finished/cancelled — its promises end)."""
        with self._lock:
            self._tenants.pop(tenant, None)

    def tenants(self) -> List[str]:
        with self._lock:
            return list(self._tenants)

    def _state(self, tenant: str) -> TenantSLO:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = TenantSLO(tenant, self.spec)
        return state

    # -- observations ---------------------------------------------------- #
    def record_tick(
        self,
        tenant: str,
        *,
        seconds: float,
        emitted: bool = True,
        emit_gap: Optional[float] = None,
        now: Optional[float] = None,
    ) -> None:
        """One tick of a tenant: its duration, and (when it emitted) the
        wall-clock gap since the previous emission."""
        if now is None:
            now = self._clock()
        with self._lock:
            state = self._state(tenant)
            latency = state.objectives.get(LATENCY)
            if latency is not None:
                bad = 1 if seconds > state.spec.tick_p99_seconds else 0
                latency.record(now, 1 - bad, bad)
            freshness = state.objectives.get(FRESHNESS)
            if freshness is not None and emitted and emit_gap is not None:
                bad = 1 if emit_gap > state.spec.emit_gap_seconds else 0
                freshness.record(now, 1 - bad, bad)

    def record_ingest(
        self,
        tenant: str,
        *,
        accepted: int,
        shed: int,
        now: Optional[float] = None,
    ) -> None:
        """One producer offer: how many events were accepted vs. dropped."""
        if accepted <= 0 and shed <= 0:
            return
        if now is None:
            now = self._clock()
        with self._lock:
            objective = self._state(tenant).objectives.get(SHED)
            if objective is not None:
                objective.record(now, max(0, int(accepted)), max(0, int(shed)))

    def record_failure(
        self, tenant: str, error: Optional[str] = None, now: Optional[float] = None
    ) -> None:
        """The tenant's query raised and it was isolated: a permanent breach
        of the error objective (until the tenant is forgotten)."""
        if now is None:
            now = self._clock()
        with self._lock:
            state = self._state(tenant)
            if state.failed:
                return
            state.failed = True
            state.failure = error or ""
            self._emit_breach(tenant, ERRORS, "breach", 0.0, 0.0, error or "")

    def _emit_breach(
        self,
        tenant: str,
        objective: str,
        kind: str,
        burn_fast: float,
        burn_slow: float,
        detail: str = "",
    ) -> None:
        # caller holds the lock
        self._breaches.append(
            SLOBreach(time.time(), tenant, objective, kind, burn_fast, burn_slow, detail)
        )
        if kind == "breach" and self._m_breaches is not None:
            self._m_breaches.inc()

    # -- evaluation ------------------------------------------------------ #
    def evaluate(self, now: Optional[float] = None) -> SLOStatus:
        """Evaluate every tenant's objectives and derive the service verdict.

        ``overloaded`` when any tenant's shedding objective is in breach
        (the service is dropping more load than the SLO tolerates);
        otherwise ``degraded`` when any latency/freshness/error objective
        is in breach; otherwise ``healthy``.
        """
        if now is None:
            now = self._clock()
        with self._lock:
            tenants: Dict[str, Dict[str, ObjectiveStatus]] = {}
            failed: List[str] = []
            verdict = HEALTHY
            for name, state in self._tenants.items():
                before = {
                    obj_name: obj.breached for obj_name, obj in state.objectives.items()
                }
                statuses = state.evaluate(now)
                tenants[name] = statuses
                if state.failed:
                    failed.append(name)
                for obj_name, status in statuses.items():
                    was = before.get(obj_name)
                    if was is None:
                        continue  # the error objective transitions in record_failure
                    if status.breached and not was:
                        self._emit_breach(
                            name, obj_name, "breach", status.burn_fast, status.burn_slow
                        )
                    elif was and not status.breached:
                        self._emit_breach(
                            name, obj_name, "recovery", status.burn_fast, status.burn_slow
                        )
                for obj_name, status in statuses.items():
                    if not status.breached:
                        continue
                    if obj_name == SHED:
                        verdict = OVERLOADED
                    elif verdict != OVERLOADED:
                        verdict = DEGRADED
            return SLOStatus(
                verdict=verdict,
                evaluated_at=now,
                tenants=tenants,
                failed_tenants=failed,
                recent_breaches=list(self._breaches),
            )

    def urgent_tenants(self, now: Optional[float] = None) -> FrozenSet[str]:
        """Tenants whose breach more scheduler attention could actually fix.

        Freshness and shedding breaches are *scheduling* problems — ticking
        the tenant more often drains its queue and advances its watermark.
        Latency breaches are compute problems and failed tenants are gone;
        escalating either would only starve the rest of the fleet.
        """
        status = self.evaluate(now)
        urgent = set()
        for tenant, objectives in status.tenants.items():
            for name in (FRESHNESS, SHED):
                obj = objectives.get(name)
                if obj is not None and obj.breached:
                    urgent.add(tenant)
        return frozenset(urgent)

    def breaches(self) -> List[SLOBreach]:
        with self._lock:
            return list(self._breaches)

    def healthz(self, now: Optional[float] = None) -> Tuple[int, Dict[str, object]]:
        """``(http_status, body)`` for a health endpoint: 200 only when the
        verdict is ``healthy``, 503 otherwise."""
        status = self.evaluate(now)
        code = 200 if status.healthy else 503
        return code, {
            "status": status.verdict,
            "breached": status.breached(),
            "failed_tenants": list(status.failed_tenants),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return f"SLOMonitor({len(self._tenants)} tenants, {len(self._breaches)} events)"
