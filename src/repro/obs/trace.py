"""Low-overhead structured tracing for the execution stack.

A :class:`Tracer` hands out *spans* — context managers that time one named
stage of work (a tick, a partition map, a kernel invocation) and record a
structured :class:`SpanRecord` (name, wall/CPU time, attributes, parent
linkage) when the stage completes.  Parent linkage is implicit: each thread
keeps a stack of active spans, so nesting ``with`` blocks produces a span
tree without any plumbing through call signatures.

The design goals, in order:

1. **Strict no-op when disabled.**  Tracing off is the production default;
   an untraced tick must not pay for the instrumentation points it crosses.
   :data:`NULL_TRACER` satisfies the same interface with a shared, stateless
   null span — ``span()`` allocates nothing and ``__enter__``/``__exit__``
   do nothing — so instrumentation sites never branch on a flag themselves.
2. **Lock-free-ish recording.**  Finished spans land in a *per-thread*
   bounded ring buffer (``collections.deque`` appends are atomic under the
   GIL); the tracer's lock is taken only when a thread registers its buffer
   on first use and when :meth:`Tracer.drain` collects.  Worker threads of
   the thread-pool backend therefore record concurrently without contending.
3. **Cross-process portability.**  A span record is a plain slotted object
   of primitives; the process backend times its partitions worker-side and
   ships the records back with the result, where :meth:`Tracer.adopt`
   re-parents them under the dispatching span (ids embed the producing pid,
   so adopted records never collide with local ones).

Enable tracing per engine (``TiltEngine(trace=True)``) or globally via the
``REPRO_TRACE=1`` environment variable.  Tracing never alters query output:
the ``REPRO_TRACE=1`` CI matrix entry runs the whole equivalence suite to
pin that down.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "SpanRecord",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "trace_enabled_by_env",
    "make_tracer",
]

#: truthy values accepted by ``REPRO_TRACE`` (mirrors ``REPRO_INCREMENTAL``)
_TRUTHY = ("1", "true", "yes", "on")


def trace_enabled_by_env() -> bool:
    """Whether the ``REPRO_TRACE`` environment variable requests tracing."""
    return os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY


class SpanRecord:
    """One finished span: a named, timed stage with attributes and a parent.

    ``start`` is wall-clock epoch seconds (what the Chrome trace export
    keys on); ``duration``/``cpu_time`` are elapsed ``perf_counter`` /
    ``thread_time`` seconds.  ``span_id``/``parent_id`` are process-unique
    strings embedding the producing pid, so records shipped across a
    process boundary stay unambiguous.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "cpu_time",
        "attrs",
        "thread_id",
        "pid",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        duration: float,
        cpu_time: float,
        attrs: Dict[str, object],
        thread_id: int,
        pid: int,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        self.cpu_time = cpu_time
        self.attrs = attrs
        self.thread_id = thread_id
        self.pid = pid

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly flat rendering (stable keys)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "cpu_time": self.cpu_time,
            "attrs": dict(self.attrs),
            "thread_id": self.thread_id,
            "pid": self.pid,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpanRecord({self.name!r}, {self.duration * 1e3:.3f} ms, "
            f"parent={self.parent_id!r})"
        )


class _NullSpan:
    """The shared do-nothing span of the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: satisfies the tracer interface with pure no-ops.

    Instrumentation points hold a reference to a tracer and call ``span``
    unconditionally; with this tracer the call returns one shared null span
    and records nothing — the disabled fast path is a method call plus a
    ``with`` block, independent of how many attributes the site would have
    recorded.
    """

    enabled = False

    def span(self, name: str, *, parent: Optional[str] = None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current_span_id(self) -> Optional[str]:
        return None

    def adopt(self, records, *, parent: Optional[str] = None) -> None:
        pass

    def drain(self) -> List[SpanRecord]:
        return []

    def snapshot(self) -> List[SpanRecord]:
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: the process-wide disabled tracer (stateless, so one instance suffices)
NULL_TRACER = NullTracer()


class _Span:
    """An active span: a context manager that records itself on exit."""

    __slots__ = ("_tracer", "_state", "name", "span_id", "parent_id", "attrs", "_t0", "_c0", "_wall")

    def __init__(self, tracer: "Tracer", name: str, parent: Optional[str], attrs: Dict[str, object]):
        self._tracer = tracer
        self._state = None
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = parent
        self.attrs = attrs

    def set(self, **attrs) -> "_Span":
        """Attach attributes to the span while it is running."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        state = self._tracer._thread_state()
        self._state = state
        if self.parent_id is None and state.stack:
            self.parent_id = state.stack[-1]
        state.stack.append(self.span_id)
        self._wall = time.time()
        self._c0 = time.thread_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._t0
        cpu = time.thread_time() - self._c0
        state = self._state
        # tolerate exceptions unwinding several spans at once: pop only our
        # own frame (and anything orphaned above it)
        while state.stack and state.stack[-1] != self.span_id:
            state.stack.pop()
        if state.stack:
            state.stack.pop()
        state.buffer.append(
            SpanRecord(
                self.name,
                self.span_id,
                self.parent_id,
                self._wall,
                duration,
                cpu,
                self.attrs,
                threading.get_ident(),
                os.getpid(),
            )
        )
        return False


class _ThreadState:
    __slots__ = ("stack", "buffer")

    def __init__(self, capacity: int):
        self.stack: List[str] = []
        self.buffer: Deque[SpanRecord] = deque(maxlen=capacity)


class Tracer:
    """Collects span records from any number of threads.

    Parameters
    ----------
    max_spans_per_thread:
        Bound on each thread's finished-span ring buffer.  A long-running
        traced session that is never drained keeps only the most recent
        spans instead of growing without limit.
    """

    enabled = True

    def __init__(self, *, max_spans_per_thread: int = 65_536):
        if max_spans_per_thread < 1:
            raise ValueError("max_spans_per_thread must be >= 1")
        self._capacity = int(max_spans_per_thread)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._states: List[_ThreadState] = []
        self._counter = itertools.count(1)

    # -- internals ------------------------------------------------------- #
    def _next_id(self) -> str:
        return f"{os.getpid():x}-{next(self._counter):x}"

    def _thread_state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ThreadState(self._capacity)
            self._local.state = state
            with self._lock:
                self._states.append(state)
        return state

    # -- recording ------------------------------------------------------- #
    def span(self, name: str, *, parent: Optional[str] = None, **attrs) -> _Span:
        """Open a span.  Use as ``with tracer.span("tick.emit", tenant=t):``.

        ``parent`` overrides the implicit parent (the innermost active span
        of the calling thread) — worker threads of a pool pass the
        dispatching span's id explicitly because their own stacks are empty.
        """
        return _Span(self, name, parent, attrs)

    def current_span_id(self) -> Optional[str]:
        """Id of the calling thread's innermost active span, if any."""
        stack = self._thread_state().stack
        return stack[-1] if stack else None

    def adopt(self, records, *, parent: Optional[str] = None) -> None:
        """Append externally produced records (e.g. shipped back from a
        worker process), re-parenting their roots under ``parent`` (default:
        the calling thread's current span)."""
        if not records:
            return
        if parent is None:
            parent = self.current_span_id()
        local_ids = {r.span_id for r in records}
        buffer = self._thread_state().buffer
        for r in records:
            if r.parent_id is None or r.parent_id not in local_ids:
                r.parent_id = parent
            buffer.append(r)

    # -- collection ------------------------------------------------------ #
    def drain(self) -> List[SpanRecord]:
        """Take every finished record out of all thread buffers.

        Records are returned ordered by start time, which interleaves the
        per-thread buffers chronologically.  Active (unfinished) spans are
        untouched — they will appear in a later drain.
        """
        with self._lock:
            states = list(self._states)
        collected: List[SpanRecord] = []
        for state in states:
            buf = state.buffer
            while True:
                try:
                    collected.append(buf.popleft())
                except IndexError:
                    break
        collected.sort(key=lambda r: r.start)
        return collected

    def snapshot(self) -> List[SpanRecord]:
        """A non-destructive copy of all finished records (ordered by start)."""
        with self._lock:
            states = list(self._states)
        collected: List[SpanRecord] = []
        for state in states:
            collected.extend(state.buffer)
        collected.sort(key=lambda r: r.start)
        return collected

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(buffered={len(self.snapshot())})"


def make_tracer(trace) -> "Tracer | NullTracer":
    """Resolve a ``trace`` knob into a tracer instance.

    ``None`` defers to ``REPRO_TRACE``; ``True``/``False`` force a fresh
    :class:`Tracer` / the shared :data:`NULL_TRACER`; an existing tracer
    (anything with a ``span`` method) passes through — engines can share
    one tracer so a service's spans land in a single buffer.
    """
    if trace is None:
        trace = trace_enabled_by_env()
    if trace is True:
        return Tracer()
    if trace is False:
        return NULL_TRACER
    if hasattr(trace, "span"):
        return trace
    raise TypeError(f"trace must be None, bool or a tracer, got {type(trace).__name__}")
