"""The serving layer: multi-tenant streaming query service.

``repro.serve`` multiplexes many tenant queries over one shared
:class:`~repro.core.runtime.engine.TiltEngine`:

* :class:`QueryService` — submit / ingest / results / cancel / stats;
* :mod:`~repro.serve.scheduler` — round-robin and deficit fair-share tick
  scheduling with latency-deadline escalation;
* :mod:`~repro.serve.admission` — tenant and queue limits with shed-or-block
  overload behaviour.

Quickstart::

    from repro.serve import QueryService
    from repro.apps import get_application
    from repro.datagen.sources import sources_for_streams

    service = QueryService(workers=4, policy="fair")
    for i, app in enumerate(["trading", "rsi", "ysb"]):
        a = get_application(app)
        service.submit(a.program(), name=f"{app}-{i}",
                       sources=sources_for_streams(a.streams(5_000, seed=i)))
    service.run_until_idle()
    print(service.stats().format())
"""

from .admission import AdmissionConfig, AdmissionController
from .scheduler import (
    DeficitFairPolicy,
    RoundRobinPolicy,
    SchedulerPolicy,
    TickScheduler,
    make_policy,
)
from .service import QueryService, ServiceStats, TenantSession

__all__ = [
    "QueryService",
    "ServiceStats",
    "TenantSession",
    "SchedulerPolicy",
    "RoundRobinPolicy",
    "DeficitFairPolicy",
    "TickScheduler",
    "make_policy",
    "AdmissionConfig",
    "AdmissionController",
]
