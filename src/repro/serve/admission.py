"""Admission control for the multi-tenant query service.

A shared engine protects itself at two points:

* **tenant admission** — ``submit`` is refused (with
  :class:`~repro.errors.AdmissionError`) once ``max_tenants`` tenants are
  live, so one misbehaving client cannot exhaust the fleet with sessions;
* **ingest admission** — each tenant's pending events are bounded by its
  :class:`~repro.datagen.sources.BoundedIngestQueue` (capacity
  ``max_pending_events``), and the ``overload`` policy decides what happens
  to a batch that does not fit:

  - ``"shed"`` (default): accept the prefix that fits, drop the rest, and
    count the dropped events (visible in fleet stats as ``shed_events``).
    The service stays responsive; overloaded tenants lose data — the
    classic load-shedding trade of a streaming service.
  - ``"block"``: apply backpressure — the producer's ``ingest`` call blocks
    (up to ``block_timeout``) until the scheduler drains the queue.  Nothing
    is dropped; slow consumers slow their producers down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..datagen.sources import QueuedSource
from ..errors import AdmissionError, QueryBuildError

__all__ = ["AdmissionConfig", "AdmissionController"]

_OVERLOAD_POLICIES = ("shed", "block")


@dataclass(frozen=True)
class AdmissionConfig:
    """Static limits and the overload policy of one service."""

    max_tenants: int = 64
    max_pending_events: int = 65_536
    overload: str = "shed"
    #: total deadline for a blocking ingest; ``None`` blocks indefinitely
    block_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_tenants < 1:
            raise QueryBuildError("max_tenants must be >= 1")
        if self.max_pending_events < 1:
            raise QueryBuildError("max_pending_events must be >= 1")
        if self.overload not in _OVERLOAD_POLICIES:
            raise QueryBuildError(
                f"unknown overload policy {self.overload!r}; "
                f"choose from {_OVERLOAD_POLICIES}"
            )


class AdmissionController:
    """Enforces an :class:`AdmissionConfig` and counts what it refused."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self.rejected_tenants = 0

    def admit_tenant(self, live_tenants: int) -> None:
        """Raise :class:`AdmissionError` when the tenant limit is reached."""
        if live_tenants >= self.config.max_tenants:
            self.rejected_tenants += 1
            raise AdmissionError(
                f"tenant limit reached ({self.config.max_tenants}); "
                "cancel or drain an existing tenant first"
            )

    def offer(
        self,
        source: QueuedSource,
        events: Sequence,
        *,
        timeout: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Push an ingest batch through the overload policy.

        Returns ``(accepted, shed)``.  Under ``"shed"`` the push never
        blocks: whatever fits is enqueued and the overflow is dropped —
        the caller records the shed count per tenant.  Under ``"block"``
        the push blocks up to ``timeout``
        (defaulting to the configured ``block_timeout``); events that still
        do not fit when the deadline expires are reported as *unaccepted*,
        not shed — the producer owns them and may retry.
        """
        if self.config.overload == "shed":
            accepted = source.push(events, timeout=0.0)
            return accepted, len(events) - accepted
        if timeout is None:
            timeout = self.config.block_timeout
        accepted = source.push(events, timeout=timeout)
        return accepted, 0
