"""Tick scheduling for the multi-tenant query service.

The serving layer turns many concurrent tenant queries into a stream of
*ticks* — one micro-batch advance of one tenant's
:class:`~repro.core.runtime.session.StreamingSession`.  Ticks from
independent tenants share no state (TiLT's synchronization-free partition
parallelism is per-partition *within* a tick), so scheduling reduces to a
classic single-server discipline: pick which ready tenant advances next.

Two policies are provided:

* :class:`RoundRobinPolicy` — cycle through ready tenants in admission
  order.  Simple and starvation-free, but a tenant whose ticks are 10×
  more expensive receives 10× the engine time of its neighbours.
* :class:`DeficitFairPolicy` — start-time fair queueing on *virtual time*:
  every time a tenant runs, its virtual time advances by its smoothed
  per-tick cost (an EWMA of measured tick seconds) divided by its weight;
  the ready tenant with the smallest virtual time runs next.  Expensive
  tenants therefore run less often, equalizing weighted engine time, and
  weights buy proportionally bigger shares.

:class:`TickScheduler` wraps a policy with the **latency-deadline
escalation** path: a tenant submitted with ``deadline_seconds`` that has
neither emitted nor been serviced within its deadline bypasses the policy
and is scheduled immediately (most-overdue first).  This guarantees a
scheduling attempt within every deadline window — bounding result
staleness whenever the tenant's watermark can advance — without giving
the tenant a permanently larger share: servicing it resets the window
even when no output could be emitted, so a stuck tenant cannot monopolize
the scheduler.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..errors import QueryBuildError

__all__ = [
    "SchedulerPolicy",
    "RoundRobinPolicy",
    "DeficitFairPolicy",
    "TickScheduler",
    "make_policy",
]


class SchedulerPolicy:
    """Strategy interface: order the ready tenants of a service.

    ``select`` receives the ready tenants (never empty) and returns the one
    to advance; ``record`` reports the measured cost of the tick that
    followed.  Policies may annotate tenants via their public scheduling
    fields (``vtime``, ``cost_ewma``, ``weight``, ``index``).
    """

    name = "policy"

    def admit(self, tenant) -> None:
        """A tenant joined the service."""

    def remove(self, tenant) -> None:
        """A tenant finished or was cancelled."""

    def select(self, ready: Sequence):
        raise NotImplementedError

    def record(self, tenant, seconds: float) -> None:
        """The selected tenant's tick took ``seconds`` of engine time."""


class RoundRobinPolicy(SchedulerPolicy):
    """Cycle through ready tenants in admission order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._last_index = -1

    def select(self, ready: Sequence):
        later = [t for t in ready if t.index > self._last_index]
        choice = min(later or ready, key=lambda t: t.index)
        self._last_index = choice.index
        return choice


class DeficitFairPolicy(SchedulerPolicy):
    """Weighted fair sharing of engine time via cost-EWMA virtual time.

    Each tenant carries a virtual time ``vtime``; running a tick charges it
    ``cost_ewma / weight`` where ``cost_ewma`` is an exponentially weighted
    moving average of the tenant's measured tick seconds.  Selecting the
    minimum-``vtime`` ready tenant equalizes weighted busy time: a tenant
    whose ticks cost 10× as much is scheduled ~10× less often, instead of
    receiving 10× the engine time as under round-robin.  Newly admitted
    tenants start at the current virtual clock so they neither starve the
    fleet catching up from zero nor wait behind everyone.

    A tenant's first tick is normally charged blind (``cost_ewma`` starts
    unknown).  When the compiler's static analyzer stamped a per-query cost
    estimate on the tenant (``static_cost`` — window depth × op count, see
    :func:`repro.core.ir.analysis.estimate_static_cost`), admission seeds
    the EWMA from it instead: the policy maintains a fleet-wide EWMA of
    observed *seconds per cost unit* and multiplies the new tenant's
    estimate by it, so an expensive query is charged as expensive from its
    very first tick.  Measured ticks then take over through the ordinary
    EWMA update.
    """

    name = "fair"

    def __init__(self, *, ewma_alpha: float = 0.3) -> None:
        if not (0.0 < ewma_alpha <= 1.0):
            raise QueryBuildError("ewma_alpha must be in (0, 1]")
        self.ewma_alpha = float(ewma_alpha)
        self._vclock = 0.0
        #: fleet-wide observed seconds per static-cost unit (None until the
        #: first measured tick of a tenant that carries an estimate)
        self._cost_scale: Optional[float] = None

    def admit(self, tenant) -> None:
        tenant.vtime = self._vclock
        static = getattr(tenant, "static_cost", 0.0)
        if tenant.cost_ewma is None and static > 0.0 and self._cost_scale is not None:
            tenant.cost_ewma = static * self._cost_scale

    def select(self, ready: Sequence):
        choice = min(ready, key=lambda t: (t.vtime, t.index))
        self._vclock = max(self._vclock, choice.vtime)
        return choice

    def record(self, tenant, seconds: float) -> None:
        if tenant.cost_ewma is None:
            tenant.cost_ewma = float(seconds)
        else:
            tenant.cost_ewma += self.ewma_alpha * (float(seconds) - tenant.cost_ewma)
        tenant.vtime += tenant.cost_ewma / tenant.weight
        static = getattr(tenant, "static_cost", 0.0)
        if static > 0.0:
            scale = float(seconds) / static
            if self._cost_scale is None:
                self._cost_scale = scale
            else:
                self._cost_scale += self.ewma_alpha * (scale - self._cost_scale)


class TickScheduler:
    """A policy plus the deadline-escalation path and dispatch bookkeeping.

    Besides hard per-tenant deadlines, the scheduler accepts a set of
    *urgent* tenants per select — the serving layer passes the tenants
    whose SLO freshness/shedding objectives are currently burning past
    budget (see :meth:`repro.obs.slo.SLOMonitor.urgent_tenants`), so a
    tenant about to break its promise is serviced ahead of the policy
    *before* the breach hardens, not merely after a fixed deadline lapses.
    """

    def __init__(self, policy: SchedulerPolicy):
        self.policy = policy
        self.ticks_dispatched = 0
        self.escalations = 0
        #: escalations taken because of SLO breach state alone (no overdue
        #: hard deadline) — a subset story of ``escalations``
        self.slo_escalations = 0

    def admit(self, tenant) -> None:
        self.policy.admit(tenant)

    def remove(self, tenant) -> None:
        self.policy.remove(tenant)

    @staticmethod
    def _overdue_by(tenant, now: float) -> float:
        """How far past its deadline the tenant is (<= 0: not overdue).

        Staleness is measured from the later of the tenant's last emission
        and its last *service* (a tick that could not emit still counts):
        escalation guarantees an attempt within every deadline window, but a
        tenant whose watermark cannot advance yet does not get re-escalated
        on every single select — which would starve the rest of the fleet.
        """
        served = max(tenant.last_emit_wall, tenant.last_service_wall)
        return now - served - tenant.deadline_seconds

    def select(self, ready: Sequence, now: Optional[float] = None, *, urgent=()):
        """Pick the next tenant: overdue deadlines and urgent (SLO-burning)
        tenants first, then the policy.

        ``urgent`` is a collection of tenant *names*; an urgent tenant is
        escalated like a just-overdue deadline (urgency 0), so genuinely
        overdue deadlines still sort ahead of it.  Servicing resets the
        deadline window as before; urgency clears when the SLO monitor
        observes the objective back under budget.
        """
        if now is None:
            now = time.monotonic()

        def urgency(t) -> float:
            if t.deadline_seconds is not None:
                return self._overdue_by(t, now)
            return 0.0

        overdue: List = [
            t
            for t in ready
            if (t.deadline_seconds is not None and self._overdue_by(t, now) >= 0)
            or (urgent and getattr(t, "name", None) in urgent)
        ]
        if overdue:
            self.escalations += 1
            choice = max(overdue, key=lambda t: (urgency(t), -t.index))
            if not (
                choice.deadline_seconds is not None
                and self._overdue_by(choice, now) >= 0
            ):
                self.slo_escalations += 1
        else:
            choice = self.policy.select(ready)
        self.ticks_dispatched += 1
        return choice

    def record(self, tenant, seconds: float) -> None:
        self.policy.record(tenant, seconds)


#: the built-in policies, by the name accepted by ``QueryService(policy=...)``
POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    DeficitFairPolicy.name: DeficitFairPolicy,
}


def make_policy(name: str) -> SchedulerPolicy:
    """Instantiate a built-in policy by name (``round_robin`` or ``fair``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise QueryBuildError(
            f"unknown scheduler policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
