"""`QueryService`: many tenant queries multiplexed over one `TiltEngine`.

The continuous runtime of :mod:`repro.core.runtime.session` advances *one*
query from a caller-owned loop.  A production service instead hosts many
concurrent queries on shared hardware — the setting TiLT's
synchronization-free partition parallelism was built for: ticks of
independent tenants are embarrassingly parallel work items for one shared
worker pool, and the per-program compile cache makes admission of the
N-th session over a popular query free.

The moving parts:

* :class:`TenantSession` — one submitted query: its
  :class:`~repro.core.runtime.session.StreamingSession`, its input queues
  (push mode) or pull sources, its scheduling state and its uncollected
  output deltas;
* a :class:`~repro.serve.scheduler.TickScheduler` — decides which ready
  tenant advances next (round-robin or deficit fair-share, with
  latency-deadline escalation);
* an :class:`~repro.serve.admission.AdmissionController` — bounds tenant
  count and per-tenant queued events, shedding or blocking on overload;
* fleet metrics — per-tenant :class:`SessionMetrics` aggregated into a
  :class:`~repro.metrics.fleet.FleetSnapshot` (total ev/s, merged latency
  percentiles, queue depths, scheduler fairness index).

Because every tenant runs a real ``StreamingSession``, the service inherits
its correctness contract unchanged: each tenant's concatenated output is
byte-identical to running that query alone — under *any* scheduler policy
and any interleaving (asserted in ``tests/test_service.py``).

Threading model: producers may call ``submit`` / ``ingest`` / ``cancel`` /
``results`` / ``stats`` from any thread; ticks are executed by whoever
calls :meth:`QueryService.step` (or the background thread started with
:meth:`QueryService.start`) — one scheduling thread at a time.  Blocking
ingest (overload policy ``"block"``) never holds the service lock, so
backpressured producers cannot deadlock the scheduler.
"""

from __future__ import annotations

import logging
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..core.runtime.engine import QueryResult, TiltEngine
from ..core.runtime.session import StreamingSession, TickResult
from ..core.runtime.stream import Event
from ..datagen.sources import QueuedSource
from ..errors import ExecutionError, QueryBuildError
from ..metrics.fleet import FleetSnapshot, aggregate_fleet
from ..metrics.streaming import LatencyDistribution
from ..obs.export import to_chrome_trace
from ..obs.http import TelemetryServer
from ..obs.recorder import FlightRecorder
from ..obs.slo import SLOMonitor, SLOSpec, SLOStatus
from .admission import AdmissionConfig, AdmissionController
from .scheduler import SchedulerPolicy, TickScheduler, make_policy

__all__ = ["TenantSession", "ServiceStats", "QueryService"]

#: tenant-isolation failures are reported here (as well as being retained on
#: the failed tenant) — a service embedder points a handler at this logger
_LOG = logging.getLogger("repro.serve")

#: tenant lifecycle states
ACTIVE = "active"
FINISHED = "finished"
CANCELLED = "cancelled"
FAILED = "failed"


class TenantSession:
    """One tenant of a :class:`QueryService`.

    Created by :meth:`QueryService.submit`; not instantiated directly.
    Carries the tenant's streaming session plus everything the service
    layers on top: push-mode input queues, scheduling state (admission
    ``index``, fair-share ``weight`` / ``vtime`` / ``cost_ewma``, optional
    staleness ``deadline_seconds``), pending output deltas, and wall-clock
    emit-gap tracking (the scheduling latency a tenant actually observes,
    as opposed to the compute latency of its ticks).
    """

    def __init__(
        self,
        name: str,
        index: int,
        session: StreamingSession,
        *,
        weight: float,
        deadline_seconds: Optional[float],
        sources: List[object],
        push_sources: Dict[str, QueuedSource],
        now: float,
    ):
        self.name = name
        self.index = index
        self.session = session
        self.weight = float(weight)
        self.deadline_seconds = deadline_seconds
        self.sources = sources
        self.push_sources = push_sources
        self.state = ACTIVE
        self.error: Optional[BaseException] = None
        #: formatted traceback of the failure that moved the tenant to
        #: FAILED — retained because the exception's own traceback chain is
        #: unreachable once the scheduling loop moves on
        self.traceback: Optional[str] = None
        #: scheduling state, maintained by the policy
        self.vtime = 0.0
        self.cost_ewma: Optional[float] = None
        #: static per-tick cost estimate (sum of the compiled kernels'
        #: analyzer cost estimates); lets the fair-share policy seed
        #: ``cost_ewma`` before the first tick is ever measured
        self.static_cost = 0.0
        self.ticks_scheduled = 0
        self.shed_events = 0
        self.admitted_wall = now
        self.last_emit_wall = now
        #: wall time this tenant last received a tick (emitting or not);
        #: deadline escalation measures from max(last emit, last service)
        self.last_service_wall = now
        #: wall-clock gap between consecutive emitted ticks — the staleness
        #: a tenant observes under contention (what fair-share improves)
        self.emit_gaps = LatencyDistribution(capacity=512)
        self._pending: List[TickResult] = []
        #: lazily built kernel/source evidence for flight-recorder pins
        self._flight_context: Optional[Dict[str, object]] = None
        #: the SLO observer subscribed to this tenant's session metrics
        #: (kept so lifecycle transitions can unsubscribe it)
        self._slo_observer = None
        #: False once a tick made no progress and no new input has arrived
        #: since — the scheduler skips the tenant until it is poked.  The
        #: sequence number detects input arriving *during* a tick, so a
        #: concurrent mark cannot be overwritten by the tick's own idle
        #: verdict (lost-wakeup protection).
        self._dirty = True
        self._dirty_seq = 0

    # -- scheduling interface ------------------------------------------- #
    @property
    def ready(self) -> bool:
        """Whether a tick (or the closing flush) would make progress."""
        if self.state != ACTIVE:
            return False
        if self.session.exhausted:
            return True  # only the closing flush remains
        if self._dirty:
            return True
        return self.queue_depth > 0

    @property
    def queue_depth(self) -> int:
        """Events queued for this tenant and not yet ingested.

        Covers any source exposing a ``depth`` (the service-created push
        queues, but also a ``QueuedSource`` passed in as a pull source), so
        externally fed queues keep the tenant ready.
        """
        return sum(getattr(src, "depth", 0) for src in self.sources)

    @property
    def is_push(self) -> bool:
        return bool(self.push_sources)

    def mark_dirty(self) -> None:
        self._dirty = True
        self._dirty_seq += 1

    def close_inputs(self) -> None:
        """Close this tenant's push queues, waking any blocked producer.

        Called whenever the tenant leaves the ready set for good (cancel,
        failure, service shutdown): a producer blocked in a backpressured
        ``ingest`` would otherwise wait forever on a queue nobody will
        drain — instead it gets ``QueueClosedError``.
        """
        for src in self.push_sources.values():
            src.close()

    # -- introspection --------------------------------------------------- #
    def describe(self) -> Dict[str, float]:
        """JSON-friendly per-tenant stats row."""
        m = self.session.metrics
        return {
            "state": self.state,
            "weight": self.weight,
            "ticks_scheduled": float(self.ticks_scheduled),
            "input_events": float(m.input_events),
            "events_per_second": m.throughput,
            "tick_latency_p50": m.latency.p50,
            "tick_latency_p99": m.latency.p99,
            "emit_gap_p50": self.emit_gaps.p50,
            "emit_gap_p99": self.emit_gaps.p99,
            "queue_depth": float(self.queue_depth),
            "shed_events": float(self.shed_events),
            "cost_ewma": float(self.cost_ewma or 0.0),
            "static_cost": float(self.static_cost),
            "watermark": self.session.watermark,
            "error": repr(self.error) if self.error is not None else "",
            "traceback": self.traceback or "",
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TenantSession({self.name!r}, {self.state})"


@dataclass
class ServiceStats:
    """Point-in-time snapshot of a service: scheduler + admission + fleet."""

    policy: str
    ticks_dispatched: int
    escalations: int
    #: escalations taken on SLO breach state alone (subset of ``escalations``)
    slo_escalations: int
    submitted: int
    rejected_tenants: int
    fleet: FleetSnapshot
    tenants: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: flight-recorder snapshot (recent/pinned slow-tick evidence); ``None``
    #: when the service's engine runs with tracing disabled
    flight: Optional[Dict[str, object]] = None
    #: SLO evaluation (verdict, per-tenant burn rates, recent breaches);
    #: ``None`` when the service runs without an SLO spec
    slo: Optional[SLOStatus] = None

    def summary(self) -> Dict[str, object]:
        """Flat JSON-friendly rendering (fleet keys inlined)."""
        out: Dict[str, object] = {
            "policy": self.policy,
            "ticks_dispatched": self.ticks_dispatched,
            "escalations": self.escalations,
            "submitted": self.submitted,
            "rejected_tenants": self.rejected_tenants,
        }
        if self.slo is not None:
            out["slo_verdict"] = self.slo.verdict
            out["slo_escalations"] = self.slo_escalations
        out.update(self.fleet.summary())
        return out

    def format(self) -> str:
        """One-line human-readable rendering for live logs."""
        verdict = f" [{self.slo.verdict}]" if self.slo is not None else ""
        return (
            f"[{self.policy}]{verdict} {self.ticks_dispatched} ticks "
            f"({self.escalations} escalated) | " + self.fleet.format()
        )


class QueryService:
    """Host many tenant queries on one shared :class:`TiltEngine`.

    Parameters
    ----------
    engine:
        The engine to serve on.  When omitted, the service creates (and on
        ``close`` disposes of) its own ``TiltEngine(workers=workers)``.
    workers:
        Worker count for the internally created engine (ignored when
        ``engine`` is given).
    executor_kind:
        Worker-pool backend for the internally created engine
        (``"serial"``/``"thread"``/``"process"``; ``None`` keeps the
        engine's default).  A fleet of compiled tenant queries on the
        ``"process"`` backend scales across cores instead of contending on
        the GIL; tenants whose queries cannot be pickled fall back to
        threads per query.  Ignored when ``engine`` is given.
    codegen_tier:
        Codegen tier for the internally created engine (``"numpy"``,
        ``"native"``, or ``"auto"``; ``None`` keeps the engine's default,
        which honours ``REPRO_CODEGEN``).  Ignored when ``engine`` is
        given.
    policy:
        Scheduler policy: ``"fair"`` (default), ``"round_robin"``, or a
        :class:`~repro.serve.scheduler.SchedulerPolicy` instance.
    max_tenants / max_pending_events / overload / block_timeout:
        Admission control, see :class:`~repro.serve.admission.AdmissionConfig`.
    default_deadline:
        Staleness deadline (seconds) applied to tenants submitted without
        an explicit one; ``None`` disables escalation by default.
    slow_tick_threshold:
        Ticks whose root span exceeds this many seconds are pinned by the
        flight recorder (full span tree + kernel context surfaced through
        :meth:`stats`).  The string ``"adaptive"`` pins relative outliers
        (ticks past a multiple of the tenant's rolling p99) instead of a
        fixed cutoff.  Only meaningful when the engine traces
        (``TiltEngine(trace=True)`` or ``REPRO_TRACE=1``); ``None`` keeps
        the recent-tick rings without pinning.
    flight_capacity:
        Recent tick span trees the flight recorder retains per tenant.
    slo:
        Service-level objectives for the fleet: ``True`` for the default
        :class:`~repro.obs.slo.SLOSpec`, a mapping of its fields, or a
        spec instance.  Enables :meth:`stats`\\ ``.slo``, the breach-driven
        scheduler escalation path, and the ``/healthz``/``/slo`` routes of
        the telemetry endpoint.  ``None`` (default) disables SLO tracking.
    slo_refresh_interval:
        How often (seconds) the scheduling loop re-evaluates SLO breach
        state when picking urgent tenants; evaluation walks every
        objective window, so it is rate-limited off the hot path.
    telemetry_port:
        When not ``None``, start a :class:`~repro.obs.http.TelemetryServer`
        on this port (0 picks an ephemeral one — read it back from
        ``service.telemetry.port``) serving ``/metrics``, ``/healthz``,
        ``/slo``, ``/tenants`` and ``/trace`` for this service.
    telemetry_host:
        Bind address for the telemetry endpoint (loopback by default).
    """

    def __init__(
        self,
        engine: Optional[TiltEngine] = None,
        *,
        workers: int = 4,
        executor_kind: Optional[str] = None,
        codegen_tier: Optional[str] = None,
        policy: Union[str, SchedulerPolicy] = "fair",
        max_tenants: int = 64,
        max_pending_events: int = 65_536,
        overload: str = "shed",
        block_timeout: Optional[float] = None,
        default_deadline: Optional[float] = None,
        clock=time.monotonic,
        slow_tick_threshold: "Optional[Union[float, str]]" = None,
        flight_capacity: int = 16,
        slo=None,
        slo_refresh_interval: float = 0.25,
        telemetry_port: Optional[int] = None,
        telemetry_host: str = "127.0.0.1",
    ):
        self._engine = (
            engine
            if engine is not None
            else TiltEngine(
                workers=workers,
                executor_kind=executor_kind,
                codegen_tier=codegen_tier,
            )
        )
        self._owns_engine = engine is None
        self._tracer = self._engine.tracer
        self._recorder: Optional[FlightRecorder] = (
            FlightRecorder(
                capacity_per_tenant=flight_capacity,
                slow_tick_threshold=slow_tick_threshold,
            )
            if self._tracer.enabled
            else None
        )
        registry = self._engine.registry
        self._m_shed = registry.counter(
            "repro_shed_events_total", "Events dropped by admission overload shedding"
        )
        self._m_rejected = registry.counter(
            "repro_rejected_tenants_total", "Tenant submissions refused by admission"
        )
        self._m_failures = registry.counter(
            "repro_tenant_failures_total", "Tenants moved to FAILED by the isolation boundary"
        )
        self._g_active = registry.gauge(
            "repro_active_tenants", "Tenants currently in the ACTIVE state"
        )
        self._g_queue = registry.gauge(
            "repro_queue_depth", "Events queued service-wide awaiting ingestion"
        )
        self._g_fairness = registry.gauge(
            "repro_fairness_index", "Jain fairness index over weighted tenant busy time"
        )
        # escalation counts are monotonic, so they export as counters (the
        # registry's unit-suffix audit rejects a ``_total``-less gauge for
        # them); stats() pushes deltas since the previous export
        self._c_escalations = registry.counter(
            "repro_scheduler_escalations_total",
            "Deadline/SLO escalations taken by the scheduler",
        )
        self._c_slo_escalations = registry.counter(
            "repro_slo_escalations_total",
            "Escalations taken on SLO breach state alone (no overdue deadline)",
        )
        self._exported_escalations = 0
        self._exported_slo_escalations = 0
        self._h_emit_gap = registry.histogram(
            "repro_emit_gap_seconds",
            "Wall-clock gap between consecutive emitted ticks per tenant",
        )
        if isinstance(policy, str):
            policy = make_policy(policy)
        self._scheduler = TickScheduler(policy)
        self._admission = AdmissionController(
            AdmissionConfig(
                max_tenants=max_tenants,
                max_pending_events=max_pending_events,
                overload=overload,
                block_timeout=block_timeout,
            )
        )
        self._default_deadline = default_deadline
        self._clock = clock
        self._slo: Optional[SLOMonitor] = (
            SLOMonitor(SLOSpec.resolve(slo), clock=clock, registry=registry)
            if slo is not None and slo is not False
            else None
        )
        if slo_refresh_interval < 0:
            raise QueryBuildError("slo_refresh_interval must be >= 0")
        self._slo_refresh = float(slo_refresh_interval)
        self._urgent: frozenset = frozenset()
        self._urgent_at: Optional[float] = None
        self._tenants: Dict[str, TenantSession] = {}
        self._reserved: set = set()  # names admitted but still compiling
        self._counter = 0
        self._submitted = 0
        self._closed = False
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # the telemetry endpoint is wired from plain closures so repro.obs
        # never imports the serving layer; started last so a bind failure
        # cannot leave a half-constructed service holding a socket
        self._telemetry: Optional[TelemetryServer] = None
        if telemetry_port is not None:
            monitor = self._slo
            self._telemetry = TelemetryServer(
                metrics=registry.to_prometheus,
                health=monitor.healthz if monitor is not None else None,
                slo=(
                    (lambda: monitor.evaluate().to_dict())
                    if monitor is not None
                    else None
                ),
                tenants=self._tenants_doc,
                trace=self._trace_doc if self._tracer.enabled else None,
                analyze=self._analysis_doc,
                host=telemetry_host,
                port=telemetry_port,
            ).start()

    # ------------------------------------------------------------------ #
    # tenant lifecycle
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> TiltEngine:
        return self._engine

    @property
    def recorder(self) -> Optional[FlightRecorder]:
        """The flight recorder (``None`` when the engine is not tracing)."""
        return self._recorder

    @property
    def policy_name(self) -> str:
        return self._scheduler.policy.name

    @property
    def slo_monitor(self) -> Optional[SLOMonitor]:
        """The SLO monitor (``None`` when the service has no SLO spec)."""
        return self._slo

    @property
    def telemetry(self) -> Optional[TelemetryServer]:
        """The HTTP telemetry endpoint (``None`` unless ``telemetry_port``)."""
        return self._telemetry

    def _tenants_doc(self) -> Dict[str, object]:
        """Per-tenant stats rows for the ``/tenants`` route."""
        with self._lock:
            tenants = list(self._tenants.items())
        return {name: tenant.describe() for name, tenant in tenants}

    def _trace_doc(self, tenant: Optional[str]) -> Dict[str, object]:
        """Chrome trace document for the ``/trace`` route."""
        if self._recorder is not None:
            return self._recorder.to_chrome_trace(tenant)
        return to_chrome_trace([])

    def _analysis_doc(self, tenant: Optional[str]) -> Dict[str, object]:
        """Static-analysis reports for the ``/analyze`` route.

        Without ``?tenant=`` returns every tenant's report summary; with it,
        that tenant's full finding list (or an ``error`` entry for unknown /
        interpreted-mode tenants, which have no compiled report).
        """
        with self._lock:
            tenants = list(self._tenants.items())
        if tenant is not None:
            match = dict(tenants).get(tenant)
            if match is None:
                return {"error": f"unknown tenant {tenant!r}"}
            report = getattr(
                getattr(match.session, "_compiled", None), "report", None
            )
            if report is None:
                return {"error": f"tenant {tenant!r} has no analysis report"}
            return report.to_dict()
        doc: Dict[str, object] = {}
        for name, t in tenants:
            report = getattr(getattr(t.session, "_compiled", None), "report", None)
            doc[name] = report.summary() if report is not None else None
        return doc

    def tenants(self) -> List[str]:
        """Names of all known tenants (any state), in admission order."""
        with self._lock:
            return list(self._tenants)

    def active_tenants(self) -> List[str]:
        with self._lock:
            return [n for n, t in self._tenants.items() if t.state == ACTIVE]

    def submit(
        self,
        query,
        *,
        name: Optional[str] = None,
        sources: Optional[Sequence[object]] = None,
        weight: float = 1.0,
        deadline: Optional[float] = None,
        retain_output: bool = True,
        max_events_per_tick: Optional[int] = None,
        incremental: Optional[bool] = None,
    ) -> str:
        """Admit a tenant query; returns its tenant name.

        ``query`` is a :class:`TiltProgram`, a pre-compiled
        :class:`CompiledQuery`, or a frontend query DAG (anything with
        ``to_program``) — compilation goes through the engine's shared
        cache, so re-submitting a popular program object is free.

        With ``sources`` the tenant is *pull-fed* (the scheduler polls the
        given :class:`EventSource` objects, e.g. replay or generator
        sources).  Without, the tenant is *push-fed*: the service creates
        one bounded ingest queue per top-level input stream and events
        arrive via :meth:`ingest`.

        ``weight`` buys a proportionally larger share under the fair-share
        policy; ``deadline`` (seconds of wall-clock output staleness)
        escalates the tenant past the policy when overdue.

        ``incremental`` selects per-tick execution for this tenant's
        session — persistent per-kernel window state (O(new events) ticks)
        versus full recompute; ``None`` defers to the engine's setting
        (``REPRO_INCREMENTAL``).
        """
        if hasattr(query, "to_program"):
            query = query.to_program()
        if weight <= 0:
            raise QueryBuildError("tenant weight must be > 0")
        with self._lock:
            if self._closed:
                raise ExecutionError("service is closed")
            # reserved names count as live so concurrent submits cannot
            # overshoot the tenant limit while one of them is compiling
            try:
                self._admission.admit_tenant(
                    len(self.active_tenants()) + len(self._reserved)
                )
            except Exception:
                self._m_rejected.inc()
                raise
            self._counter += 1
            index = self._counter
            tenant_name = name if name is not None else f"tenant-{index}"
            if tenant_name in self._tenants or tenant_name in self._reserved:
                raise QueryBuildError(f"tenant {tenant_name!r} already exists")
            self._reserved.add(tenant_name)
        try:
            push_sources: Dict[str, QueuedSource] = {}
            if sources is None:
                program = query.program if hasattr(query, "program") else query
                top_level = []
                for input_name in program.inputs:
                    stream = input_name.split(".", 1)[0]
                    if stream not in top_level:
                        top_level.append(stream)
                push_sources = {
                    stream: QueuedSource(
                        stream, capacity=self._admission.config.max_pending_events
                    )
                    for stream in top_level
                }
                sources = list(push_sources.values())
            # compilation (through the engine's own lock and cache) happens
            # outside the service lock: a slow compile must not stall
            # scheduling, ingest or stats for the rest of the fleet
            session = self._engine.open_session(
                query,
                list(sources),
                retain_output=retain_output,
                max_events_per_tick=max_events_per_tick,
                incremental=incremental,
                trace_attrs={"tenant": tenant_name},
            )
        except BaseException:
            with self._lock:
                self._reserved.discard(tenant_name)
            raise
        with self._lock:
            self._reserved.discard(tenant_name)
            if self._closed:
                session.abort()
                raise ExecutionError("service is closed")
            tenant = TenantSession(
                tenant_name,
                index,
                session,
                weight=weight,
                deadline_seconds=deadline if deadline is not None else self._default_deadline,
                sources=list(sources),
                push_sources=push_sources,
                now=self._clock(),
            )
            compiled = getattr(session, "_compiled", None)
            if compiled is not None:
                # analyzer cost estimates (window depth × op count) seed the
                # fair-share policy's cost EWMA: admit() converts them to
                # seconds via the fleet's observed seconds-per-cost-unit
                tenant.static_cost = float(
                    sum(k.spec.static_cost for k in compiled.kernels)
                )
            self._tenants[tenant_name] = tenant
            self._scheduler.admit(tenant)
            self._submitted += 1
            if self._slo is not None:
                # observe every tick through the session's own metrics hook:
                # record_tick stays the single write path whether the session
                # runs standalone or under a service.  The callback fires
                # inside session.tick(), before _advance updates
                # last_emit_wall, so the gap it computes is the wall-clock
                # staleness this emission just ended.
                self._slo.watch(tenant_name)

                def _observe(
                    *,
                    input_events,
                    output_snapshots,
                    seconds,
                    emitted,
                    _tenant=tenant,
                    _monitor=self._slo,
                    _clock=self._clock,
                ):
                    gap = _clock() - _tenant.last_emit_wall if emitted else None
                    _monitor.record_tick(
                        _tenant.name, seconds=seconds, emitted=emitted, emit_gap=gap
                    )

                tenant._slo_observer = _observe
                session.metrics.subscribe(_observe)
        self._wake.set()
        return tenant_name

    def _tenant(self, name: str) -> TenantSession:
        try:
            return self._tenants[name]
        except KeyError:
            raise QueryBuildError(f"unknown tenant {name!r}") from None

    # ------------------------------------------------------------------ #
    # push-side ingest
    # ------------------------------------------------------------------ #
    def _push_source(self, name: str, stream: Optional[str]) -> QueuedSource:
        with self._lock:
            tenant = self._tenant(name)
            if not tenant.is_push:
                raise QueryBuildError(
                    f"tenant {name!r} is pull-fed; the service polls its sources"
                )
            if stream is None:
                if len(tenant.push_sources) != 1:
                    raise QueryBuildError(
                        f"tenant {name!r} has inputs {sorted(tenant.push_sources)}; "
                        "pass stream=<name>"
                    )
                return next(iter(tenant.push_sources.values()))
            try:
                return tenant.push_sources[stream]
            except KeyError:
                raise QueryBuildError(
                    f"tenant {name!r} has no input stream {stream!r} "
                    f"(inputs: {sorted(tenant.push_sources)})"
                ) from None

    def ingest(
        self,
        name: str,
        events: Sequence[Event],
        *,
        stream: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Push events to a push-fed tenant; returns the number accepted.

        Overload behaviour follows the service's admission policy: under
        ``"shed"`` the overflow is dropped and counted; under ``"block"``
        this call blocks (without holding any service lock) until the
        scheduler drains the tenant's queue or the timeout expires.
        """
        events = list(events)
        source = self._push_source(name, stream)
        # blocking push must happen outside the lock: the scheduler needs
        # the lock to select the tick that will drain this very queue
        accepted, shed = self._admission.offer(source, events, timeout=timeout)
        if shed:
            self._m_shed.inc(shed)
        if self._slo is not None:
            self._slo.record_ingest(name, accepted=accepted, shed=shed)
        with self._lock:
            tenant = self._tenant(name)
            tenant.shed_events += shed
            if accepted:
                tenant.mark_dirty()
        if accepted:
            self._wake.set()
        return accepted

    def advance_input(self, name: str, t: float, *, stream: Optional[str] = None) -> None:
        """Advance a push-fed input's completeness watermark past a lull
        (promise that no future event will start before ``t``)."""
        source = self._push_source(name, stream)
        source.advance_to(t)
        with self._lock:
            self._tenant(name).mark_dirty()
        self._wake.set()

    def close_input(self, name: str, *, stream: Optional[str] = None) -> None:
        """Declare a push-fed tenant's input(s) complete.

        Once every input is closed and drained the scheduler runs the
        tenant's final flush and marks it finished.  With ``stream=None``
        all of the tenant's inputs are closed.
        """
        with self._lock:
            tenant = self._tenant(name)
            if not tenant.is_push:
                raise QueryBuildError(f"tenant {name!r} is pull-fed")
            targets = (
                list(tenant.push_sources.values())
                if stream is None
                else [self._push_source(name, stream)]
            )
        for source in targets:
            source.close()
        with self._lock:
            tenant.mark_dirty()
        self._wake.set()

    def poke(self, name: str) -> None:
        """Mark an idled tenant ready again.

        A tenant whose tick made no progress is parked until new input is
        observable (service-side ingest, or a queue-backed source gaining
        depth).  A *custom* pull source with no ``depth`` signal cannot be
        observed — its producer calls ``poke`` after making data available.
        """
        with self._lock:
            self._tenant(name).mark_dirty()
        self._wake.set()

    # ------------------------------------------------------------------ #
    # scheduling loop
    # ------------------------------------------------------------------ #
    def _release_slo(self, tenant: TenantSession, *, forget: bool) -> None:
        """Detach a tenant leaving the ready set from SLO tracking.

        ``forget`` drops its burn-rate state entirely (finish/cancel: the
        promise ends with the tenant); a *failed* tenant is kept so its
        error-objective breach persists until the embedder forgets it.
        """
        if self._slo is None:
            return
        if tenant._slo_observer is not None:
            tenant.session.metrics.unsubscribe(tenant._slo_observer)
            tenant._slo_observer = None
        if forget:
            self._slo.forget(tenant.name)

    def _refresh_urgent(self, now: float) -> frozenset:
        """The SLO-urgent tenant set, re-evaluated at most every
        ``slo_refresh_interval`` seconds (evaluation walks every objective
        window of every tenant — too heavy for every single select)."""
        if self._urgent_at is None or now - self._urgent_at >= self._slo_refresh:
            self._urgent = self._slo.urgent_tenants(now)
            self._urgent_at = now
        return self._urgent

    def step(self) -> Optional[TickResult]:
        """Run one scheduling decision: pick a ready tenant, advance it.

        Returns the tick's :class:`TickResult`, or ``None`` when no tenant
        is ready (the service is idle).  Call from a single scheduling
        thread — or use :meth:`start` for a managed background one.
        """
        tracer = self._tracer
        while True:
            step_span = None
            with self._lock:
                if self._closed:
                    raise ExecutionError("service is closed")
                ready = [t for t in self._tenants.values() if t.ready]
                if not ready:
                    return None
                # the step span is opened/closed by hand: it must start
                # under the lock (so scheduler.select nests beneath it) but
                # outlive the lock to cover the tick itself
                step_span = tracer.span("service.step")
                step_span.__enter__()
                try:
                    now = self._clock()
                    urgent = (
                        self._refresh_urgent(now) if self._slo is not None else ()
                    )
                    with tracer.span("scheduler.select", ready=len(ready)) as sel:
                        tenant = self._scheduler.select(ready, now, urgent=urgent)
                        sel.set(tenant=tenant.name)
                    dirty_seq = tenant._dirty_seq
                except BaseException:
                    step_span.__exit__(None, None, None)
                    raise
            try:
                result = self._advance(tenant, dirty_seq)
                step_span.set(tenant=tenant.name, advanced=result is not None)
            finally:
                step_span.__exit__(None, None, None)
            if self._recorder is not None:
                self._record_flight(tenant)
            if result is not None:
                return result
            # the selected tenant failed (or was cancelled mid-flight) and
            # left the ready set — idle only means *no one* is ready

    def _record_flight(self, tenant: TenantSession) -> None:
        """Drain the tracer and fold the tick's spans into the recorder.

        Safe because one scheduling thread runs ticks: everything drained
        here belongs to the step that just ran (plus, at worst, compile
        spans from a concurrent submit — the recorder roots the tick tree
        at the ``session.tick`` span, so those ride along harmlessly).
        """
        records = self._tracer.drain()
        if not records:
            return
        # kernel/source context is computed once per tenant (digesting a
        # spec pickles it) and shared by every pin of that tenant
        context = tenant._flight_context
        if context is None:
            context = tenant._flight_context = self._flight_context(tenant)
        pinned = self._recorder.record_tick(tenant.name, records, context=context)
        if pinned is not None:
            _LOG.warning(
                "slow tick pinned: tenant=%s tick=%s duration=%.1f ms",
                pinned.tenant,
                pinned.tick_index,
                pinned.duration * 1e3,
            )

    @staticmethod
    def _flight_context(tenant: TenantSession) -> Dict[str, object]:
        """Kernel/source evidence attached to this tenant's pinned ticks."""
        compiled = getattr(tenant.session, "_compiled", None)
        if compiled is None:
            return {"output": tenant.session.program.output, "mode": "interpreted"}
        kernels: Dict[str, str] = {}
        for k in compiled.kernels:
            try:
                kernels[k.name] = k.spec.digest()[:12]
            except Exception:  # unpicklable custom aggregates have no digest
                kernels[k.name] = "unpicklable"
        return {
            "output": compiled.output,
            "incremental": tenant.session.incremental,
            "kernels": kernels,
            "codegen_tiers": dict(compiled.codegen_tiers),
            "generated_source": compiled.sources(),
            # static-analysis rollup (finding counts by code) so a pinned
            # slow tick carries the query's bounds proof / cost evidence
            "analysis": (
                compiled.report.summary() if compiled.report is not None else None
            ),
        }

    def _advance(self, tenant: TenantSession, dirty_seq: int) -> Optional[TickResult]:
        session = tenant.session
        try:
            if session.exhausted:
                result = session.close(drain=True)
                finished = True
            else:
                result = session.tick()
                finished = False
        except Exception as exc:  # noqa: BLE001 - tenant isolation boundary
            formatted = traceback_module.format_exc()
            with self._lock:
                if tenant.state == CANCELLED:
                    return None  # cancelled between select and tick
                # tenant isolation: one tenant's failing query (bad data,
                # out-of-order push, a broken custom source) must not take
                # down the scheduling loop or starve the other tenants —
                # mark it failed, keep its emitted output collectable,
                # release its producers, move on.  The failure is *not*
                # silent: the formatted traceback is retained on the tenant
                # (surfaced by describe()/stats()) and reported through the
                # ``repro.serve`` logger.
                tenant.error = exc
                tenant.traceback = formatted
                tenant.state = FAILED
                tenant.session.abort()
                tenant.close_inputs()
                self._scheduler.remove(tenant)
                self._m_failures.inc()
                # a failed tenant stays *watched* (its error objective is a
                # permanent breach driving /healthz to 503) but stops
                # feeding observations
                self._release_slo(tenant, forget=False)
            if self._slo is not None:
                self._slo.record_failure(tenant.name, error=repr(exc))
            _LOG.error(
                "tenant %r failed during tick %d and was isolated: %r",
                tenant.name,
                tenant.ticks_scheduled,
                exc,
                exc_info=exc,
                extra={
                    "tenant": tenant.name,
                    "tick": tenant.ticks_scheduled,
                    "tenant_error": repr(exc),
                },
            )
            return None
        now = self._clock()
        with self._lock:
            tenant.ticks_scheduled += 1
            tenant.last_service_wall = now
            self._scheduler.record(tenant, result.elapsed_seconds)
            if finished:
                tenant.state = FINISHED
                self._scheduler.remove(tenant)
                self._release_slo(tenant, forget=True)
            elif not result.events_ingested and not result.emitted:
                if session.exhausted:
                    tenant.mark_dirty()  # flush on the next turn
                elif tenant._dirty_seq == dirty_seq:
                    # idle until new input arrives; skipped when input was
                    # marked mid-tick (the verdict would be stale)
                    tenant._dirty = False
            if result.emitted:
                gap = now - tenant.last_emit_wall
                tenant.emit_gaps.record(gap)
                self._h_emit_gap.observe(gap)
                tenant.last_emit_wall = now
                tenant._pending.append(result)
        return result

    def run_until_idle(self, max_ticks: Optional[int] = None) -> int:
        """Step until no tenant is ready; returns the number of ticks run.

        A tenant over an unbounded pull source is always ready — bound the
        loop with ``max_ticks`` (or :meth:`cancel` the tenant) in that case.
        """
        ticks = 0
        while max_ticks is None or ticks < max_ticks:
            if self.step() is None:
                break
            ticks += 1
        return ticks

    def start(self, *, idle_wait: float = 0.005) -> None:
        """Run the scheduling loop on a background thread until ``stop``."""
        with self._lock:
            if self._closed:
                raise ExecutionError("service is closed")
            if self._thread is not None:
                raise ExecutionError("service is already running")
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._serve_loop, args=(idle_wait,), daemon=True
            )
            self._thread.start()

    def _serve_loop(self, idle_wait: float) -> None:
        while not self._stop.is_set():
            if self.step() is None:
                self._wake.wait(idle_wait)
                self._wake.clear()

    def stop(self) -> None:
        """Halt the background scheduling loop (tenants stay live)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        self._wake.set()
        thread.join()
        self._thread = None

    # ------------------------------------------------------------------ #
    # results and cancellation
    # ------------------------------------------------------------------ #
    def results(self, name: str) -> List[TickResult]:
        """Drain the tenant's emitted-but-uncollected output deltas."""
        with self._lock:
            tenant = self._tenant(name)
            pending, tenant._pending = tenant._pending, []
            return pending

    def result(self, name: str) -> QueryResult:
        """The tenant's cumulative output so far (needs ``retain_output``)."""
        with self._lock:
            tenant = self._tenant(name)
        return tenant.session.result()

    def cancel(self, name: str) -> bool:
        """Abort a tenant: no further ticks, no final flush.

        Already-emitted deltas remain collectable via :meth:`results` /
        :meth:`result`.  Returns False when the tenant had already finished
        or was already cancelled.
        """
        with self._lock:
            tenant = self._tenant(name)
            if tenant.state != ACTIVE:
                return False
            tenant.session.abort()
            tenant.state = CANCELLED
            tenant.close_inputs()  # wake any producer blocked in ingest
            self._scheduler.remove(tenant)
            self._release_slo(tenant, forget=True)
        self._wake.set()
        return True

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """Fleet snapshot: scheduler, admission, and aggregated metrics."""
        with self._lock:
            tenants = list(self._tenants.items())
            active = [n for n, t in tenants if t.state == ACTIVE]
            policy = self._scheduler.policy.name
            ticks_dispatched = self._scheduler.ticks_dispatched
            escalations = self._scheduler.escalations
            slo_escalations = self._scheduler.slo_escalations
            submitted = self._submitted
            rejected = self._admission.rejected_tenants
            # escalation totals export as counters: push the delta since
            # the previous stats() call
            esc_delta = escalations - self._exported_escalations
            self._exported_escalations = escalations
            slo_esc_delta = slo_escalations - self._exported_slo_escalations
            self._exported_slo_escalations = slo_escalations
        # the heavy part — copying and merging every tenant's latency
        # sample window — runs outside the service lock (the per-metric
        # locks make the reads safe), so monitoring never stalls the
        # scheduling loop
        fleet = aggregate_fleet(
            {n: t.session.metrics for n, t in tenants},
            active=active,
            weights={n: t.weight for n, t in tenants},
            queue_depths={n: t.queue_depth for n, t in tenants},
            shed_events={n: t.shed_events for n, t in tenants},
        )
        # push the point-in-time fleet numbers into the registry gauges so
        # a Prometheus scrape of engine.registry sees the serving layer too
        self._g_active.set(float(fleet.active_tenants))
        self._g_queue.set(float(fleet.queue_depth))
        self._g_fairness.set(fleet.fairness)
        if esc_delta > 0:
            self._c_escalations.inc(esc_delta)
        if slo_esc_delta > 0:
            self._c_slo_escalations.inc(slo_esc_delta)
        return ServiceStats(
            policy=policy,
            ticks_dispatched=ticks_dispatched,
            escalations=escalations,
            slo_escalations=slo_escalations,
            submitted=submitted,
            rejected_tenants=rejected,
            fleet=fleet,
            tenants={n: t.describe() for n, t in tenants},
            flight=self._recorder.summary() if self._recorder is not None else None,
            slo=self._slo.evaluate() if self._slo is not None else None,
        )

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop scheduling, abort live tenants, release an owned engine.

        An engine passed in by the caller is left open (they own it);
        an internally created one is closed.
        """
        self.stop()
        if self._telemetry is not None:
            self._telemetry.close()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for tenant in self._tenants.values():
                if tenant.state == ACTIVE:
                    tenant.session.abort()
                    tenant.state = CANCELLED
                    tenant.close_inputs()
                    self._scheduler.remove(tenant)
                    self._release_slo(tenant, forget=True)
        if self._owns_engine:
            self._engine.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            n = len(self._tenants)
            active = len([t for t in self._tenants.values() if t.state == ACTIVE])
        state = "closed" if self._closed else f"{active}/{n} tenants active"
        return f"QueryService(policy={self.policy_name!r}, {state})"
