"""Baseline stream processing engines (event-centric comparators).

Four engines modelled on the systems the paper evaluates against:

* :class:`~repro.spe.trill.TrillEngine` — interpreted, micro-batched, full
  operator coverage, partitioned-stream parallelism only;
* :class:`~repro.spe.streambox.StreamBoxEngine` — interpreted, pipeline/data
  parallel, O(n²) temporal join;
* :class:`~repro.spe.grizzly.GrizzlyEngine` — vectorized aggregation-only
  engine with shared (locked) aggregation state;
* :class:`~repro.spe.lightsaber.LightSaberEngine` — vectorized
  aggregation-only engine with pane-based parallel aggregation.

All engines consume the same frontend query DAG (``repro.core.frontend``),
so every application in ``repro.apps`` is written exactly once and runs on
any engine that supports its operators.
"""

from .grizzly import GrizzlyEngine
from .lightsaber import LightSaberEngine
from .streambox import StreamBoxEngine
from .trill import TrillEngine

__all__ = ["TrillEngine", "StreamBoxEngine", "GrizzlyEngine", "LightSaberEngine"]
