"""Shared infrastructure of the baseline (event-centric) engines."""

from .batches import ColumnarBatch, batches_from_stream, stream_from_batches
from .expreval import eval_event_expr
from .operators import (
    ChopOperator,
    MergeJoinOperator,
    NestedLoopJoinOperator,
    SelectOperator,
    ShiftOperator,
    StatefulOperator,
    WhereOperator,
    WindowAggregateOperator,
)

__all__ = [
    "ColumnarBatch",
    "batches_from_stream",
    "stream_from_batches",
    "eval_event_expr",
    "StatefulOperator",
    "SelectOperator",
    "WhereOperator",
    "ShiftOperator",
    "ChopOperator",
    "WindowAggregateOperator",
    "MergeJoinOperator",
    "NestedLoopJoinOperator",
]
