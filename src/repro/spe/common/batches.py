"""Columnar micro-batches for the interpreted baseline engines.

Trill processes events in columnar micro-batches handed from operator to
operator; the batch size is the knob behind the latency/throughput trade-off
measured in Figure 9 of the paper.  A batch stores start/end/payload columns
as NumPy arrays; operators may process it column-wise (the Grizzly-like and
LightSaber-like engines) or event-by-event (the Trill-like and StreamBox-like
engines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from ...core.runtime.stream import Event, EventStream

__all__ = ["ColumnarBatch", "batches_from_stream", "stream_from_batches"]


@dataclass
class ColumnarBatch:
    """A micro-batch of events in columnar form."""

    starts: np.ndarray
    ends: np.ndarray
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.starts)

    def __iter__(self) -> Iterator[Event]:
        for s, e, v in zip(self.starts, self.ends, self.values):
            yield Event(float(s), float(e), float(v))

    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "ColumnarBatch":
        return cls(
            starts=np.array([e.start for e in events], dtype=np.float64),
            ends=np.array([e.end for e in events], dtype=np.float64),
            values=np.array([e.value() for e in events], dtype=np.float64),
        )

    @classmethod
    def empty(cls) -> "ColumnarBatch":
        return cls(np.empty(0), np.empty(0), np.empty(0))

    def to_events(self) -> List[Event]:
        return list(self)


def batches_from_stream(stream: EventStream, batch_size: int) -> List[ColumnarBatch]:
    """Split a stream into fixed-size columnar micro-batches."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    events = stream.events
    return [
        ColumnarBatch.from_events(events[i : i + batch_size])
        for i in range(0, len(events), batch_size)
    ]


def stream_from_batches(batches: Sequence[ColumnarBatch], name: str = "output") -> EventStream:
    """Concatenate micro-batches back into an event stream."""
    events: List[Event] = []
    for batch in batches:
        events.extend(batch.to_events())
    events.sort(key=lambda e: (e.start, e.end))
    return EventStream(events, name=name, check_order=False)
