"""Per-event scalar expression evaluation for the interpreted baselines.

The frontend expresses Select/Where/Join payload functions as TiLT scalar
expressions over placeholders (``PAYLOAD``, ``LEFT``, ``RIGHT``).  The
event-centric baseline engines evaluate those expressions one event at a
time by walking the expression tree — precisely the per-event interpretation
overhead the paper attributes to engines like Trill, and the reason the
baselines are slow relative to TiLT's generated kernels.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...core.codegen.interpreter import evaluate_expr_at
from ...core.ir.nodes import Expr

__all__ = ["eval_event_expr"]

_EMPTY_ENV: Dict = {}


def eval_event_expr(expr: Expr, bindings: Dict[str, Tuple[float, bool]]) -> Tuple[float, bool]:
    """Evaluate a payload expression for a single event.

    ``bindings`` maps placeholder variable names (e.g. ``"%payload"``) to
    ``(value, valid)`` pairs.  Returns ``(value, valid)``; an invalid result
    means the event is dropped (φ).
    """
    return evaluate_expr_at(expr, 0.0, _EMPTY_ENV, bindings)
