"""Stateful, event-centric physical operators.

These are the building blocks of the interpreted baseline engines (the
Trill-like and StreamBox-like SPEs).  Each operator follows the classic
iterator/push model the paper describes in Section 3: it receives events (in
micro-batches), updates its internal state, and emits output events to the
next operator in the data-flow graph.  All per-event work happens in Python,
including the per-event evaluation of user expressions — the interpretation
overhead that compiler-based engines eliminate.

Operator state is explicit so that queries can be executed batch-by-batch
(the streaming execution mode used for the latency-bounded throughput study,
Figure 9): ``process`` consumes one input batch, ``flush`` drains any
remaining state at end-of-stream.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ...core.ir.nodes import Expr
from ...core.runtime.stream import Event
from ...errors import UnsupportedOperationError
from ...windowing.functions import AggregateFunction
from .expreval import eval_event_expr

__all__ = [
    "StatefulOperator",
    "SelectOperator",
    "WhereOperator",
    "ShiftOperator",
    "ChopOperator",
    "WindowAggregateOperator",
    "MergeJoinOperator",
    "NestedLoopJoinOperator",
    "coalesce_events",
]

PAYLOAD_VAR = "%payload"
LEFT_VAR = "%left"
RIGHT_VAR = "%right"


class StatefulOperator:
    """Base class: single-input stateful operator."""

    def process(self, events: Sequence[Event]) -> List[Event]:
        """Consume a batch of in-order events, return output events."""
        raise NotImplementedError

    def flush(self) -> List[Event]:
        """Drain remaining state at end-of-stream."""
        return []


class SelectOperator(StatefulOperator):
    """Per-event projection: evaluates the payload expression on every event."""

    def __init__(self, expr: Expr):
        self.expr = expr

    def process(self, events: Sequence[Event]) -> List[Event]:
        out: List[Event] = []
        for e in events:
            value, ok = eval_event_expr(self.expr, {PAYLOAD_VAR: (e.value(), True)})
            if ok:
                out.append(Event(e.start, e.end, value))
        return out


class WhereOperator(StatefulOperator):
    """Per-event filter: keeps events whose payload satisfies the predicate."""

    def __init__(self, predicate: Expr):
        self.predicate = predicate

    def process(self, events: Sequence[Event]) -> List[Event]:
        out: List[Event] = []
        for e in events:
            keep, ok = eval_event_expr(self.predicate, {PAYLOAD_VAR: (e.value(), True)})
            if ok and keep != 0:
                out.append(e)
        return out


class ShiftOperator(StatefulOperator):
    """Delays every event's validity interval by a fixed number of seconds."""

    def __init__(self, delay: float):
        self.delay = float(delay)

    def process(self, events: Sequence[Event]) -> List[Event]:
        return [Event(e.start + self.delay, e.end + self.delay, e.payload) for e in events]


class ChopOperator(StatefulOperator):
    """Splits event intervals at multiples of ``period`` seconds."""

    def __init__(self, period: float):
        if period <= 0:
            raise UnsupportedOperationError("chop period must be positive")
        self.period = float(period)

    def process(self, events: Sequence[Event]) -> List[Event]:
        out: List[Event] = []
        eps = self.period * 1e-9
        for e in events:
            start = e.start
            while start < e.end - eps:
                boundary = math.floor(start / self.period) * self.period + self.period
                if boundary <= start + eps:
                    boundary += self.period
                end = min(boundary, e.end)
                out.append(Event(start, end, e.payload))
                start = end
        return out


class WindowAggregateOperator(StatefulOperator):
    """Sliding/tumbling window aggregation over an in-order event stream.

    Maintains a buffer of events that may still contribute to an open window
    and emits a result for every window end ``g`` (a multiple of ``stride``)
    once an arriving event proves that no further events can land in that
    window.  Window results carry the validity interval ``(g - stride, g]``
    and windows with no events emit nothing, matching the TiLT semantics so
    that cross-engine results are comparable.
    """

    def __init__(
        self,
        size: float,
        stride: float,
        agg: AggregateFunction,
        element: Optional[Expr] = None,
    ):
        self.size = float(size)
        self.stride = float(stride)
        self.agg = agg
        self.element = element
        self._buffer: Deque[Event] = deque()
        self._next_grid: Optional[float] = None

    # ------------------------------------------------------------------ #
    def process(self, events: Sequence[Event]) -> List[Event]:
        out: List[Event] = []
        for e in events:
            if self._next_grid is None:
                self._next_grid = math.floor(e.start / self.stride) * self.stride + self.stride
            # any window ending at or before this event's start is now final
            while self._next_grid is not None and e.start >= self._next_grid:
                out.extend(self._emit_window(self._next_grid))
                self._next_grid += self.stride
            self._buffer.append(e)
        return out

    def flush(self) -> List[Event]:
        out: List[Event] = []
        if self._next_grid is None:
            return out
        last_end = max((e.end for e in self._buffer), default=self._next_grid)
        # emit every window that overlaps buffered data, i.e. whose start lies
        # before the end of the last buffered event.
        while self._next_grid - self.stride < last_end:
            out.extend(self._emit_window(self._next_grid))
            self._next_grid += self.stride
        return out

    # ------------------------------------------------------------------ #
    def _emit_window(self, grid_end: float) -> List[Event]:
        ws = grid_end - self.size
        # evict events that can no longer contribute to any window >= grid_end
        while self._buffer and self._buffer[0].end <= ws:
            self._buffer.popleft()
        values: List[float] = []
        for e in self._buffer:
            if e.end > ws and e.start < grid_end:
                v = e.value()
                if self.element is not None:
                    v, ok = eval_event_expr(self.element, {PAYLOAD_VAR: (v, True)})
                    if not ok:
                        continue
                values.append(v)
        result, ok = self.agg.fold(values)
        if not ok:
            return []
        return [Event(grid_end - self.stride, grid_end, result)]


def coalesce_events(left: Sequence[Event], right: Sequence[Event]) -> List[Event]:
    """Left-preferring temporal merge of two in-order event sequences.

    Emits the left events unchanged, plus the portions of right events not
    covered by any left event.  Used by the baseline engines to implement the
    frontend Coalesce operator (the imputation query).
    """
    out: List[Event] = list(left)
    left_sorted = sorted(left, key=lambda e: e.start)
    for r in right:
        gaps = [(r.start, r.end)]
        for l in left_sorted:
            if l.end <= r.start:
                continue
            if l.start >= r.end:
                break
            new_gaps: List[Tuple[float, float]] = []
            for gs, ge in gaps:
                if l.end <= gs or l.start >= ge:
                    new_gaps.append((gs, ge))
                    continue
                if l.start > gs:
                    new_gaps.append((gs, l.start))
                if l.end < ge:
                    new_gaps.append((l.end, ge))
            gaps = new_gaps
            if not gaps:
                break
        for gs, ge in gaps:
            if ge > gs:
                out.append(Event(gs, ge, r.payload))
    out.sort(key=lambda e: (e.start, e.end))
    return out


class _JoinState:
    """Shared state/logic of the two join implementations."""

    def __init__(self, expr: Expr):
        self.expr = expr
        self.left: List[Event] = []
        self.right: List[Event] = []
        self.left_wm = -math.inf
        self.right_wm = -math.inf

    def payload(self, l: Event, r: Event) -> Tuple[float, bool]:
        return eval_event_expr(
            self.expr, {LEFT_VAR: (l.value(), True), RIGHT_VAR: (r.value(), True)}
        )

    @staticmethod
    def overlap(l: Event, r: Event) -> Optional[Tuple[float, float]]:
        start = max(l.start, r.start)
        end = min(l.end, r.end)
        if end > start:
            return (start, end)
        return None

    def evict(self) -> None:
        wm = min(self.left_wm, self.right_wm)
        self.left = [e for e in self.left if e.end > wm]
        self.right = [e for e in self.right if e.end > wm]


class MergeJoinOperator:
    """Temporal join using an in-order sweep (the Trill-style O(n) join).

    ``process_left`` / ``process_right`` accept batches from either side; the
    operator joins each newly arrived event against the buffered events of
    the other side, then evicts events that can no longer overlap anything.
    """

    def __init__(self, expr: Expr):
        self._state = _JoinState(expr)

    def process_left(self, events: Sequence[Event]) -> List[Event]:
        return self._process(events, left_side=True)

    def process_right(self, events: Sequence[Event]) -> List[Event]:
        return self._process(events, left_side=False)

    def flush(self) -> List[Event]:
        return []

    def _process(self, events: Sequence[Event], left_side: bool) -> List[Event]:
        st = self._state
        out: List[Event] = []
        own = st.left if left_side else st.right
        other = st.right if left_side else st.left
        for e in events:
            if left_side:
                st.left_wm = max(st.left_wm, e.start)
            else:
                st.right_wm = max(st.right_wm, e.start)
            # in-order merge: other-side events are sorted by start; skip the
            # prefix that ends before this event starts.
            for o in other:
                if o.end <= e.start:
                    continue
                if o.start >= e.end:
                    break
                pair = (e, o) if left_side else (o, e)
                window = st.overlap(*pair)
                if window is None:
                    continue
                value, ok = st.payload(*pair)
                if ok:
                    out.append(Event(window[0], window[1], value))
            own.append(e)
        st.evict()
        out.sort(key=lambda ev: (ev.start, ev.end))
        return out


class NestedLoopJoinOperator(MergeJoinOperator):
    """Temporal join with an all-pairs scan (the StreamBox-style O(n²) join).

    Identical results to :class:`MergeJoinOperator` but compares every new
    event against *every* buffered event of the other side without exploiting
    event order, and keeps a much larger buffer because it only evicts
    lazily.  This reproduces the quadratic join cost the paper measures for
    StreamBox (Section 7.1).
    """

    #: evict only when the buffer exceeds this many events (lazy eviction)
    EVICTION_THRESHOLD = 4096

    def _process(self, events: Sequence[Event], left_side: bool) -> List[Event]:
        st = self._state
        out: List[Event] = []
        own = st.left if left_side else st.right
        other = st.right if left_side else st.left
        for e in events:
            if left_side:
                st.left_wm = max(st.left_wm, e.start)
            else:
                st.right_wm = max(st.right_wm, e.start)
            for o in other:  # no ordering assumptions: full scan
                pair = (e, o) if left_side else (o, e)
                window = st.overlap(*pair)
                if window is None:
                    continue
                value, ok = st.payload(*pair)
                if ok:
                    out.append(Event(window[0], window[1], value))
            own.append(e)
        if len(st.left) + len(st.right) > self.EVICTION_THRESHOLD:
            st.evict()
        out.sort(key=lambda ev: (ev.start, ev.end))
        return out
