"""Vectorized (batch-at-a-time) evaluation of frontend scalar expressions.

The compiler-based baselines (the Grizzly-like and LightSaber-like engines)
process whole micro-batches at once rather than event-by-event, so their
Select/Where expressions are evaluated over NumPy arrays.  This is a small
recursive evaluator over the TiLT scalar expression nodes; it has the same
φ-propagation semantics as the scalar evaluator in
:mod:`repro.spe.common.expreval`, returning a ``(values, valid)`` array pair.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ...core.ir.nodes import (
    BinOp,
    Call,
    Coalesce,
    Const,
    Expr,
    IfThenElse,
    IsValid,
    Let,
    Phi,
    UnaryOp,
    Var,
)
from ...core.ops import (
    NUMPY_BINOP_DOMAIN,
    NUMPY_BINOPS,
    NUMPY_CALL_DOMAIN,
    NUMPY_CALLS,
    NUMPY_UNOP_DOMAIN,
    NUMPY_UNOPS,
)
from ...errors import ExecutionError

__all__ = ["eval_expr_vectorized"]

ArrayResult = Tuple[np.ndarray, np.ndarray]


def _apply_template(template: str, **arrays: np.ndarray) -> np.ndarray:
    # The NumPy operator templates in repro.core.ops are written for the code
    # generator; here we evaluate them directly with a restricted namespace.
    namespace = {"_np": np}
    namespace.update(arrays)
    return eval(template.format(**{k: k for k in arrays}), namespace)  # noqa: S307


def _apply_call_template(template: str, args) -> np.ndarray:
    names = {f"a{i}": arg for i, arg in enumerate(args)}
    namespace = {"_np": np}
    namespace.update(names)
    return eval(template.format(*names.keys()), namespace)  # noqa: S307


def eval_expr_vectorized(expr: Expr, bindings: Dict[str, ArrayResult], n: int) -> ArrayResult:
    """Evaluate ``expr`` over arrays of length ``n``.

    ``bindings`` maps placeholder variable names to ``(values, valid)`` array
    pairs (e.g. ``{"%payload": (payloads, ones)}``).
    """
    if isinstance(expr, Const):
        return np.full(n, expr.value), np.ones(n, dtype=bool)
    if isinstance(expr, Phi):
        return np.zeros(n), np.zeros(n, dtype=bool)
    if isinstance(expr, Var):
        if expr.name not in bindings:
            raise ExecutionError(f"unbound variable {expr.name!r}")
        return bindings[expr.name]
    if isinstance(expr, BinOp):
        lv, lk = eval_expr_vectorized(expr.lhs, bindings, n)
        rv, rk = eval_expr_vectorized(expr.rhs, bindings, n)
        values = _apply_template(NUMPY_BINOPS[expr.op], a=lv, b=rv)
        valid = lk & rk
        domain = NUMPY_BINOP_DOMAIN.get(expr.op)
        if domain is not None:
            valid = valid & _apply_template(domain, a=lv, b=rv)
        return np.asarray(values, dtype=np.float64), valid
    if isinstance(expr, UnaryOp):
        ov, ok = eval_expr_vectorized(expr.operand, bindings, n)
        values = _apply_template(NUMPY_UNOPS[expr.op], a=ov)
        valid = ok
        domain = NUMPY_UNOP_DOMAIN.get(expr.op)
        if domain is not None:
            valid = valid & _apply_template(domain, a=ov)
        return np.asarray(values, dtype=np.float64), valid
    if isinstance(expr, IfThenElse):
        cv, ck = eval_expr_vectorized(expr.cond, bindings, n)
        tv, tk = eval_expr_vectorized(expr.then, bindings, n)
        ev, ek = eval_expr_vectorized(expr.orelse, bindings, n)
        values = np.where(cv != 0, tv, ev)
        valid = ck & np.where(cv != 0, tk, ek)
        return values, valid
    if isinstance(expr, IsValid):
        _, ok = eval_expr_vectorized(expr.operand, bindings, n)
        return ok.astype(np.float64), np.ones(n, dtype=bool)
    if isinstance(expr, Coalesce):
        ov, ok = eval_expr_vectorized(expr.operand, bindings, n)
        dv, dk = eval_expr_vectorized(expr.default, bindings, n)
        return np.where(ok, ov, dv), ok | dk
    if isinstance(expr, Call):
        pairs = [eval_expr_vectorized(a, bindings, n) for a in expr.args]
        values = _apply_call_template(NUMPY_CALLS[expr.func], [p[0] for p in pairs])
        valid = np.ones(n, dtype=bool)
        for _, ok in pairs:
            valid = valid & ok
        domain = NUMPY_CALL_DOMAIN.get(expr.func)
        if domain is not None:
            valid = valid & _apply_call_template(domain, [p[0] for p in pairs])
        return np.asarray(values, dtype=np.float64), valid
    if isinstance(expr, Let):
        scope = dict(bindings)
        for name, value in expr.bindings:
            scope[name] = eval_expr_vectorized(value, scope, n)
        return eval_expr_vectorized(expr.body, scope, n)
    raise ExecutionError(
        f"vectorized evaluation does not support node type {type(expr).__name__}"
    )
