"""Grizzly-like compiler-based baseline engine (aggregation only, shared state)."""

from .engine import GrizzlyEngine

__all__ = ["GrizzlyEngine"]
