"""Grizzly-like baseline engine.

Grizzly is a compiler-based SPE specialized for window aggregation.  The two
properties of it that the paper's evaluation exercises are reproduced here:

* **limited operator coverage** — only Select, Where and windowed
  aggregation are supported; temporal Join, Shift and Chop raise
  :class:`~repro.errors.UnsupportedOperationError`, which is why Grizzly
  cannot run the eight real-world applications (Section 7.3);
* **shared atomic aggregation state** — parallel workers aggregate into a
  single shared hash table of window states protected by a lock.  Every
  mini-chunk of events pays a synchronization round-trip, which is what
  limits Grizzly's multi-core scaling in Figure 8 and its Window-Sum
  throughput in Figure 7a.

Select/Where are evaluated batch-at-a-time over NumPy arrays ("compiled"
execution), so Grizzly lands where the paper puts it: much faster than the
interpreted engines, slower than TiLT.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...core.frontend.query import (
    Join,
    QueryNode,
    Select,
    StreamSource,
    Where,
    WindowAggregate,
)
from ...core.runtime.executor import make_executor
from ...core.runtime.stream import Event, EventStream
from ...errors import ExecutionError, UnsupportedOperationError
from ...windowing.functions import AggregateFunction
from ..common.vectoreval import eval_expr_vectorized

__all__ = ["GrizzlyEngine"]

PAYLOAD_VAR = "%payload"

#: events per shared-state synchronization round-trip
_CHUNK = 512


class _Columns:
    """Internal columnar representation used between operators."""

    def __init__(self, starts: np.ndarray, ends: np.ndarray, values: np.ndarray):
        self.starts = starts
        self.ends = ends
        self.values = values

    def __len__(self) -> int:
        return len(self.starts)

    @classmethod
    def from_stream(cls, stream: EventStream) -> "_Columns":
        return cls(stream.starts(), stream.ends(), stream.values())

    def select(self, mask: np.ndarray) -> "_Columns":
        return _Columns(self.starts[mask], self.ends[mask], self.values[mask])

    def to_events(self) -> List[Event]:
        return [
            Event(float(s), float(e), float(v))
            for s, e, v in zip(self.starts, self.ends, self.values)
        ]


class GrizzlyEngine:
    """Aggregation-only engine with vectorized operators and shared window state."""

    name = "grizzly"

    def __init__(self, batch_size: int = 32768, workers: int = 1):
        self.batch_size = int(batch_size)
        self.workers = max(1, int(workers))

    # ------------------------------------------------------------------ #
    def run(self, query: QueryNode, streams: Mapping[str, EventStream]) -> EventStream:
        """Execute a Select/Where/Window-aggregate query."""
        events = self._execute(query, streams)
        return EventStream(sorted(events, key=lambda e: (e.start, e.end)),
                          name="output", check_order=False)

    # ------------------------------------------------------------------ #
    def _execute(self, node: QueryNode, streams: Mapping[str, EventStream]) -> List[Event]:
        columns = self._columns_for(node, streams)
        return columns.to_events()

    def _columns_for(self, node: QueryNode, streams: Mapping[str, EventStream]) -> _Columns:
        if isinstance(node, StreamSource):
            stream = streams.get(node.stream)
            if stream is None:
                raise ExecutionError(f"missing input stream {node.stream!r}")
            if node.field is not None:
                stream = stream.select_field(node.field)
            return _Columns.from_stream(stream)
        if isinstance(node, Select):
            cols = self._columns_for(node.parents[0], streams)
            n = len(cols)
            values, valid = eval_expr_vectorized(
                node.expr, {PAYLOAD_VAR: (cols.values, np.ones(n, dtype=bool))}, n
            )
            cols = _Columns(cols.starts, cols.ends, np.asarray(values, dtype=np.float64))
            return cols.select(valid)
        if isinstance(node, Where):
            cols = self._columns_for(node.parents[0], streams)
            n = len(cols)
            keep, valid = eval_expr_vectorized(
                node.predicate, {PAYLOAD_VAR: (cols.values, np.ones(n, dtype=bool))}, n
            )
            return cols.select(valid & (keep != 0))
        if isinstance(node, WindowAggregate):
            cols = self._columns_for(node.parents[0], streams)
            return self._window_aggregate(cols, node)
        if isinstance(node, Join):
            raise UnsupportedOperationError("Grizzly-like engine does not support temporal Join")
        raise UnsupportedOperationError(
            f"Grizzly-like engine does not support operator {node.describe()}"
        )

    # ------------------------------------------------------------------ #
    # shared-state parallel window aggregation
    # ------------------------------------------------------------------ #
    def _window_aggregate(self, cols: _Columns, node: WindowAggregate) -> _Columns:
        if len(cols) == 0:
            return _Columns(np.empty(0), np.empty(0), np.empty(0))
        agg = node.agg
        size, stride = node.size, node.stride
        values = cols.values
        if node.element is not None:
            n = len(cols)
            values, valid = eval_expr_vectorized(
                node.element, {PAYLOAD_VAR: (values, np.ones(n, dtype=bool))}, n
            )
            cols = _Columns(cols.starts[valid], cols.ends[valid], values[valid])
            values = cols.values

        shared_state: Dict[int, Tuple] = {}
        lock = threading.Lock()

        # split events across workers; each worker synchronizes on the shared
        # state once per mini-chunk (the "atomic updates" cost).
        slices = np.array_split(np.arange(len(cols)), self.workers)
        executor = make_executor(self.workers)

        def work(index_slice: np.ndarray) -> None:
            for lo in range(0, len(index_slice), _CHUNK):
                idx = index_slice[lo : lo + _CHUNK]
                partials = self._chunk_partials(
                    cols.starts[idx], cols.ends[idx], values[idx], size, stride, agg
                )
                with lock:
                    for widx, state in partials.items():
                        current = shared_state.get(widx)
                        if current is None:
                            shared_state[widx] = state
                        else:
                            shared_state[widx] = self._merge_states(agg, current, state)

        try:
            executor.map(work, [s for s in slices if len(s)])
        finally:
            executor.shutdown()

        if not shared_state:
            return _Columns(np.empty(0), np.empty(0), np.empty(0))
        windows = np.array(sorted(shared_state.keys()), dtype=np.int64)
        results = np.array(
            [self._finalize_state(agg, shared_state[w]) for w in windows], dtype=np.float64
        )
        ends = windows.astype(np.float64) * stride
        starts = ends - stride
        return _Columns(starts, ends, results)

    @staticmethod
    def _chunk_partials(
        starts: np.ndarray,
        ends: np.ndarray,
        values: np.ndarray,
        size: float,
        stride: float,
        agg: AggregateFunction,
    ) -> Dict[int, Tuple]:
        """Per-window partial aggregate states for one mini-chunk of events.

        An event with interval ``(s, e]`` contributes to every window end
        ``g = k*stride`` with ``s < g < e + size``.
        """
        partials: Dict[int, Tuple] = {}
        first_idx = np.floor(starts / stride).astype(np.int64) + 1
        last_idx = np.ceil((ends + size) / stride).astype(np.int64) - 1
        for i in range(len(starts)):
            for widx in range(int(first_idx[i]), int(last_idx[i]) + 1):
                g = widx * stride
                if not (starts[i] < g < ends[i] + size):
                    continue
                state = partials.get(widx)
                if state is None:
                    state = agg.init()
                partials[widx] = agg.acc(state, float(values[i]))
        return partials

    @staticmethod
    def _merge_states(agg: AggregateFunction, a, b):
        if agg.mergeable:
            return agg.merge(a, b)
        raise UnsupportedOperationError(
            f"Grizzly-like engine requires a mergeable aggregate, got {agg.name!r}"
        )

    @staticmethod
    def _finalize_state(agg: AggregateFunction, state) -> float:
        return float(agg.result(state))
