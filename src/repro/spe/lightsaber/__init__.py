"""LightSaber-like compiler-based baseline engine (pane-based aggregation)."""

from .engine import LightSaberEngine

__all__ = ["LightSaberEngine"]
