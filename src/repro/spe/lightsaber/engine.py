"""LightSaber-like baseline engine.

LightSaber is a compiler-based SPE built around a parallel aggregation tree
(a generalized aggregation graph): the stream is cut into non-overlapping
*panes* (slices of the window grid), workers compute per-pane partial
aggregates independently (no shared mutable state), and window results are
assembled by combining the panes each window spans.

Like the Grizzly-like engine it only supports Select, Where and window
aggregation — queries with temporal joins are rejected, which excludes it
from the paper's real-world application study (Section 7.3).  Unlike
Grizzly, pane aggregation is lock-free and fully vectorized for decomposable
aggregates, which is why it is the strongest baseline on the Yahoo Streaming
Benchmark (Table 1 / Figure 8) while still trailing TiLT.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ...core.frontend.query import WindowAggregate
from ...core.runtime.executor import make_executor
from ...errors import UnsupportedOperationError
from ...windowing.functions import AggregateFunction
from ..common.vectoreval import eval_expr_vectorized
from ..grizzly.engine import PAYLOAD_VAR, GrizzlyEngine, _Columns

__all__ = ["LightSaberEngine"]


class LightSaberEngine(GrizzlyEngine):
    """Aggregation-only engine using lock-free, pane-based parallel aggregation."""

    name = "lightsaber"

    # ------------------------------------------------------------------ #
    # pane-based window aggregation (overrides Grizzly's shared-state path)
    # ------------------------------------------------------------------ #
    def _window_aggregate(self, cols: _Columns, node: WindowAggregate) -> _Columns:
        if len(cols) == 0:
            return _Columns(np.empty(0), np.empty(0), np.empty(0))
        agg = node.agg
        if not agg.mergeable:
            raise UnsupportedOperationError(
                f"LightSaber-like engine requires a mergeable aggregate, got {agg.name!r}"
            )
        size, stride = node.size, node.stride
        pane = self._pane_size(size, stride)
        panes_per_window = max(1, int(round(size / pane)))
        panes_per_stride = max(1, int(round(stride / pane)))

        starts, ends, values = cols.starts, cols.ends, cols.values
        if node.element is not None:
            n = len(cols)
            values, valid = eval_expr_vectorized(
                node.element, {PAYLOAD_VAR: (values, np.ones(n, dtype=bool))}, n
            )
            starts, ends, values = starts[valid], ends[valid], values[valid]
            if len(starts) == 0:
                return _Columns(np.empty(0), np.empty(0), np.empty(0))

        # assign each event to the pane containing its start time; pane k
        # covers ((k-1)*pane, k*pane].
        pane_idx = np.floor(starts / pane).astype(np.int64) + 1
        first_pane = int(pane_idx.min())
        last_pane = int(pane_idx.max())
        num_panes = last_pane - first_pane + 1
        rel_idx = pane_idx - first_pane

        if agg.prefix_arrays is not None and agg.prefix_result is not None:
            pane_components, pane_counts = self._decomposable_pane_partials(
                agg, rel_idx, values, num_panes
            )
            return self._combine_decomposable(
                agg, pane_components, pane_counts, first_pane, pane,
                panes_per_window, panes_per_stride, stride, float(ends.max()),
            )
        pane_states = self._generic_pane_partials(agg, rel_idx, values, num_panes)
        return self._combine_generic(
            agg, pane_states, first_pane, pane,
            panes_per_window, panes_per_stride, stride, float(ends.max()),
        )

    # ------------------------------------------------------------------ #
    # per-pane partial aggregates
    # ------------------------------------------------------------------ #
    def _decomposable_pane_partials(
        self, agg: AggregateFunction, rel_idx: np.ndarray, values: np.ndarray, num_panes: int
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Per-pane component sums via ``np.bincount``, parallel over worker slices."""
        components = agg.prefix_arrays(values)
        slices = np.array_split(np.arange(len(values)), self.workers)
        executor = make_executor(self.workers)

        def work(index_slice: np.ndarray):
            if not len(index_slice):
                return None
            idx = rel_idx[index_slice]
            sums = [
                np.bincount(idx, weights=comp[index_slice], minlength=num_panes)
                for comp in components
            ]
            counts = np.bincount(idx, minlength=num_panes)
            return sums, counts

        try:
            results = [r for r in executor.map(work, list(slices)) if r is not None]
        finally:
            executor.shutdown()
        pane_components = [np.zeros(num_panes) for _ in components]
        pane_counts = np.zeros(num_panes)
        for sums, counts in results:
            for i, s in enumerate(sums):
                pane_components[i] += s
            pane_counts += counts
        return pane_components, pane_counts

    def _generic_pane_partials(
        self, agg: AggregateFunction, rel_idx: np.ndarray, values: np.ndarray, num_panes: int
    ) -> Dict[int, Tuple]:
        """Per-pane states for non-decomposable aggregates (e.g. Max/Min)."""
        slices = np.array_split(np.arange(len(values)), self.workers)
        executor = make_executor(self.workers)

        def work(index_slice: np.ndarray) -> Dict[int, Tuple]:
            out: Dict[int, Tuple] = {}
            idx = rel_idx[index_slice]
            vals = values[index_slice]
            for p in np.unique(idx):
                state = agg.init()
                for v in vals[idx == p]:
                    state = agg.acc(state, float(v))
                out[int(p)] = (state, int(np.count_nonzero(idx == p)))
            return out

        try:
            results = executor.map(work, [s for s in slices if len(s)])
        finally:
            executor.shutdown()
        merged: Dict[int, Tuple] = {}
        for result in results:
            for p, (state, count) in result.items():
                if p in merged:
                    merged[p] = (agg.merge(merged[p][0], state), merged[p][1] + count)
                else:
                    merged[p] = (state, count)
        return merged

    # ------------------------------------------------------------------ #
    # aggregation tree: panes -> windows
    # ------------------------------------------------------------------ #
    def _window_grid(
        self, first_pane: int, pane: float, stride: float, last_event_end: float
    ) -> np.ndarray:
        first_g = math.floor((first_pane - 1) * pane / stride) * stride + stride
        count = int(math.ceil((last_event_end - (first_g - stride)) / stride))
        return first_g + stride * np.arange(max(count, 0))

    def _combine_decomposable(
        self, agg, pane_components, pane_counts, first_pane, pane,
        panes_per_window, panes_per_stride, stride, last_event_end,
    ) -> _Columns:
        grid = self._window_grid(first_pane, pane, stride, last_event_end)
        if not len(grid):
            return _Columns(np.empty(0), np.empty(0), np.empty(0))
        # window ending at grid g spans panes (g/pane - panes_per_window, g/pane]
        end_pane = np.round(grid / pane).astype(np.int64) - first_pane
        lo_pane = end_pane - panes_per_window + 1
        cum = [np.concatenate(([0.0], np.cumsum(c))) for c in pane_components]
        cum_counts = np.concatenate(([0.0], np.cumsum(pane_counts)))
        hi = np.clip(end_pane + 1, 0, len(pane_counts))
        lo = np.clip(lo_pane, 0, len(pane_counts))
        sums = [c[hi] - c[lo] for c in cum]
        counts = cum_counts[hi] - cum_counts[lo]
        with np.errstate(invalid="ignore", divide="ignore"):
            results = np.asarray(agg.prefix_result(*sums), dtype=np.float64)
        keep = counts > 0
        return _Columns(grid[keep] - stride, grid[keep], results[keep])

    def _combine_generic(
        self, agg, pane_states, first_pane, pane,
        panes_per_window, panes_per_stride, stride, last_event_end,
    ) -> _Columns:
        grid = self._window_grid(first_pane, pane, stride, last_event_end)
        out_starts, out_ends, out_values = [], [], []
        for g in grid:
            end_pane = int(round(g / pane)) - first_pane
            state = None
            count = 0
            for p in range(end_pane - panes_per_window + 1, end_pane + 1):
                part = pane_states.get(p)
                if part is None:
                    continue
                state = part[0] if state is None else agg.merge(state, part[0])
                count += part[1]
            if state is not None and count > 0:
                out_starts.append(g - stride)
                out_ends.append(g)
                out_values.append(float(agg.result(state)))
        return _Columns(np.array(out_starts), np.array(out_ends), np.array(out_values))

    @staticmethod
    def _pane_size(size: float, stride: float) -> float:
        """Largest pane that divides both the window size and the stride."""
        scale = 1000.0
        a = int(round(size * scale))
        b = int(round(stride * scale))
        g = math.gcd(a, b)
        if g == 0:
            return stride
        return g / scale
