"""StreamBox-like interpreted baseline engine (pipeline parallel, O(n²) join)."""

from .engine import StreamBoxEngine

__all__ = ["StreamBoxEngine"]
