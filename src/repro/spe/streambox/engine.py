"""StreamBox-like baseline engine.

StreamBox is an interpreted, C++ SPE that parallelizes queries with pipeline
parallelism and exposes a lower-level API.  For the purposes of the paper's
evaluation the two behaviours that matter are:

* its temporal join uses an O(n²) algorithm to find overlapping events,
  which is why the paper measures a ~322× gap on the Join micro-benchmark;
* stateless stages of a query can be processed in parallel across worker
  threads, giving it better YSB scaling than Trill but worse than TiLT.

This engine reuses the Trill-like operator implementations but swaps in the
nested-loop join and adds stage-level data parallelism for the stateless
prefix of a pipeline (Select/Where/Shift), merging before the first stateful
operator.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ...core.frontend.query import QueryNode, Select, Shift, Where
from ...core.runtime.executor import make_executor
from ...core.runtime.stream import Event, EventStream
from ..common.operators import NestedLoopJoinOperator, SelectOperator, ShiftOperator, WhereOperator
from ..trill.engine import TrillEngine, _chunks

__all__ = ["StreamBoxEngine"]


class StreamBoxEngine(TrillEngine):
    """Interpreted engine with pipeline/data parallelism and an O(n²) join."""

    join_operator_cls = NestedLoopJoinOperator
    name = "streambox"

    def _run_unary(
        self,
        operator,
        node: QueryNode,
        streams: Mapping[str, EventStream],
        memo: Dict[int, List[Event]],
    ) -> List[Event]:
        # stateless per-event operators are data-parallel: split the input
        # into chunks, process chunks on worker threads, concatenate.
        if self.workers > 1 and isinstance(node, (Select, Where, Shift)):
            upstream = self._execute(node.parents[0], streams, memo)
            if not upstream:
                return []
            chunk_size = max(self.batch_size, (len(upstream) + self.workers - 1) // self.workers)
            chunks = _chunks(upstream, chunk_size)
            fresh = {
                Select: lambda n: SelectOperator(n.expr),
                Where: lambda n: WhereOperator(n.predicate),
                Shift: lambda n: ShiftOperator(n.delay),
            }[type(node)]
            executor = make_executor(min(self.workers, len(chunks)))
            try:
                results = executor.map(lambda c: fresh(node).process(c), chunks)
            finally:
                executor.shutdown()
            out: List[Event] = []
            for r in results:
                out.extend(r)
            return out
        return super()._run_unary(operator, node, streams, memo)
