"""Trill-like interpreted baseline engine."""

from .engine import TrillEngine

__all__ = ["TrillEngine"]
