"""Trill-like baseline engine.

An interpretation-based, event-centric SPE modelled on the architectural
properties the paper attributes to Microsoft Trill (Section 3 and 8):

* the logical query (a frontend operator DAG) is mapped operator-by-operator
  onto concrete stateful implementations and *interpreted*: every event flows
  through per-event Python code, including tree-walking evaluation of the
  user's Select/Where/Join expressions;
* events move between operators in columnar micro-batches of a configurable
  size — the knob behind the latency/throughput trade-off of Figure 9;
* the only available parallelism is over *partitioned input streams*
  (``run_partitioned``); a single partition is always processed by a single
  worker, which is why Trill scales worst in the Figure 8 study.

The engine supports the full operator vocabulary (Select, Where, Shift,
Chop, windowed aggregation with arbitrary aggregate functions, temporal
Join), which is why it is the only baseline that can run all eight
real-world applications — mirroring the situation in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ...core.frontend.query import (
    Chop,
    CoalesceJoin,
    Join,
    QueryNode,
    Select,
    Shift,
    StreamSource,
    Where,
    WindowAggregate,
)
from ...core.runtime.executor import make_executor
from ...core.runtime.stream import Event, EventStream, interleave
from ...errors import ExecutionError, UnsupportedOperationError
from ..common.operators import (
    ChopOperator,
    MergeJoinOperator,
    SelectOperator,
    ShiftOperator,
    WhereOperator,
    WindowAggregateOperator,
    coalesce_events,
)

__all__ = ["TrillEngine"]


class TrillEngine:
    """Interpreted, micro-batched, event-centric baseline engine."""

    #: temporal-join implementation (overridden by the StreamBox-like engine)
    join_operator_cls = MergeJoinOperator
    #: human-readable engine name used by the benchmark harness
    name = "trill"

    def __init__(self, batch_size: int = 4096, workers: int = 1):
        if batch_size <= 0:
            raise ExecutionError("batch_size must be positive")
        self.batch_size = int(batch_size)
        self.workers = max(1, int(workers))

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self, query: QueryNode, streams: Mapping[str, EventStream]) -> EventStream:
        """Execute the query DAG over the given input streams."""
        memo: Dict[int, List[Event]] = {}
        events = self._execute(query, streams, memo)
        return EventStream(sorted(events, key=lambda e: (e.start, e.end)),
                          name="output", check_order=False)

    def run_partitioned(
        self,
        query: QueryNode,
        partitions: Sequence[Mapping[str, EventStream]],
    ) -> EventStream:
        """Run the query independently over pre-partitioned input streams.

        This is the engine's only parallelization strategy: each partition
        (e.g. one stock symbol, one campaign) is processed end-to-end by one
        worker; the per-partition outputs are interleaved into a single
        output stream.  The degree of parallelism is limited by the number of
        partitions, as the paper points out.
        """
        executor = make_executor(self.workers)
        try:
            outputs = executor.map(lambda p: self.run(query, p), list(partitions))
        finally:
            executor.shutdown()
        return interleave(outputs, name="output")

    # ------------------------------------------------------------------ #
    # DAG interpretation
    # ------------------------------------------------------------------ #
    def _execute(
        self,
        node: QueryNode,
        streams: Mapping[str, EventStream],
        memo: Dict[int, List[Event]],
    ) -> List[Event]:
        key = id(node)
        if key in memo:
            return memo[key]
        result = self._execute_node(node, streams, memo)
        memo[key] = result
        return result

    def _execute_node(
        self,
        node: QueryNode,
        streams: Mapping[str, EventStream],
        memo: Dict[int, List[Event]],
    ) -> List[Event]:
        if isinstance(node, StreamSource):
            stream = streams.get(node.stream)
            if stream is None:
                raise ExecutionError(f"missing input stream {node.stream!r}")
            if node.field is not None:
                stream = stream.select_field(node.field)
            return list(stream.events)
        if isinstance(node, Select):
            return self._run_unary(SelectOperator(node.expr), node, streams, memo)
        if isinstance(node, Where):
            return self._run_unary(WhereOperator(node.predicate), node, streams, memo)
        if isinstance(node, Shift):
            return self._run_unary(ShiftOperator(node.delay), node, streams, memo)
        if isinstance(node, Chop):
            return self._run_unary(ChopOperator(node.period), node, streams, memo)
        if isinstance(node, WindowAggregate):
            op = WindowAggregateOperator(node.size, node.stride, node.agg, node.element)
            return self._run_unary(op, node, streams, memo)
        if isinstance(node, Join):
            return self._run_join(node, streams, memo)
        if isinstance(node, CoalesceJoin):
            left = self._execute(node.parents[0], streams, memo)
            right = self._execute(node.parents[1], streams, memo)
            return coalesce_events(left, right)
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support operator {node.describe()}"
        )

    def _run_unary(
        self,
        operator,
        node: QueryNode,
        streams: Mapping[str, EventStream],
        memo: Dict[int, List[Event]],
    ) -> List[Event]:
        upstream = self._execute(node.parents[0], streams, memo)
        out: List[Event] = []
        for batch in _chunks(upstream, self.batch_size):
            out.extend(operator.process(batch))
        out.extend(operator.flush())
        return out

    def _run_join(
        self,
        node: Join,
        streams: Mapping[str, EventStream],
        memo: Dict[int, List[Event]],
    ) -> List[Event]:
        left = self._execute(node.parents[0], streams, memo)
        right = self._execute(node.parents[1], streams, memo)
        op = self.join_operator_cls(node.expr)
        out: List[Event] = []
        left_batches = list(_chunks(left, self.batch_size))
        right_batches = list(_chunks(right, self.batch_size))
        li = ri = 0
        # feed batches in (approximate) time order so the join buffers stay small
        while li < len(left_batches) or ri < len(right_batches):
            take_left = ri >= len(right_batches) or (
                li < len(left_batches)
                and left_batches[li][0].start <= right_batches[ri][0].start
            )
            if take_left:
                out.extend(op.process_left(left_batches[li]))
                li += 1
            else:
                out.extend(op.process_right(right_batches[ri]))
                ri += 1
        out.extend(op.flush())
        return out


def _chunks(events: List[Event], size: int) -> List[List[Event]]:
    return [events[i : i + size] for i in range(0, len(events), size)]
