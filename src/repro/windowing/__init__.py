"""Sliding-window aggregation substrate.

Aggregate function templates (Init/Acc/Result/Deacc, Section 6.1.2 of the
paper) and the window aggregation algorithms used by both the TiLT backend
and the baseline engines: prefix-sum range indexes, sparse-table RMQ,
Subtract-on-Evict, two-stacks, and naive recomputation.
"""

from .functions import (
    COUNT,
    FIRST,
    LAST,
    MAX,
    MEAN,
    MIN,
    PRODUCT,
    STDDEV,
    SUM,
    SUM_SQUARES,
    VARIANCE,
    AggregateFunction,
    builtin_aggregates,
    custom_aggregate,
)
from .online import (
    RecomputeAggregator,
    SubtractOnEvict,
    TwoStacksAggregator,
    make_online_aggregator,
)
from .prefix import PrefixRangeIndex, snapshot_range_indices
from .sliding import (
    RangeAggregator,
    range_aggregate,
    streaming_window_aggregate,
    window_aggregate,
    window_grid,
)
from .sparse_table import SparseTableRMQ

__all__ = [
    "AggregateFunction",
    "builtin_aggregates",
    "custom_aggregate",
    "SUM",
    "COUNT",
    "PRODUCT",
    "MAX",
    "MIN",
    "MEAN",
    "VARIANCE",
    "STDDEV",
    "SUM_SQUARES",
    "FIRST",
    "LAST",
    "SubtractOnEvict",
    "TwoStacksAggregator",
    "RecomputeAggregator",
    "make_online_aggregator",
    "PrefixRangeIndex",
    "snapshot_range_indices",
    "SparseTableRMQ",
    "RangeAggregator",
    "range_aggregate",
    "window_aggregate",
    "streaming_window_aggregate",
    "window_grid",
]
