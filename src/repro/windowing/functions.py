"""Aggregate function templates.

Section 6.1.2 of the paper: every reduction function — built-in or
user-defined — is expressed with four lambdas:

* ``init``   — the initial accumulator state (e.g. ``0`` for Sum),
* ``acc``    — folds one snapshot value into the state,
* ``result`` — extracts the final scalar from the state,
* ``deacc``  — (optional) removes a value from the state; only invertible
  aggregates provide it, enabling the Subtract-on-Evict algorithm.

On top of the paper's template this module adds two optional *vectorized*
hooks used by the NumPy code-generation backend:

* ``prefix_arrays`` / ``prefix_result`` — express the aggregate as sums of a
  few per-snapshot component arrays, so window results can be computed with
  prefix sums and ``searchsorted`` (Sum, Count, Mean, Variance, StdDev, ...).
* ``rmq`` — the aggregate is a range-min/range-max query answered by a sparse
  table (Max, Min).
* ``vector_eval`` — a generic NumPy reduction applied per window (used by
  custom aggregates such as kurtosis or crest factor).

The scalar template (init/acc/result/deacc/merge) is always present and is
the semantic reference; vectorized hooks are pure optimizations and the test
suite checks they agree with the scalar fold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryBuildError

__all__ = [
    "AggregateFunction",
    "SUM",
    "COUNT",
    "PRODUCT",
    "MAX",
    "MIN",
    "MEAN",
    "VARIANCE",
    "STDDEV",
    "SUM_SQUARES",
    "FIRST",
    "LAST",
    "custom_aggregate",
    "builtin_aggregates",
]

State = Any


@dataclass(frozen=True)
class AggregateFunction:
    """A (possibly user-defined) reduction function.

    Parameters mirror the Init/Acc/Result/Deacc template of the paper plus
    optional vectorization hooks (see module docstring).  ``merge`` combines
    two partial states and is required by tree-structured parallel
    aggregation (the LightSaber-like baseline) and by partial-aggregate
    parallelization.
    """

    name: str
    init: Callable[[], State]
    acc: Callable[[State, float], State]
    result: Callable[[State], float]
    deacc: Optional[Callable[[State, float], State]] = None
    merge: Optional[Callable[[State, State], State]] = None
    prefix_arrays: Optional[Callable[[np.ndarray], Tuple[np.ndarray, ...]]] = None
    prefix_result: Optional[Callable[..., np.ndarray]] = None
    #: accumulate prefix sums in extended precision.  Only aggregates whose
    #: result is a *cancellation* of large prefix components (variance's
    #: sum-of-squares formula, amplified by stddev's sqrt near zero) need
    #: this; plain sums/means stay on fast float64.
    prefix_extended_precision: bool = False
    rmq: Optional[str] = None  # 'max' | 'min'
    vector_eval: Optional[Callable[[np.ndarray], float]] = None

    # ------------------------------------------------------------------ #
    # scalar evaluation (semantic reference)
    # ------------------------------------------------------------------ #
    @property
    def invertible(self) -> bool:
        """True when the aggregate supports Subtract-on-Evict."""
        return self.deacc is not None

    @property
    def mergeable(self) -> bool:
        """True when partial states can be combined (parallel reduction)."""
        return self.merge is not None

    def fold(self, values: Sequence[float]) -> Tuple[float, bool]:
        """Reduce a sequence of values with the scalar template.

        Returns ``(result, valid)``; an empty input reduces to φ
        (``valid=False``), matching the paper's semantics that a reduction
        only ranges over non-null snapshots.
        """
        values = list(values)
        if not values:
            return (0.0, False)
        state = self.init()
        for v in values:
            state = self.acc(state, float(v))
        return (float(self.result(state)), True)

    def fold_array(self, values: np.ndarray) -> Tuple[float, bool]:
        """Reduce a NumPy array, preferring the vectorized hook when present."""
        if len(values) == 0:
            return (0.0, False)
        if self.vector_eval is not None:
            return (float(self.vector_eval(np.asarray(values, dtype=np.float64))), True)
        return self.fold(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AggregateFunction({self.name})"

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def __reduce_ex__(self, protocol):
        # Built-in aggregates are module-level singletons whose lambdas
        # cannot be pickled; serialize them by name so compiled-query
        # artifacts can cross a process boundary, and restore the singleton
        # (identity-preserving, so ``agg is SUM`` keeps holding after a
        # round-trip).  Custom aggregates fall back to the default protocol:
        # they are picklable exactly when their callables are (module-level
        # functions yes, lambdas no) — the execution backend uses that to
        # decide between process dispatch and its thread fallback.
        if _BUILTIN_SINGLETONS.get(self.name) is self:
            return (_restore_builtin_aggregate, (self.name,))
        return super().__reduce_ex__(protocol)


# ---------------------------------------------------------------------- #
# built-in aggregates
# ---------------------------------------------------------------------- #
def _safe_sqrt(x: np.ndarray) -> np.ndarray:
    return np.sqrt(np.maximum(x, 0.0))


def _variance_prefix_arrays(vals: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Center values on the buffer mean before building variance prefix arrays.

    Variance is shift-invariant, but the sum-of-squares formula over raw
    prefix sums cancels catastrophically when ``mean² >> variance`` (large
    prefix totals minus large prefix totals).  Centering keeps the component
    arrays small, so windowed variance/stddev stay accurate even over long
    buffers of large values.
    """
    centered = vals - np.mean(vals) if len(vals) else vals
    return (centered, centered * centered, np.ones_like(vals))


SUM = AggregateFunction(
    name="sum",
    init=lambda: 0.0,
    acc=lambda s, v: s + v,
    result=lambda s: s,
    deacc=lambda s, v: s - v,
    merge=lambda a, b: a + b,
    prefix_arrays=lambda vals: (vals,),
    prefix_result=lambda s: s,
    vector_eval=np.sum,
)

COUNT = AggregateFunction(
    name="count",
    init=lambda: 0.0,
    acc=lambda s, v: s + 1.0,
    result=lambda s: s,
    deacc=lambda s, v: s - 1.0,
    merge=lambda a, b: a + b,
    prefix_arrays=lambda vals: (np.ones_like(vals),),
    prefix_result=lambda n: n,
    vector_eval=lambda vals: float(len(vals)),
)

PRODUCT = AggregateFunction(
    name="product",
    init=lambda: 1.0,
    acc=lambda s, v: s * v,
    result=lambda s: s,
    merge=lambda a, b: a * b,
    vector_eval=np.prod,
)

MAX = AggregateFunction(
    name="max",
    init=lambda: -math.inf,
    acc=lambda s, v: v if v > s else s,
    result=lambda s: s,
    merge=lambda a, b: max(a, b),
    rmq="max",
    vector_eval=np.max,
)

MIN = AggregateFunction(
    name="min",
    init=lambda: math.inf,
    acc=lambda s, v: v if v < s else s,
    result=lambda s: s,
    merge=lambda a, b: min(a, b),
    rmq="min",
    vector_eval=np.min,
)

MEAN = AggregateFunction(
    name="mean",
    init=lambda: (0.0, 0.0),  # (sum, count)
    acc=lambda s, v: (s[0] + v, s[1] + 1.0),
    result=lambda s: s[0] / s[1] if s[1] else 0.0,
    deacc=lambda s, v: (s[0] - v, s[1] - 1.0),
    merge=lambda a, b: (a[0] + b[0], a[1] + b[1]),
    prefix_arrays=lambda vals: (vals, np.ones_like(vals)),
    prefix_result=lambda s, n: np.divide(s, n, out=np.zeros_like(s), where=n != 0),
    vector_eval=np.mean,
)

VARIANCE = AggregateFunction(
    name="variance",
    init=lambda: (0.0, 0.0, 0.0),  # (sum, sumsq, count)
    acc=lambda s, v: (s[0] + v, s[1] + v * v, s[2] + 1.0),
    # the sum-of-squares formula can go slightly negative through floating
    # point cancellation; clamp at zero so downstream sqrt is always defined.
    result=lambda s: max(s[1] / s[2] - (s[0] / s[2]) ** 2, 0.0) if s[2] else 0.0,
    deacc=lambda s, v: (s[0] - v, s[1] - v * v, s[2] - 1.0),
    merge=lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2]),
    prefix_arrays=_variance_prefix_arrays,
    prefix_extended_precision=True,
    prefix_result=lambda s, sq, n: np.maximum(
        np.where(
            n != 0,
            np.divide(sq, np.maximum(n, 1.0)) - np.divide(s, np.maximum(n, 1.0)) ** 2,
            0.0,
        ),
        0.0,
    ),
    vector_eval=lambda vals: float(np.var(vals)),
)

STDDEV = AggregateFunction(
    name="stddev",
    init=VARIANCE.init,
    acc=VARIANCE.acc,
    result=lambda s: math.sqrt(max(VARIANCE.result(s), 0.0)),
    deacc=VARIANCE.deacc,
    merge=VARIANCE.merge,
    prefix_arrays=VARIANCE.prefix_arrays,
    prefix_extended_precision=True,
    prefix_result=lambda s, sq, n: _safe_sqrt(VARIANCE.prefix_result(s, sq, n)),
    vector_eval=lambda vals: float(np.std(vals)),
)

SUM_SQUARES = AggregateFunction(
    name="sum_squares",
    init=lambda: 0.0,
    acc=lambda s, v: s + v * v,
    result=lambda s: s,
    deacc=lambda s, v: s - v * v,
    merge=lambda a, b: a + b,
    prefix_arrays=lambda vals: (vals * vals,),
    prefix_result=lambda s: s,
    vector_eval=lambda vals: float(np.sum(vals * vals)),
)

FIRST = AggregateFunction(
    name="first",
    init=lambda: None,
    acc=lambda s, v: v if s is None else s,
    result=lambda s: 0.0 if s is None else s,
    vector_eval=lambda vals: float(vals[0]),
)

LAST = AggregateFunction(
    name="last",
    init=lambda: None,
    acc=lambda s, v: v,
    result=lambda s: 0.0 if s is None else s,
    vector_eval=lambda vals: float(vals[-1]),
)


def custom_aggregate(
    name: str,
    init: Callable[[], State],
    acc: Callable[[State, float], State],
    result: Callable[[State], float],
    deacc: Optional[Callable[[State, float], State]] = None,
    merge: Optional[Callable[[State, State], State]] = None,
    vector_eval: Optional[Callable[[np.ndarray], float]] = None,
) -> AggregateFunction:
    """Create a user-defined reduction function.

    This is the public entry point for the "Custom-Agg" operators used by the
    Pan-Tompkins and vibration-analysis queries of the benchmark suite.
    """
    if not callable(init) or not callable(acc) or not callable(result):
        raise QueryBuildError("init, acc and result must be callables")
    return AggregateFunction(
        name=name,
        init=init,
        acc=acc,
        result=result,
        deacc=deacc,
        merge=merge,
        vector_eval=vector_eval,
    )


def _restore_builtin_aggregate(name: str) -> AggregateFunction:
    """Unpickle hook: resolve a built-in aggregate back to its singleton."""
    return _BUILTIN_SINGLETONS[name]


def builtin_aggregates() -> Dict[str, AggregateFunction]:
    """Mapping of all built-in aggregate names to their definitions."""
    return {
        a.name: a
        for a in (
            SUM,
            COUNT,
            PRODUCT,
            MAX,
            MIN,
            MEAN,
            VARIANCE,
            STDDEV,
            SUM_SQUARES,
            FIRST,
            LAST,
        )
    }


#: the built-in singletons, used by pickling to serialize builtins by name
_BUILTIN_SINGLETONS: Dict[str, AggregateFunction] = builtin_aggregates()
