"""Online (streaming) sliding-window aggregators.

These are the incremental algorithms referenced by the paper's aggregation
template (Section 6.1.2) and by the sliding-window aggregation literature it
cites:

* :class:`SubtractOnEvict` — O(1) insert/evict for invertible aggregates
  (those providing a ``deacc``), e.g. Sum, Count, Mean, Variance.
* :class:`TwoStacksAggregator` — amortized O(1) insert/evict for *any*
  associative aggregate (Max, Min, custom), using the classic two-stack
  queue construction.
* :class:`RecomputeAggregator` — the O(window) strawman that re-folds the
  whole window on every query; used as the semantic reference in tests and
  by the deliberately naive parts of the baseline engines.

All three expose the same interface (``insert``, ``evict``, ``query``) so the
loop-synthesis backend and the baseline SPEs can pick whichever matches the
aggregate's capabilities.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from .functions import AggregateFunction

__all__ = ["SubtractOnEvict", "TwoStacksAggregator", "RecomputeAggregator", "make_online_aggregator"]


class SubtractOnEvict:
    """Incremental window aggregation for invertible aggregates."""

    def __init__(self, agg: AggregateFunction):
        if not agg.invertible:
            raise ValueError(f"aggregate {agg.name!r} is not invertible")
        self.agg = agg
        self._state = agg.init()
        self._count = 0

    def insert(self, value: float) -> None:
        """Add a value to the window."""
        self._state = self.agg.acc(self._state, value)
        self._count += 1

    def evict(self, value: float) -> None:
        """Remove a previously inserted value from the window."""
        self._state = self.agg.deacc(self._state, value)  # type: ignore[misc]
        self._count -= 1

    def query(self) -> Tuple[float, bool]:
        """Current aggregate; φ when the window is empty."""
        if self._count <= 0:
            return (0.0, False)
        return (float(self.agg.result(self._state)), True)

    def __len__(self) -> int:
        return self._count


class TwoStacksAggregator:
    """Amortized O(1) window aggregation for arbitrary associative aggregates.

    Maintains a FIFO window as two stacks.  The *back* stack receives
    insertions; the *front* stack serves evictions and stores, alongside each
    value, the running aggregate of everything at or below it.  When the front
    stack empties, the back stack is flipped onto it (the amortized step).
    """

    def __init__(self, agg: AggregateFunction):
        self.agg = agg
        self._front: List[Tuple[float, float]] = []  # (value, running aggregate result)
        self._front_states: List = []
        self._back: List[float] = []
        self._back_state = agg.init()
        self._back_count = 0

    def insert(self, value: float) -> None:
        """Append a value at the back of the window."""
        self._back.append(value)
        self._back_state = self.agg.acc(self._back_state, value)
        self._back_count += 1

    def evict(self, value: Optional[float] = None) -> None:
        """Remove the oldest value from the window.

        The ``value`` argument is accepted (and ignored) so that the three
        online aggregators share the same call signature.
        """
        if not self._front:
            self._flip()
        if not self._front:
            raise IndexError("evict from an empty window")
        self._front.pop()
        self._front_states.pop()

    def query(self) -> Tuple[float, bool]:
        """Current aggregate of the whole window; φ when empty."""
        has_front = bool(self._front)
        has_back = self._back_count > 0
        if not has_front and not has_back:
            return (0.0, False)
        if has_front and has_back and self.agg.mergeable:
            merged = self.agg.merge(self._front_states[-1], self._back_state)  # type: ignore[misc]
            return (float(self.agg.result(merged)), True)
        if has_front and not has_back:
            return (float(self.agg.result(self._front_states[-1])), True)
        if has_back and not has_front:
            return (float(self.agg.result(self._back_state)), True)
        # no merge available: fall back to re-accumulating front state over back values
        state = self._front_states[-1]
        for v in self._back:
            state = self.agg.acc(state, v)
        return (float(self.agg.result(state)), True)

    def __len__(self) -> int:
        return len(self._front) + self._back_count

    def _flip(self) -> None:
        state = self.agg.init()
        while self._back:
            v = self._back.pop()
            state = self.agg.acc(state, v)
            self._front.append((v, 0.0))
            self._front_states.append(state)
        self._back_state = self.agg.init()
        self._back_count = 0


class RecomputeAggregator:
    """O(window) reference aggregator that re-folds the window on every query."""

    def __init__(self, agg: AggregateFunction):
        self.agg = agg
        self._window: Deque[float] = deque()

    def insert(self, value: float) -> None:
        self._window.append(value)

    def evict(self, value: Optional[float] = None) -> None:
        self._window.popleft()

    def query(self) -> Tuple[float, bool]:
        return self.agg.fold(self._window)

    def __len__(self) -> int:
        return len(self._window)


def make_online_aggregator(agg: AggregateFunction):
    """Pick the best online aggregator available for ``agg``.

    Subtract-on-Evict for invertible aggregates, two-stacks for mergeable
    ones, and full recomputation otherwise — the same escalation the paper's
    code generator applies.
    """
    if agg.invertible:
        return SubtractOnEvict(agg)
    if agg.mergeable:
        return TwoStacksAggregator(agg)
    return RecomputeAggregator(agg)
