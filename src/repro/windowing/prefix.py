"""Prefix-sum range-aggregation index.

For invertible / decomposable aggregates (Sum, Count, Mean, Variance,
StdDev, ...), the aggregate over an arbitrary contiguous range of snapshots
can be computed from prefix sums of a few per-snapshot component arrays.
Building the index is O(n); answering *any number* of range queries is a
vectorized O(log n) ``searchsorted`` plus array arithmetic.  This is the
workhorse of the NumPy code-generation backend for window reductions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .functions import AggregateFunction

__all__ = ["PrefixRangeIndex", "snapshot_range_indices"]


def snapshot_range_indices(
    times: np.ndarray,
    interval_starts: np.ndarray,
    window_starts: np.ndarray,
    window_ends: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Map time windows to contiguous snapshot index ranges.

    A snapshot with interval ``(s_i, t_i]`` overlaps the query window
    ``(ws, we]`` iff ``t_i > ws`` and ``s_i < we``.  Because snapshots are
    ordered and contiguous, the overlapping snapshots form the index range
    ``[lo, hi)`` with::

        lo = first i such that t_i > ws
        hi = first i such that s_i >= we

    Returns ``(lo, hi)`` arrays; empty windows have ``lo >= hi``.
    """
    lo = np.searchsorted(times, window_starts, side="right")
    hi = np.searchsorted(interval_starts, window_ends, side="left")
    return lo, hi


class PrefixRangeIndex:
    """Range-aggregate index backed by prefix sums.

    Parameters
    ----------
    times, interval_starts, values, valid:
        Snapshot arrays of the input SSBuf.
    agg:
        An aggregate with ``prefix_arrays`` / ``prefix_result`` hooks.
    """

    def __init__(
        self,
        times: np.ndarray,
        interval_starts: np.ndarray,
        values: np.ndarray,
        valid: np.ndarray,
        agg: AggregateFunction,
    ):
        if agg.prefix_arrays is None or agg.prefix_result is None:
            raise ValueError(f"aggregate {agg.name!r} has no prefix decomposition")
        self.agg = agg
        self.times = np.asarray(times, dtype=np.float64)
        self.interval_starts = np.asarray(interval_starts, dtype=np.float64)
        valid = np.asarray(valid, dtype=bool)
        # Aggregates whose result cancels large prefix components against
        # each other (variance/stddev) accumulate in extended precision:
        # a windowed value is the difference of two potentially huge prefix
        # totals, and float64 cancellation there is what used to make a
        # near-zero windowed variance come out at ~1e-8 (so ~1e-4 stddev
        # after the sqrt amplification).  The component arrays themselves
        # are built in that dtype too — squaring in float64 first would
        # already bake in more rounding error than the longdouble prefixes
        # can cancel.  Everything else (sums, means, counts) stays on fast
        # float64.
        dtype = np.longdouble if agg.prefix_extended_precision else np.float64
        masked = np.where(valid, np.asarray(values, dtype=np.float64), 0.0).astype(
            dtype, copy=False
        )
        components = agg.prefix_arrays(masked)
        # invalid snapshots must contribute nothing to *any* component
        # (e.g. the count component of Mean), hence the explicit masking.
        self._prefixes = []
        self._valid_prefix = np.concatenate(([0.0], np.cumsum(valid.astype(np.float64))))
        for comp in components:
            comp = np.where(valid, comp, 0.0)
            prefix = np.zeros(len(comp) + 1, dtype=dtype)
            np.cumsum(comp, dtype=dtype, out=prefix[1:])
            self._prefixes.append(prefix)

    def query(
        self, window_starts: np.ndarray, window_ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate each window ``(ws_i, we_i]``.

        Returns ``(values, valid)`` where windows containing no valid
        snapshot produce ``valid=False`` (φ).
        """
        window_starts = np.asarray(window_starts, dtype=np.float64)
        window_ends = np.asarray(window_ends, dtype=np.float64)
        lo, hi = snapshot_range_indices(
            self.times, self.interval_starts, window_starts, window_ends
        )
        hi = np.maximum(hi, lo)
        counts = self._valid_prefix[hi] - self._valid_prefix[lo]
        sums = [p[hi] - p[lo] for p in self._prefixes]
        with np.errstate(invalid="ignore", divide="ignore"):
            results = np.asarray(self.agg.prefix_result(*sums), dtype=np.float64)
        valid = counts > 0
        return np.where(valid, results, 0.0), valid
