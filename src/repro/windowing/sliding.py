"""High-level window aggregation over snapshot buffers.

Two entry points:

* :func:`range_aggregate` — evaluate an aggregate over *arbitrary* per-output
  windows ``(ws_i, we_i]`` of an SSBuf.  Chooses a prefix-sum index, a sparse
  table, or a generic per-window reduction depending on the aggregate's
  capabilities.  This is the primitive the code-generation backend calls for
  every ``Reduce`` node.
* :func:`window_aggregate` — classic size/stride sliding-window aggregation
  producing a new SSBuf on a regular grid (used by the baseline engines and
  by the interpreted TiLT mode for standalone Window operators).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.runtime.ssbuf import SSBuf
from .functions import AggregateFunction
from .online import make_online_aggregator
from .prefix import PrefixRangeIndex, snapshot_range_indices
from .sparse_table import SparseTableRMQ

__all__ = ["RangeAggregator", "range_aggregate", "window_aggregate", "window_grid"]


class RangeAggregator:
    """Reusable per-(buffer, aggregate) range aggregation object.

    Builds the appropriate index once so that repeated queries (e.g. the two
    different windows of the trend query, or per-partition evaluation) do not
    pay the construction cost again.
    """

    def __init__(self, buf: SSBuf, agg: AggregateFunction):
        self.buf = buf
        self.agg = agg
        self._prefix: Optional[PrefixRangeIndex] = None
        self._rmq: Optional[SparseTableRMQ] = None
        interval_starts = buf.interval_starts
        if agg.prefix_arrays is not None and agg.prefix_result is not None:
            self._prefix = PrefixRangeIndex(
                buf.times, interval_starts, buf.values, buf.valid, agg
            )
        elif agg.rmq is not None:
            self._rmq = SparseTableRMQ(
                buf.times, interval_starts, buf.values, buf.valid, mode=agg.rmq
            )
        self._interval_starts = interval_starts

    def query(
        self, window_starts: np.ndarray, window_ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate every window ``(ws_i, we_i]``; returns (values, valid)."""
        window_starts = np.asarray(window_starts, dtype=np.float64)
        window_ends = np.asarray(window_ends, dtype=np.float64)
        if self._prefix is not None:
            return self._prefix.query(window_starts, window_ends)
        if self._rmq is not None:
            return self._rmq.query(window_starts, window_ends)
        return self._generic(window_starts, window_ends)

    def _generic(
        self, window_starts: np.ndarray, window_ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = snapshot_range_indices(
            self.buf.times, self._interval_starts, window_starts, window_ends
        )
        out = np.zeros(len(window_starts))
        ok = np.zeros(len(window_starts), dtype=bool)
        values = self.buf.values
        valid = self.buf.valid
        for i in range(len(window_starts)):
            if hi[i] <= lo[i]:
                continue
            window_vals = values[lo[i]:hi[i]][valid[lo[i]:hi[i]]]
            if len(window_vals) == 0:
                continue
            out[i], ok[i] = self.agg.fold_array(window_vals)
        return out, ok


def range_aggregate(
    buf: SSBuf,
    window_starts: np.ndarray,
    window_ends: np.ndarray,
    agg: AggregateFunction,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot :class:`RangeAggregator` query."""
    return RangeAggregator(buf, agg).query(window_starts, window_ends)


def window_grid(t_start: float, t_end: float, stride: float) -> np.ndarray:
    """Window end timestamps: multiples of ``stride`` inside ``(t_start, t_end]``."""
    if t_end <= t_start or stride <= 0:
        return np.empty(0)
    first = np.floor(t_start / stride) * stride + stride
    # guard against floating point: the first grid point must be > t_start
    if first <= t_start:
        first += stride
    return np.arange(first, t_end + stride * 0.5, stride)


def window_aggregate(
    buf: SSBuf,
    size: float,
    stride: float,
    agg: AggregateFunction,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
) -> SSBuf:
    """Sliding/tumbling window aggregation producing a new SSBuf.

    The output snapshot at grid time ``g`` (a multiple of ``stride``) covers
    ``(g - stride, g]`` and holds the aggregate over the window
    ``(g - size, g]``; windows containing no events yield φ.  This matches
    the time-domain-precision semantics of the paper's Window/Reduce
    temporal expression (Figure 4, last line).
    """
    if t_start is None:
        t_start = buf.start_time
    if t_end is None:
        t_end = buf.end_time
    ends = window_grid(t_start, t_end, stride)
    if len(ends) == 0:
        return SSBuf.empty(t_start)
    starts = ends - size
    values, valid = range_aggregate(buf, starts, ends, agg)
    return SSBuf(ends, values, valid, start_time=float(ends[0]) - stride)


def streaming_window_aggregate(
    buf: SSBuf,
    size: float,
    stride: float,
    agg: AggregateFunction,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
) -> SSBuf:
    """Reference implementation of :func:`window_aggregate` using an online
    aggregator (insert/evict) instead of the vectorized indexes.

    Kept separate so the test suite can cross-check both code paths; the
    baseline engines also use it because they process events one at a time.
    """
    if t_start is None:
        t_start = buf.start_time
    if t_end is None:
        t_end = buf.end_time
    ends = window_grid(t_start, t_end, stride)
    if len(ends) == 0:
        return SSBuf.empty(t_start)
    out_vals = np.zeros(len(ends))
    out_valid = np.zeros(len(ends), dtype=bool)
    times = buf.times
    interval_starts = buf.interval_starts
    values = buf.values
    valid = buf.valid
    for i, g in enumerate(ends):
        ws, we = g - size, g
        online = make_online_aggregator(agg)
        lo = np.searchsorted(times, ws, side="right")
        hi = np.searchsorted(interval_starts, we, side="left")
        for j in range(lo, hi):
            if valid[j]:
                online.insert(float(values[j]))
        out_vals[i], out_valid[i] = online.query()
    return SSBuf(ends, out_vals, out_valid, start_time=float(ends[0]) - stride)
