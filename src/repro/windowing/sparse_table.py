"""Sparse-table range-min/range-max index.

Non-invertible aggregates such as Max and Min cannot use Subtract-on-Evict
or prefix sums.  The sparse table precomputes min/max over every
power-of-two span in O(n log n) and answers an arbitrary range query with
two lookups.  Queries are fully vectorized over NumPy arrays, which is what
the code-generation backend needs when it evaluates a Max/Min reduction at
thousands of output time points at once.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .prefix import snapshot_range_indices

__all__ = ["SparseTableRMQ"]


class SparseTableRMQ:
    """Range max/min query structure over snapshot values.

    Parameters
    ----------
    times, interval_starts:
        Snapshot timing arrays (used to translate time windows to index
        ranges).
    values, valid:
        Snapshot values and validity mask; invalid snapshots never win a
        query.
    mode:
        ``'max'`` or ``'min'``.
    """

    def __init__(
        self,
        times: np.ndarray,
        interval_starts: np.ndarray,
        values: np.ndarray,
        valid: np.ndarray,
        mode: str = "max",
    ):
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self.mode = mode
        self.times = np.asarray(times, dtype=np.float64)
        self.interval_starts = np.asarray(interval_starts, dtype=np.float64)
        valid = np.asarray(valid, dtype=bool)
        n = len(self.times)
        fill = -np.inf if mode == "max" else np.inf
        base = np.where(valid, np.asarray(values, dtype=np.float64), fill)
        self._valid_prefix = np.concatenate(([0.0], np.cumsum(valid.astype(np.float64))))
        self._levels = [base]
        self._reduce = np.maximum if mode == "max" else np.minimum
        # level k answers queries over spans of 2**k; level k+1 combines two
        # overlapping level-k entries and has length n - 2**(k+1) + 1.
        span = 1
        while span * 2 <= n:
            prev = self._levels[-1]
            new_len = n - 2 * span + 1
            nxt = self._reduce(prev[:new_len], prev[span : span + new_len])
            self._levels.append(nxt)
            span *= 2

    def query_indices(self, lo: np.ndarray, hi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate over snapshot index ranges ``[lo, hi)`` (vectorized)."""
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        hi = np.maximum(hi, lo)
        counts = self._valid_prefix[hi] - self._valid_prefix[lo]
        lengths = hi - lo
        results = np.full(len(lo), 0.0)
        nonempty = lengths > 0
        if np.any(nonempty):
            ln = lengths[nonempty]
            k = np.floor(np.log2(ln)).astype(np.int64)
            out = np.empty(len(ln))
            for level in np.unique(k):
                sel = k == level
                span = 1 << int(level)
                table = self._levels[int(level)]
                a = table[lo[nonempty][sel]]
                b = table[hi[nonempty][sel] - span]
                out[sel] = self._reduce(a, b)
            results[nonempty] = out
        valid = counts > 0
        return np.where(valid, results, 0.0), valid

    def query(
        self, window_starts: np.ndarray, window_ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate over time windows ``(ws_i, we_i]`` (vectorized)."""
        lo, hi = snapshot_range_indices(
            self.times, self.interval_starts, np.asarray(window_starts), np.asarray(window_ends)
        )
        return self.query_indices(lo, hi)
