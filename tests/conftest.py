"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.runtime.ssbuf import SSBuf, ssbuf_from_stream
from repro.core.runtime.stream import Event, EventStream


@pytest.fixture
def simple_events():
    """Three disjoint events with a gap (the Figure 5 example, scaled)."""
    return [
        Event(5.0, 10.0, 1.0),
        Event(16.0, 23.0, 2.0),
        Event(30.0, 35.0, 3.0),
    ]


@pytest.fixture
def simple_stream(simple_events):
    return EventStream(simple_events, name="simple")


@pytest.fixture
def simple_buf(simple_stream):
    return ssbuf_from_stream(simple_stream)


@pytest.fixture
def regular_stream():
    """A 1 Hz sampled stream of 100 increasing values."""
    values = np.arange(100, dtype=float)
    return EventStream.from_samples(values, period=1.0, name="regular")


@pytest.fixture
def regular_buf(regular_stream):
    return ssbuf_from_stream(regular_stream)


@pytest.fixture
def random_walk_stream():
    """A 1 Hz random-walk price stream of 300 events (seeded)."""
    rng = np.random.default_rng(42)
    values = 100.0 + np.cumsum(rng.normal(0.0, 1.0, 300))
    return EventStream.from_samples(values, period=1.0, name="stock")


@pytest.fixture
def random_walk_buf(random_walk_stream):
    return ssbuf_from_stream(random_walk_stream)


def assert_buffers_equivalent(a: SSBuf, b: SSBuf, grid: np.ndarray, rtol=1e-9, atol=1e-12):
    """Assert two snapshot buffers define the same temporal object on a grid."""
    av, ak = a.values_at(grid)
    bv, bk = b.values_at(grid)
    assert np.array_equal(ak, bk), "validity masks differ"
    assert np.allclose(av[ak], bv[bk], rtol=rtol, atol=atol), "values differ"
