"""Seeded LNT101 violations: blocking calls while a lock is held.

Never imported — parsed by the lint checkers in tests and by the CI gate,
which must FAIL on this file.
"""

import threading
import time

_LOCK = threading.Lock()


class Worker:
    def __init__(self, queue, thread):
        self._lock = threading.RLock()
        self._queue = queue
        self._thread = thread

    def enqueue(self, item):
        with self._lock:
            self._queue.put(item)  # LNT101: queue put under the lock

    def nap(self):
        with self._lock:
            time.sleep(0.1)  # LNT101: sleep under the lock

    def build(self, source):
        with _LOCK:
            return compile(source, "<x>", "exec")  # LNT101: compile under the lock

    def reap(self):
        with self._lock:
            self._thread.join()  # LNT101: thread join under the lock

    def fine(self, parts):
        # negatives the checker must NOT flag:
        with self._lock:
            joined = ", ".join(parts)  # str.join is not blocking
            self._lock.acquire  # attribute access, not a call
            value = {"a": 1}.get("a")  # dict.get without timeout
        return joined, value
