"""Seeded LNT102 violations: shared-state mutation from a kernel helper.

The path of this fixture deliberately ends in ``core/codegen/
runtime_support.py`` so the lint applies its generated-kernel-helper rules.
Never imported.
"""

_SHARED_CACHE = {}
_CALL_COUNT = 0


def remember(key, value):
    _SHARED_CACHE[key] = value  # LNT102: mutating module-level state


def bump():
    global _CALL_COUNT  # LNT102: global rebinding in a kernel helper
    _CALL_COUNT += 1


def grow(items):
    _SHARED_CACHE.update(items)  # LNT102: mutating call on module-level state


def fine(local_cache, key, value):
    # negative: mutating a caller-owned container is re-entrant
    local_cache[key] = value
    return dict(_SHARED_CACHE)  # reads are fine
