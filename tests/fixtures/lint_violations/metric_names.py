"""Seeded LNT103 violations: Prometheus metric-name discipline.

Never imported — parsed by the lint checkers in tests and by the CI gate.
"""


def register(registry):
    registry.counter("repro_requests", "missing _total suffix")  # LNT103
    registry.gauge("repro_active_total", "gauge must not end in _total")  # LNT103
    registry.histogram("repro_latency_total", "histogram must not end in _total")  # LNT103
    registry.counter("Repro-Bad-Name_total", "not snake_case")  # LNT103
    # negatives the checker must NOT flag:
    ok_c = registry.counter("repro_requests_total", "fine")
    ok_g = registry.gauge("repro_active_tenants", "fine")
    ok_h = registry.histogram("repro_tick_seconds", "fine")
    return ok_c, ok_g, ok_h
