"""Deliberately unsafe / suspicious TiLT IR programs for analyzer tests.

Each entry pairs a hand-built program with the finding code the analyzer
must produce for it.  These are programs the *structural* validator happily
accepts — the hazards only fall out of the bounds-safety / hygiene / domain
analyses, which is exactly why ``repro.analysis`` exists.

Also exercised by the native tier's refuse-with-reason path: kernels
generated outside ``compile_program`` carry no bounds proof and must be
refused native lowering (see ``test_analysis.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.ir.nodes import (
    BinOp,
    Call,
    Coalesce,
    Const,
    IsValid,
    TDom,
    TIndex,
    TRef,
    TWindow,
    TemporalExpr,
    TiltProgram,
    UnaryOp,
)
from repro.windowing import SUM

_TD = TDom(precision=1.0)


def _prog(exprs, output, inputs=("x",)) -> TiltProgram:
    return TiltProgram(tuple(inputs), tuple(exprs), output)


@dataclass(frozen=True)
class UnsafeProgram:
    """One corpus entry: the program plus the finding it must provoke."""

    name: str
    program: TiltProgram
    expected_code: str
    expected_severity: str  # "error" | "warning"


def _unbounded_window() -> TiltProgram:
    # ~out[t] = sum(~x[-inf : t]) — no finite lookback margin exists, the
    # query cannot be partitioned (BS001; resolve_boundaries raises too).
    expr = TWindow("x", float("-inf"), 0.0).reduce(SUM)
    return _prog([TemporalExpr("out", _TD, expr)], "out")


def _const_read_into_void() -> TiltProgram:
    # ~mid carries no input lineage, so the resolved margins are zero — yet
    # ~out consumes ~mid 50 ticks in the past.  CompiledQuery.run would
    # materialize ~mid over (Ts, Te] only and the reads at (Ts-50, Te-50]
    # silently come back φ (BS003).
    mid = TemporalExpr("mid", _TD, Const(5.0))
    out = TemporalExpr(
        "out", _TD, BinOp("+", TIndex("x", 0.0), TIndex("mid", -50.0))
    )
    return _prog([mid, out], "out")


def _lookahead_shadow() -> TiltProgram:
    # ~fwd reads the *future* of ~x (margin: lookahead only, lookback 20);
    # ~out then reads ~fwd 30 ticks back.  Composed input margins cover
    # (Ts-20, Te], but ~fwd itself is consumed over (Ts-30, Te-30] while
    # materialized over (Ts-20, Te] — the head of the range is missing
    # (BS003).
    fwd = TemporalExpr("fwd", _TD, TWindow("x", 10.0, 20.0).reduce(SUM))
    out = TemporalExpr("out", _TD, TIndex("fwd", -30.0))
    return _prog([fwd, out], "out")


def _dead_definition() -> TiltProgram:
    # ~orphan is computed every partition but never consumed (DD001).
    orphan = TemporalExpr("orphan", _TD, TWindow("x", -10.0, 0.0).reduce(SUM))
    out = TemporalExpr("out", _TD, TIndex("x", 0.0))
    return _prog([orphan, out], "out")


def _unused_input() -> TiltProgram:
    # input ~y is declared but never referenced (DD002).
    out = TemporalExpr("out", _TD, TIndex("x", 0.0))
    return _prog([out], "out", inputs=("x", "y"))


def _unguarded_divide() -> TiltProgram:
    # ~x / ~x — the divisor can be zero and nothing observes the φ (DOM001).
    out = TemporalExpr(
        "out", _TD, BinOp("/", TIndex("x", 0.0), TIndex("x", -1.0))
    )
    return _prog([out], "out")


def _unguarded_sqrt() -> TiltProgram:
    # sqrt of a raw stream value that may be negative (DOM002).
    out = TemporalExpr("out", _TD, Call("sqrt", (TIndex("x", 0.0),)))
    return _prog([out], "out")


def _unguarded_log() -> TiltProgram:
    # log of a value not provably positive (DOM003).
    out = TemporalExpr("out", _TD, UnaryOp("log", TIndex("x", 0.0)))
    return _prog([out], "out")


def _misaligned_precision() -> TiltProgram:
    # precisions 3 and 2 don't nest: the partition alignment grid (3) is
    # not a multiple of 2, so partition edges can split ~fine's points
    # (BS004).
    fine = TemporalExpr("fine", TDom(precision=2.0), TIndex("x", 0.0))
    out = TemporalExpr(
        "out", TDom(precision=3.0), BinOp("+", TIndex("fine", 0.0), Const(1.0))
    )
    return _prog([fine, out], "out")


#: the corpus: every entry must yield its expected finding code
UNSAFE_PROGRAMS: List[UnsafeProgram] = [
    UnsafeProgram("unbounded-window", _unbounded_window(), "BS001", "error"),
    UnsafeProgram("const-read-into-void", _const_read_into_void(), "BS003", "error"),
    UnsafeProgram("lookahead-shadow", _lookahead_shadow(), "BS003", "error"),
    UnsafeProgram("dead-definition", _dead_definition(), "DD001", "warning"),
    UnsafeProgram("unused-input", _unused_input(), "DD002", "warning"),
    UnsafeProgram("unguarded-divide", _unguarded_divide(), "DOM001", "warning"),
    UnsafeProgram("unguarded-sqrt", _unguarded_sqrt(), "DOM002", "warning"),
    UnsafeProgram("unguarded-log", _unguarded_log(), "DOM003", "warning"),
    UnsafeProgram("misaligned-precision", _misaligned_precision(), "BS004", "warning"),
]


def guarded_domain_program() -> TiltProgram:
    """Negative control: the same divide/sqrt sites, properly guarded.

    The division result flows through ``Coalesce`` and the sqrt operand is
    ``abs``-wrapped — the analyzer must emit no DOM findings.
    """
    div = BinOp("/", TIndex("x", 0.0), TIndex("x", -1.0))
    root = Call("sqrt", (UnaryOp("abs", TIndex("x", 0.0)),))
    valid = IsValid(TIndex("x", 0.0))
    body = BinOp("+", Coalesce(div, Const(0.0)), BinOp("+", root, valid))
    return _prog([TemporalExpr("out", _TD, body)], "out")
