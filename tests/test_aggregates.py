"""Tests for the aggregate function templates (Init/Acc/Result/Deacc)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryBuildError
from repro.windowing import (
    COUNT,
    FIRST,
    LAST,
    MAX,
    MEAN,
    MIN,
    PRODUCT,
    STDDEV,
    SUM,
    SUM_SQUARES,
    VARIANCE,
    builtin_aggregates,
    custom_aggregate,
)

VALUES = [3.0, -1.0, 4.0, 1.0, -5.0, 9.0, 2.0, 6.0]


class TestBuiltinFolds:
    @pytest.mark.parametrize(
        "agg,expected",
        [
            (SUM, sum(VALUES)),
            (COUNT, len(VALUES)),
            (MAX, max(VALUES)),
            (MIN, min(VALUES)),
            (MEAN, np.mean(VALUES)),
            (VARIANCE, np.var(VALUES)),
            (STDDEV, np.std(VALUES)),
            (SUM_SQUARES, float(np.sum(np.square(VALUES)))),
            (PRODUCT, float(np.prod(VALUES))),
            (FIRST, VALUES[0]),
            (LAST, VALUES[-1]),
        ],
    )
    def test_fold_matches_numpy(self, agg, expected):
        value, valid = agg.fold(VALUES)
        assert valid
        assert value == pytest.approx(expected, rel=1e-9)

    def test_empty_fold_is_phi(self):
        for agg in builtin_aggregates().values():
            assert agg.fold([]) == (0.0, False)

    def test_fold_array_uses_vector_eval(self):
        value, valid = MEAN.fold_array(np.array(VALUES))
        assert valid and value == pytest.approx(np.mean(VALUES))

    def test_registry_contents(self):
        registry = builtin_aggregates()
        assert {"sum", "count", "mean", "max", "min", "stddev", "variance"} <= set(registry)

    def test_invertibility_flags(self):
        assert SUM.invertible and MEAN.invertible and STDDEV.invertible
        assert not MAX.invertible and not MIN.invertible

    def test_merge_partial_states(self):
        left, right = VALUES[:4], VALUES[4:]
        for agg in (SUM, COUNT, MEAN, VARIANCE, STDDEV, MAX, MIN):
            state_l = agg.init()
            for v in left:
                state_l = agg.acc(state_l, v)
            state_r = agg.init()
            for v in right:
                state_r = agg.acc(state_r, v)
            merged = agg.merge(state_l, state_r)
            full, _ = agg.fold(VALUES)
            assert agg.result(merged) == pytest.approx(full, rel=1e-9)


class TestPrefixDecomposition:
    @pytest.mark.parametrize("agg", [SUM, COUNT, MEAN, VARIANCE, STDDEV, SUM_SQUARES])
    def test_prefix_result_matches_fold(self, agg):
        arrays = agg.prefix_arrays(np.array(VALUES))
        sums = [np.array([np.sum(a)]) for a in arrays]
        via_prefix = float(np.asarray(agg.prefix_result(*sums))[0])
        via_fold, _ = agg.fold(VALUES)
        assert via_prefix == pytest.approx(via_fold, rel=1e-9)


class TestCustomAggregate:
    def test_custom_range(self):
        value_range = custom_aggregate(
            "range",
            init=lambda: (float("inf"), float("-inf")),
            acc=lambda s, v: (min(s[0], v), max(s[1], v)),
            result=lambda s: s[1] - s[0],
            merge=lambda a, b: (min(a[0], b[0]), max(a[1], b[1])),
            vector_eval=lambda vals: float(np.max(vals) - np.min(vals)),
        )
        folded, ok = value_range.fold(VALUES)
        assert ok and folded == max(VALUES) - min(VALUES)
        vectored, ok = value_range.fold_array(np.array(VALUES))
        assert ok and vectored == folded

    def test_custom_requires_callables(self):
        with pytest.raises(QueryBuildError):
            custom_aggregate("bad", init=None, acc=lambda s, v: s, result=lambda s: s)


@given(st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_mean_variance_consistency(values):
    """STDDEV² == VARIANCE and MEAN == SUM / COUNT for any value list."""
    mean, _ = MEAN.fold(values)
    total, _ = SUM.fold(values)
    count, _ = COUNT.fold(values)
    var, _ = VARIANCE.fold(values)
    std, _ = STDDEV.fold(values)
    assert mean == pytest.approx(total / count, rel=1e-9, abs=1e-9)
    assert std ** 2 == pytest.approx(var, rel=1e-6, abs=1e-6)
    assert var == pytest.approx(np.var(values), rel=1e-6, abs=1e-4)
