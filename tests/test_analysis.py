"""The static-analysis layer: bounds proofs, hygiene, domain checks, lint.

Four pillars of coverage:

* **Soundness on real programs**: every shipped application (raw and
  optimized, on both codegen tiers) must analyze with zero error-severity
  findings — the analyzer may not refuse programs the engine demonstrably
  runs correctly.
* **Completeness on the unsafe corpus**: every seeded-hazard fixture in
  ``fixtures.unsafe_programs`` must provoke exactly its expected finding
  code, and error-severity hazards must make ``compile_program`` raise
  :class:`AnalysisError` rather than emit kernels.
* **Proof plumbing**: kernels minted by ``compile_program`` carry a
  bounds proof derived from the report; specs generated outside the gate
  carry none and the native tier refuses them with a reason.
* **Codebase lint**: each AST checker fires on its seeded-violation
  fixture, stays silent on the adjacent negatives, honors inline
  suppressions, and finds nothing in ``src/repro`` itself.
"""

import json
import urllib.request
from pathlib import Path

import pytest

from fixtures.unsafe_programs import (
    UNSAFE_PROGRAMS,
    guarded_domain_program,
)
from repro.analysis import (
    Finding,
    ProgramReport,
    Severity,
    analyze_program,
    check_boundary,
    program_digest,
)
from repro.analysis.lint import lint_file, lint_paths, lint_source
from repro.analysis.program import clear_cache
from repro.apps import ALL_APPLICATIONS
from repro.core.codegen import native
from repro.core.codegen.compiled import compile_program
from repro.core.codegen.pysource import generate_kernel_spec
from repro.core.ir import IRBuilder, TDom, TIndex, TemporalExpr, TiltProgram
from repro.core.lineage.boundary import BoundarySpec, resolve_boundaries
from repro.core.runtime.engine import TiltEngine
from repro.errors import AnalysisError, ValidationError
from repro.serve import QueryService
from repro.windowing import SUM

FIXTURES = Path(__file__).parent / "fixtures"
LINT_FIXTURES = FIXTURES / "lint_violations"


def simple_program():
    b = IRBuilder()
    x = b.stream("x")
    b.define("out", x.window(-10, 0).reduce(SUM), precision=1)
    return b.build(output="out")


# ---------------------------------------------------------------------- #
# soundness: every shipped app is bounds-proven on both tiers
# ---------------------------------------------------------------------- #
class TestAppsAreProvablySafe:
    @pytest.mark.parametrize("name", sorted(ALL_APPLICATIONS))
    def test_raw_and_optimized_programs_have_no_errors(self, name):
        program = ALL_APPLICATIONS[name].program()
        raw = analyze_program(program)
        assert not raw.has_errors, raw.format()
        assert raw.proof_token() is not None
        optimized = compile_program(program).report
        assert optimized is not None and not optimized.has_errors

    @pytest.mark.parametrize("tier", ["numpy", "native"])
    @pytest.mark.parametrize("name", sorted(ALL_APPLICATIONS))
    def test_both_tiers_compile_only_proven_kernels(self, name, tier):
        if tier == "native" and not native.native_available():
            pytest.skip("native toolchain unavailable")
        compiled = compile_program(
            ALL_APPLICATIONS[name].program(), codegen_tier=tier
        )
        assert compiled.report is not None
        assert not compiled.report.has_errors
        proof = compiled.report.proof_token()
        for kernel in compiled.kernels:
            assert kernel.spec.bounds_proof == f"{proof}:{kernel.spec.name}"


# ---------------------------------------------------------------------- #
# completeness: the unsafe corpus
# ---------------------------------------------------------------------- #
class TestUnsafeCorpus:
    @pytest.mark.parametrize(
        "entry", UNSAFE_PROGRAMS, ids=[e.name for e in UNSAFE_PROGRAMS]
    )
    def test_expected_finding_fires(self, entry):
        report = analyze_program(entry.program)
        findings = report.by_code(entry.expected_code)
        assert findings, (
            f"{entry.name}: expected {entry.expected_code}, "
            f"got {sorted(report.codes())}\n{report.format()}"
        )
        assert all(
            f.severity == Severity(entry.expected_severity) for f in findings
        )

    @pytest.mark.parametrize(
        "entry",
        [e for e in UNSAFE_PROGRAMS if e.expected_severity == "error"],
        ids=[e.name for e in UNSAFE_PROGRAMS if e.expected_severity == "error"],
    )
    def test_error_findings_block_compilation(self, entry):
        # BS001 programs also fail boundary resolution — either refusal is
        # acceptable, but the BS003 class must be caught by the analyzer gate.
        # optimize=False: the optimizer can constant-fold a hazard away (a
        # legitimate fix!), and the gate must judge the program it will lower.
        with pytest.raises(Exception) as exc_info:
            compile_program(entry.program, optimize=False)
        if entry.expected_code == "BS003":
            assert isinstance(exc_info.value, AnalysisError)
            assert exc_info.value.report is not None
            assert exc_info.value.report.by_code("BS003")

    @pytest.mark.parametrize(
        "entry",
        [e for e in UNSAFE_PROGRAMS if e.expected_severity == "warning"],
        ids=[
            e.name for e in UNSAFE_PROGRAMS if e.expected_severity == "warning"
        ],
    )
    def test_warnings_do_not_block_compilation(self, entry):
        compiled = compile_program(entry.program, optimize=False)
        assert compiled.report is not None

    def test_guarded_domain_sites_are_clean(self):
        report = analyze_program(guarded_domain_program())
        dom = [f for f in report.findings if f.code.startswith("DOM")]
        assert dom == [], [f.format() for f in dom]


# ---------------------------------------------------------------------- #
# the boundary cross-check in isolation
# ---------------------------------------------------------------------- #
class TestBoundaryCrossCheck:
    def test_correct_plan_passes(self):
        program = simple_program()
        assert check_boundary(program, resolve_boundaries(program)) == []

    def test_weakened_margins_are_caught(self):
        # shrink the resolved lookback: a boundary plan that under-fetches
        # input history must be rejected, not trusted
        program = simple_program()
        good = resolve_boundaries(program)
        lb, la = good.margins["x"]
        weak = BoundarySpec({"x": (lb - 5.0, la)})
        findings = check_boundary(program, weak)
        assert any(f.code == "BS002" for f in findings)
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_inflated_margins_are_safe(self):
        # over-fetching wastes work but is sound — no findings
        program = simple_program()
        good = resolve_boundaries(program)
        lb, la = good.margins["x"]
        assert check_boundary(program, BoundarySpec({"x": (lb + 7.0, la)})) == []


# ---------------------------------------------------------------------- #
# proof plumbing: the native tier trusts only gated specs
# ---------------------------------------------------------------------- #
class TestProofPlumbing:
    def test_ungated_spec_is_refused_native_lowering(self):
        if not native.native_available():
            pytest.skip("native toolchain unavailable")
        te = simple_program().exprs[0]
        spec = generate_kernel_spec(te)  # bypasses the analyzer gate
        assert spec.bounds_proof is None
        kernel, reason = native.instantiate(spec)
        assert kernel is None
        assert "bounds-safety proof" in reason

    def test_gated_spec_is_accepted(self):
        if not native.native_available():
            pytest.skip("native toolchain unavailable")
        compiled = compile_program(simple_program(), codegen_tier="native")
        kernel, reason = native.instantiate(compiled.kernels[0].spec)
        assert reason is None or "bounds-safety proof" not in reason

    def test_proof_token_is_stable_and_digest_scoped(self):
        program = simple_program()
        report = analyze_program(program)
        token = report.proof_token()
        assert token == f"bounds-proof:{program_digest(program)[:16]}"

    def test_errors_yield_no_proof(self):
        report = analyze_program(UNSAFE_PROGRAMS[0].program)
        assert report.has_errors
        assert report.proof_token() is None

    def test_static_cost_rides_on_specs(self):
        compiled = compile_program(simple_program())
        assert all(k.spec.static_cost > 0.0 for k in compiled.kernels)

    def test_report_is_dropped_from_pickles(self):
        compiled = compile_program(simple_program())
        assert compiled.__getstate__()["report"] is None


# ---------------------------------------------------------------------- #
# caching and the engine entry point
# ---------------------------------------------------------------------- #
class TestAnalyzerCaching:
    def test_repeat_analysis_hits_cache(self):
        clear_cache()
        program = simple_program()
        assert analyze_program(program) is analyze_program(program)

    def test_distinct_programs_get_distinct_reports(self):
        a = analyze_program(simple_program())
        b = analyze_program(guarded_domain_program())
        assert a.digest != b.digest

    def test_engine_analyze_validates_first(self):
        engine = TiltEngine()
        report = engine.analyze(simple_program())
        assert isinstance(report, ProgramReport)
        bad = TiltProgram(
            ("in",), (TemporalExpr("out", TDom(), TIndex("ghost", 0.0)),), "out"
        )
        with pytest.raises(ValidationError):
            engine.analyze(bad)


# ---------------------------------------------------------------------- #
# report surface
# ---------------------------------------------------------------------- #
class TestReportSurface:
    def test_summary_and_to_dict_round_trip(self):
        report = analyze_program(UNSAFE_PROGRAMS[1].program)
        summary = report.summary()
        assert summary["errors"] >= 1
        assert "BS003" in summary["codes"]
        doc = report.to_dict()
        assert doc["digest"] == report.digest
        assert any(f["code"] == "BS003" for f in doc["findings"])

    def test_finding_format_carries_code_and_site(self):
        f = Finding("XX001", Severity.WARNING, "message", site="~out")
        assert "XX001" in f.format() and "~out" in f.format()


# ---------------------------------------------------------------------- #
# codebase lint
# ---------------------------------------------------------------------- #
class TestLint:
    def codes_at(self, violations):
        return {(v.code, v.line) for v in violations}

    def test_blocking_under_lock_fixture(self):
        found = lint_file(LINT_FIXTURES / "blocking_under_lock.py")
        assert self.codes_at(found) == {
            ("LNT101", 21),
            ("LNT101", 25),
            ("LNT101", 29),
            ("LNT101", 33),
        }

    def test_kernel_helper_fixture(self):
        found = lint_file(
            LINT_FIXTURES / "core" / "codegen" / "runtime_support.py"
        )
        assert self.codes_at(found) == {
            ("LNT102", 13),
            ("LNT102", 17),
            ("LNT102", 18),
            ("LNT102", 22),
        }

    def test_metric_name_fixture(self):
        found = lint_file(LINT_FIXTURES / "metric_names.py")
        assert self.codes_at(found) == {
            ("LNT103", 8),
            ("LNT103", 9),
            ("LNT103", 10),
            ("LNT103", 11),
        }

    def test_directory_walk_finds_all_seeded_violations(self):
        found = lint_paths([LINT_FIXTURES])
        assert len(found) == 12

    def test_suppression_comment_silences_a_violation(self):
        src = (
            "import time, threading\n"
            "lock = threading.Lock()\n"
            "def f():\n"
            "    with lock:\n"
            "        time.sleep(1)  # lint: allow(LNT101)\n"
        )
        assert lint_source(src, "x.py") == []
        unsuppressed = src.replace("  # lint: allow(LNT101)", "")
        assert [v.code for v in lint_source(unsuppressed, "x.py")] == ["LNT101"]

    def test_shared_state_rules_only_apply_to_kernel_helpers(self):
        src = "_CACHE = {}\ndef f(k, v):\n    _CACHE[k] = v\n"
        assert lint_source(src, "serve/service.py") == []
        flagged = lint_source(src, "core/codegen/runtime_support.py")
        assert [v.code for v in flagged] == ["LNT102"]

    def test_syntax_error_is_reported_not_raised(self):
        found = lint_source("def broken(:\n", "x.py")
        assert [v.code for v in found] == ["LNT000"]

    def test_src_repro_is_lint_clean(self):
        repo_src = Path(__file__).parent.parent / "src" / "repro"
        found = lint_paths([repo_src])
        assert found == [], [v.format() for v in found]


# ---------------------------------------------------------------------- #
# observability surface
# ---------------------------------------------------------------------- #
class TestObservabilitySurface:
    def test_analyze_route_serves_reports(self):
        with QueryService(workers=1, telemetry_port=0) as service:
            name = service.submit(simple_program(), name="t0")
            base = service.telemetry.url
            with urllib.request.urlopen(
                f"{base}/analyze?tenant={name}", timeout=5
            ) as resp:
                doc = json.loads(resp.read())
            assert doc["digest"]
            assert isinstance(doc["findings"], list)
            with urllib.request.urlopen(f"{base}/analyze", timeout=5) as resp:
                index = json.loads(resp.read())
            assert index[name]["errors"] == 0

    def test_tenant_static_cost_is_described(self):
        with QueryService(workers=1) as service:
            name = service.submit(simple_program(), name="t0")
            doc = service._tenants[name].describe()
            assert doc["static_cost"] > 0.0


# ---------------------------------------------------------------------- #
# scheduler seeding
# ---------------------------------------------------------------------- #
class TestSchedulerSeeding:
    class FakeTenant:
        def __init__(self, name, static_cost):
            self.name = name
            self.weight = 1.0
            self.static_cost = static_cost
            self.cost_ewma = None

    def test_first_observation_calibrates_later_admissions(self):
        from repro.serve.scheduler import DeficitFairPolicy

        policy = DeficitFairPolicy()
        veteran = self.FakeTenant("veteran", static_cost=200.0)
        policy.admit(veteran)
        assert veteran.cost_ewma is None  # no fleet scale known yet
        policy.record(veteran, seconds=0.02)
        rookie = self.FakeTenant("rookie", static_cost=400.0)
        policy.admit(rookie)
        # 2x the static cost at the learned scale of 1e-4 s/unit
        assert rookie.cost_ewma == pytest.approx(0.04)

    def test_observed_costs_are_never_overwritten(self):
        from repro.serve.scheduler import DeficitFairPolicy

        policy = DeficitFairPolicy()
        first = self.FakeTenant("first", static_cost=100.0)
        policy.admit(first)
        policy.record(first, seconds=0.01)
        seasoned = self.FakeTenant("seasoned", static_cost=100.0)
        seasoned.cost_ewma = 0.5
        policy.admit(seasoned)
        assert seasoned.cost_ewma == 0.5
