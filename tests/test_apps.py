"""Tests for the benchmark applications: structure, executability and sanity
of the analytics each query is supposed to perform."""

import numpy as np
import pytest

from repro.apps import (
    ALL_APPLICATIONS,
    FRAUD_DETECTION,
    IMPUTATION,
    NORMALIZATION,
    PAN_TOMPKINS,
    PRIMITIVE_OPERATIONS,
    REAL_WORLD_APPLICATIONS,
    RSI,
    TREND_TRADING,
    VIBRATION,
    YSB,
    get_application,
)
from repro.core.ir import validate_program
from repro.core.lineage import resolve_boundaries
from repro.spe import TrillEngine
from repro.core.runtime.ssbuf import ssbuf_from_stream


class TestRegistry:
    def test_eight_real_world_applications(self):
        assert len(REAL_WORLD_APPLICATIONS) == 8
        names = [app.name for app in REAL_WORLD_APPLICATIONS]
        assert names == [
            "trading", "rsi", "normalize", "impute", "resample", "pantom", "vibration", "frauddet",
        ]

    def test_four_primitive_operations(self):
        assert [a.name for a in PRIMITIVE_OPERATIONS] == ["select", "where", "wsum", "join"]

    def test_lookup(self):
        assert get_application("ysb") is YSB
        with pytest.raises(KeyError):
            get_application("nope")

    def test_metadata_present(self):
        for app in ALL_APPLICATIONS.values():
            assert app.title and app.description and app.operators and app.dataset


class TestProgramsCompile:
    @pytest.mark.parametrize("name", sorted(ALL_APPLICATIONS))
    def test_program_validates_and_resolves(self, name):
        app = ALL_APPLICATIONS[name]
        program = app.program()
        validate_program(program)
        spec = resolve_boundaries(program)
        assert spec.max_lookback >= 0.0

    @pytest.mark.parametrize("name", sorted(ALL_APPLICATIONS))
    def test_streams_match_program_inputs(self, name):
        app = ALL_APPLICATIONS[name]
        streams = app.streams(200, seed=0)
        program = app.program()
        available = set()
        for stream_name, stream in streams.items():
            if stream.is_structured:
                available.update(f"{stream_name}.{f}" for f in stream.fields())
            else:
                available.add(stream_name)
        assert set(program.inputs) <= available


class TestApplicationSemantics:
    def test_trend_trading_detects_uptrends(self):
        streams = TREND_TRADING.streams(2000, seed=3)
        result = TREND_TRADING.run_tilt(streams, workers=2)
        out = result.output
        assert 0 < out.num_valid()
        # every reported value is a positive short-minus-long average gap
        assert np.all(out.values[out.valid] > 0)

    def test_rsi_values_bounded(self):
        streams = RSI.streams(1500, seed=4)
        out = RSI.run_tilt(streams).output
        values = out.values[out.valid]
        assert len(values) > 0
        assert np.all(values >= 0.0) and np.all(values <= 100.0)

    def test_normalization_zero_mean_unit_std(self):
        streams = NORMALIZATION.streams(5000, seed=5)
        out = NORMALIZATION.run_tilt(streams).output
        values = out.values[out.valid]
        assert abs(np.mean(values)) < 0.2
        assert 0.7 < np.std(values) < 1.3

    def test_imputation_fills_gaps(self):
        streams = IMPUTATION.streams(4000, seed=6)
        signal = streams["signal"]
        out = IMPUTATION.run_tilt(streams).output
        buf = ssbuf_from_stream(signal)
        t_lo, t_hi = signal.time_range()
        grid = np.linspace(t_lo + 0.2 * (t_hi - t_lo), t_hi, 500)
        raw_v, raw_ok = buf.values_at(grid)
        imp_v, imp_ok = out.values_at(grid)
        # imputed stream is defined (almost) everywhere the raw one is, and more
        assert imp_ok.sum() > raw_ok.sum()
        # where the raw signal exists, imputation must not change it
        both = raw_ok & imp_ok
        assert np.allclose(raw_v[both], imp_v[both])

    def test_pan_tompkins_detects_plausible_heart_rate(self):
        streams = PAN_TOMPKINS.streams(128 * 40, seed=7)   # ~40 seconds of ECG
        out = PAN_TOMPKINS.run_tilt(streams, workers=2).output
        detections = out.to_events()
        assert detections
        # count distinct QRS bursts (gaps > 0.3 s between detections)
        burst_count = 1
        for prev, cur in zip(detections, detections[1:]):
            if cur.start - prev.end > 0.3:
                burst_count += 1
        duration_minutes = 40.0 / 60.0
        bpm = burst_count / duration_minutes
        assert 40 <= bpm <= 140

    def test_vibration_alerts_on_impulsive_windows(self):
        streams = VIBRATION.streams(30000, seed=8)
        out = VIBRATION.run_tilt(streams).output
        assert out.num_valid() > 0
        assert np.all(out.values[out.valid] > 4.0)

    def test_fraud_detection_flags_inflated_amounts(self):
        streams = FRAUD_DETECTION.streams(8000, seed=9)
        out = FRAUD_DETECTION.run_tilt(streams, workers=2).output
        flagged = out.values[out.valid]
        amounts = streams["transactions"].values("amount")
        assert len(flagged) > 0
        # flagged amounts are far in the tail of the distribution
        assert np.median(flagged) > np.percentile(amounts, 90)

    def test_ysb_counts_views(self):
        streams = YSB.streams(40_000, seed=10)
        out = YSB.run_tilt(streams, workers=2).output
        counts = out.values[out.valid]
        types = streams["ads"].values("event_type")
        assert counts.sum() == pytest.approx(np.sum(types == 0.0))


class TestBaselineParity:
    @pytest.mark.parametrize("name", ["trading", "normalize", "ysb", "wsum", "join"])
    def test_trill_matches_tilt(self, name):
        app = ALL_APPLICATIONS[name]
        streams = app.streams(1500, seed=11)
        tilt = app.run_tilt(streams, workers=2).output
        trill = app.run_baseline(TrillEngine(batch_size=512), streams)
        assert len(trill) > 0
        tb = ssbuf_from_stream(trill, on_overlap="last")
        lo, hi = tilt.start_time, tilt.end_time
        grid = np.linspace(lo + 0.1 * (hi - lo), hi - 0.05 * (hi - lo), 200)
        tv, tk = tilt.values_at(grid)
        bv, bk = tb.values_at(grid)
        assert np.array_equal(tk, bk)
        assert np.allclose(tv[tk], bv[bk], rtol=1e-6)

    def test_run_baseline_helper(self):
        app = ALL_APPLICATIONS["select"]
        streams = app.streams(100, seed=1)
        out = app.run_baseline(TrillEngine(), streams)
        assert len(out) == 100
