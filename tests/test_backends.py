"""Cross-backend execution equivalence and process-parallel specifics.

The paper's scalability argument rests on compiled kernels being pure
functions of their partition; the worker-pool backend must therefore be
unobservable in the output.  This suite pins that down: every application in
``repro.apps`` produces byte-identical snapshot buffers on the serial,
thread and process backends (including over ragged partition grids), a
streaming session ticks identically on the process backend, and the
serialization contract (specs, buffers, partitions, payload caching,
thread fallback for unpicklable queries) holds.
"""

import gc
import pickle
import weakref

import numpy as np
import pytest

from repro.apps import ALL_APPLICATIONS, get_application
from repro.core.codegen import native as native_codegen
from repro.core.codegen.compiled import CompiledKernel, CompiledQuery, compile_program
from repro.core.frontend.query import PAYLOAD, source
from repro.core.runtime.engine import TiltEngine
from repro.core.runtime.executor import (
    _WORKER_QUERY_CACHE,
    PayloadMissError,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
    run_compiled_partition,
)
from repro.core.runtime.partition import Partition, partition_inputs
from repro.core.runtime.ssbuf import SSBuf, ssbuf_from_stream
from repro.datagen.sources import sources_for_streams
from repro.errors import QueryBuildError
from repro.windowing import MEAN, custom_aggregate

E = PAYLOAD

#: events per application — small enough to keep the sweep fast, large
#: enough that every app emits output across several partitions
APP_EVENTS = 500

requires_native = pytest.mark.skipif(
    not native_codegen.native_available(),
    reason="native codegen toolchain (cffi + C compiler) unavailable",
)


@pytest.fixture(scope="module")
def process_engine():
    """One long-lived process pool shared by the whole equivalence sweep."""
    with TiltEngine(workers=2, executor_kind="process", partitions_per_worker=3) as engine:
        yield engine


@pytest.fixture(scope="module")
def thread_engine():
    with TiltEngine(workers=3, executor_kind="thread", partitions_per_worker=3) as engine:
        yield engine


@pytest.fixture(scope="module")
def native_thread_engine():
    """Thread-pool engine on the native tier, same grid as thread_engine."""
    with TiltEngine(
        workers=3, executor_kind="thread", partitions_per_worker=3, codegen_tier="native"
    ) as engine:
        yield engine


@pytest.fixture(scope="module")
def native_process_engine():
    """Process-pool engine on the native tier, same grid as process_engine."""
    with TiltEngine(
        workers=2, executor_kind="process", partitions_per_worker=3, codegen_tier="native"
    ) as engine:
        yield engine


def assert_bitwise_equal(got: SSBuf, want: SSBuf) -> None:
    """Byte-for-byte snapshot equality: times, mask, and the raw float bits
    of the values (strictly stronger than ``SSBuf.__eq__``'s allclose)."""
    assert len(got) == len(want)
    assert got.start_time == want.start_time
    assert np.array_equal(got.times, want.times)
    assert np.array_equal(got.valid, want.valid)
    got_bits = np.asarray(got.values, dtype=np.float64).view(np.uint64)
    want_bits = np.asarray(want.values, dtype=np.float64).view(np.uint64)
    assert np.array_equal(got_bits, want_bits), "values differ bitwise"


# ---------------------------------------------------------------------- #
# cross-backend equivalence
# ---------------------------------------------------------------------- #
class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("name", sorted(ALL_APPLICATIONS))
    def test_every_app_identical_across_backends(self, name, thread_engine, process_engine):
        app = ALL_APPLICATIONS[name]
        program = app.program()
        streams = app.streams(APP_EVENTS, seed=17)
        with TiltEngine(workers=1) as serial:
            reference = serial.run(program, streams).output
        assert thread_engine.run(program, streams).output == reference
        assert process_engine.run(program, streams).output == reference

    @pytest.mark.parametrize("interval", [13.0, 41.5])
    def test_ragged_partition_intervals(self, interval):
        """Fixed-interval partitioning that does not divide the time range
        evenly (a ragged tail partition) is backend-invariant too."""
        app = get_application("trading")
        program = app.program()
        streams = app.streams(700, seed=5)
        with TiltEngine(workers=1) as serial:
            reference = serial.run(program, streams).output
        for kind in ("thread", "process"):
            with TiltEngine(workers=2, executor_kind=kind, partition_interval=interval) as eng:
                assert eng.run(program, streams).output == reference, kind

    def test_streaming_session_ticks_on_process_backend(self):
        """Tick-by-tick session output on the process backend concatenates to
        the serial one-shot run, ragged ticks included."""
        app = get_application("rsi")
        program = app.program()
        streams = app.streams(600, seed=11)
        with TiltEngine(workers=1) as serial:
            reference = serial.run(program, streams).output
        with TiltEngine(workers=2, executor_kind="process") as engine:
            session = engine.open_session(
                program, sources_for_streams(streams, events_per_poll=83)
            )
            ticks = 0
            while not session.exhausted:
                session.tick()
                ticks += 1
            session.close()
            assert ticks > 3, "expected a multi-tick run"
            assert session.result().output == reference


# ---------------------------------------------------------------------- #
# codegen tier equivalence
# ---------------------------------------------------------------------- #
@requires_native
class TestCodegenTierEquivalence:
    """The native tier must be unobservable next to the NumPy tier.

    Comparisons between the two tiers on the *same* engine configuration
    are bitwise — both tiers lower the same ``KernelSpec`` and the C
    kernels reproduce NumPy's accumulation order exactly.  Comparisons
    across partition grids use ``SSBuf`` equality like the rest of this
    suite: even the NumPy tier is only reassociation-invariant across
    grids (per-partition variance centering picks different means).
    """

    @pytest.mark.parametrize("name", sorted(ALL_APPLICATIONS))
    def test_every_app_bitwise_identical_numpy_vs_native(
        self, name, thread_engine, native_thread_engine, process_engine, native_process_engine
    ):
        app = ALL_APPLICATIONS[name]
        program = app.program()
        streams = app.streams(APP_EVENTS, seed=17)
        with TiltEngine(workers=1) as serial_np:
            reference = serial_np.run(program, streams).output
        with TiltEngine(workers=1, codegen_tier="native") as serial_nat:
            assert_bitwise_equal(serial_nat.run(program, streams).output, reference)
        thread_nat = native_thread_engine.run(program, streams).output
        assert_bitwise_equal(thread_nat, thread_engine.run(program, streams).output)
        assert thread_nat == reference
        process_nat = native_process_engine.run(program, streams).output
        assert_bitwise_equal(process_nat, process_engine.run(program, streams).output)
        assert process_nat == reference

    @pytest.mark.parametrize("interval", [13.0, 41.5])
    def test_ragged_partition_intervals_native(self, interval):
        app = get_application("trading")
        program = app.program()
        streams = app.streams(700, seed=5)
        with TiltEngine(workers=1) as serial:
            reference = serial.run(program, streams).output
        for kind in ("thread", "process"):
            kw = dict(workers=2, executor_kind=kind, partition_interval=interval)
            with TiltEngine(**kw) as np_eng:
                np_out = np_eng.run(program, streams).output
            with TiltEngine(**kw, codegen_tier="native") as nat_eng:
                nat_out = nat_eng.run(program, streams).output
            assert_bitwise_equal(nat_out, np_out)
            assert nat_out == reference, kind

    def test_streaming_session_ticks_native(self):
        """Native-tier session ticks concatenate bitwise-identically to the
        NumPy tier over the same ragged tick schedule, and match the serial
        one-shot reference."""
        app = get_application("rsi")
        program = app.program()
        streams = app.streams(600, seed=11)

        def session_output(**engine_kwargs):
            with TiltEngine(**engine_kwargs) as engine:
                session = engine.open_session(
                    program, sources_for_streams(streams, events_per_poll=83)
                )
                session.run_to_exhaustion()
                return session.result().output

        np_out = session_output(workers=1)
        nat_out = session_output(workers=1, codegen_tier="native")
        assert_bitwise_equal(nat_out, np_out)
        with TiltEngine(workers=1) as serial:
            assert nat_out == serial.run(program, streams).output

    def test_incremental_session_native(self):
        """Incremental mode (reduce-site runtime override) composes with the
        native tier: output kernels take the NumPy path under the override,
        intermediates run natively, output stays bitwise-identical."""
        app = get_application("normalize")
        program = app.program()
        streams = app.streams(600, seed=11)

        def session_output(**engine_kwargs):
            with TiltEngine(**engine_kwargs) as engine:
                session = engine.open_session(
                    program,
                    sources_for_streams(streams, events_per_poll=83),
                    incremental=True,
                )
                session.run_to_exhaustion()
                return session.result().output

        assert_bitwise_equal(
            session_output(workers=1, codegen_tier="native"), session_output(workers=1)
        )


# ---------------------------------------------------------------------- #
# serialization contract
# ---------------------------------------------------------------------- #
class TestSerialization:
    def test_ssbuf_round_trips_as_raw_arrays(self, random_walk_buf):
        clone = pickle.loads(pickle.dumps(random_walk_buf))
        assert clone == random_walk_buf
        assert clone.start_time == random_walk_buf.start_time

    def test_partition_round_trip(self, random_walk_buf):
        program = get_application("trading").program()
        compiled = compile_program(program)
        parts = partition_inputs(
            {"stock": random_walk_buf}, compiled.boundary, 0.0, 200.0, num_partitions=4
        )
        clone = pickle.loads(pickle.dumps(parts[1]))
        assert isinstance(clone, Partition)
        assert (clone.index, clone.t_start, clone.t_end) == (
            parts[1].index,
            parts[1].t_start,
            parts[1].t_end,
        )
        assert clone.inputs["stock"] == parts[1].inputs["stock"]

    def test_compiled_query_round_trip_runs_identically(self, random_walk_buf):
        program = get_application("trading").program()
        compiled = compile_program(program)
        reference = compiled.run({"stock": random_walk_buf}, 0.0, 200.0)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.run({"stock": random_walk_buf}, 0.0, 200.0) == reference

    def test_kernel_rebuild_cache_shares_instantiations(self):
        """Unpickling the same kernel twice in one process instantiates it
        once (content-digest rebuild cache)."""
        program = source("stock").window(10, 1).aggregate(MEAN).to_program()
        compiled = compile_program(program)
        blob = pickle.dumps(compiled.kernels[0])
        first = pickle.loads(blob)
        second = pickle.loads(blob)
        assert first is second
        assert isinstance(first, CompiledKernel)
        assert first.spec.digest() == compiled.kernels[0].spec.digest()

    def test_payload_computed_once_and_cached(self):
        program = get_application("trading").program()
        compiled = compile_program(program)
        payload = compiled.pickle_payload()
        assert payload is not None and compiled.picklable
        assert compiled.pickle_payload() is payload

    def test_unpicklable_custom_aggregate_degrades_to_none(self):
        crest = custom_aggregate(
            "crest",
            init=lambda: (0.0, 0.0),
            acc=lambda s, v: (max(s[0], abs(v)), s[1] + v * v),
            result=lambda s: s[0],
        )
        program = source("stock").window(10, 1).aggregate(crest).to_program()
        compiled = compile_program(program)
        assert compiled.pickle_payload() is None
        assert not compiled.picklable

    def test_run_compiled_partition_task(self, random_walk_buf):
        """The module-level worker task runs a shipped partition end to end
        (exercised in-process, exactly as a pool worker would)."""
        program = get_application("trading").program()
        compiled = compile_program(program)
        digest, blob = compiled.pickle_payload()
        parts = partition_inputs(
            {"stock": random_walk_buf}, compiled.boundary, 0.0, 200.0, num_partitions=3
        )
        pieces = [run_compiled_partition((digest, blob, p)) for p in parts]
        expected = [compiled.run(p.inputs, p.t_start, p.t_end) for p in parts]
        assert pieces == expected

    def test_digest_only_task_misses_then_hits(self, random_walk_buf):
        """A digest-only task raises ``PayloadMissError`` in a cold worker
        and succeeds once the worker has been seeded — the steady-state
        protocol that keeps session ticks from re-shipping the payload."""
        program = get_application("trading").program()
        compiled = compile_program(program)
        digest, blob = compiled.pickle_payload()
        part = partition_inputs(
            {"stock": random_walk_buf}, compiled.boundary, 0.0, 100.0, num_partitions=1
        )[0]
        _WORKER_QUERY_CACHE.pop(digest, None)  # make this "worker" cold
        with pytest.raises(PayloadMissError):
            run_compiled_partition((digest, None, part))
        seeded = run_compiled_partition((digest, blob, part))
        assert run_compiled_partition((digest, None, part)) == seeded

    def test_process_engine_seeds_pool_then_goes_digest_only(self):
        """After the first run, the engine marks the payload digest as
        seeded on its pool and later runs (and session ticks) dispatch
        digest-only tasks — still byte-identical."""
        app = get_application("trading")
        program = app.program()
        streams = app.streams(500, seed=21)
        with TiltEngine(workers=1) as serial:
            reference = serial.run(program, streams).output
        with TiltEngine(workers=2, executor_kind="process") as engine:
            compiled = engine.compile(program)
            digest, _ = compiled.pickle_payload()
            assert engine.run(compiled, streams).output == reference
            assert digest in engine.shared_executor().seeded_digests
            assert engine.run(compiled, streams).output == reference


# ---------------------------------------------------------------------- #
# backend selection and fallback
# ---------------------------------------------------------------------- #
class TestBackendSelection:
    def test_make_executor_kinds(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), ThreadPoolExecutor)
        assert isinstance(make_executor(4, "serial"), SerialExecutor)
        with make_executor(2, "process") as pool:
            assert isinstance(pool, ProcessPoolExecutor)
            assert pool.kind == "process"
        with pytest.raises(ValueError):
            make_executor(2, "gpu")

    def test_engine_rejects_unknown_kind(self):
        with pytest.raises(QueryBuildError):
            TiltEngine(workers=2, executor_kind="gpu")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        engine = TiltEngine(workers=2)
        try:
            assert engine.executor_kind == "process"
            assert engine.shared_executor().kind == "process"
        finally:
            engine.close()
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        with TiltEngine(workers=2) as engine:
            assert engine.shared_executor().kind == "serial"

    def test_explicit_kind_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        with TiltEngine(workers=2, executor_kind="thread") as engine:
            assert engine.shared_executor().kind == "thread"

    def test_unpicklable_query_falls_back_to_threads(self):
        """A lambda-aggregate query on the process backend silently runs on
        the in-process fallback and still matches serial output."""
        app = get_application("vibration")  # custom lambda aggregates
        program = app.program()
        streams = app.streams(400, seed=2)
        with TiltEngine(workers=1) as serial:
            reference = serial.run(program, streams).output
        with TiltEngine(workers=2, executor_kind="process") as engine:
            assert not engine.compile(program).picklable
            assert engine.run(program, streams).output == reference
            assert engine._fallback_executor is not None
            assert engine._fallback_executor.kind == "thread"

    def test_interpreted_mode_falls_back_to_threads(self, random_walk_stream):
        program = get_application("trading").program()
        with TiltEngine(workers=1, mode="interpreted") as serial:
            reference = serial.run(program, {"stock": random_walk_stream}).output
        with TiltEngine(workers=2, executor_kind="process", mode="interpreted") as engine:
            assert engine.run(program, {"stock": random_walk_stream}).output == reference
            assert engine._fallback_executor is not None
