"""Tests for temporal lineage analysis and boundary resolution (Section 5.1)."""

import pytest

from repro.core.frontend.query import LEFT, PAYLOAD, RIGHT, source
from repro.core.ir import IRBuilder, TDom, TemporalExpr, TIndex, TiltProgram, when
from repro.core.lineage import (
    AccessPattern,
    BoundarySpec,
    collect_accesses,
    compose_extents,
    resolve_boundaries,
)
from repro.errors import BoundaryResolutionError
from repro.windowing import MEAN, SUM

E = PAYLOAD


class TestAccessPatterns:
    def test_collect_accesses(self):
        b = IRBuilder()
        stock = b.stream("stock")
        expr = stock.window(-10, 0).reduce(SUM) + stock.at(-3.0)
        accesses = collect_accesses(expr)
        assert accesses["stock"].windows == {(-10.0, 0.0)}
        assert accesses["stock"].point_offsets == {-3.0}
        assert accesses["stock"].min_offset == -10.0
        assert accesses["stock"].max_offset == 0.0
        assert accesses["stock"].boundary_offsets() == {-10.0, 0.0, -3.0}

    def test_access_pattern_merge(self):
        a = AccessPattern({1.0}, {(-5.0, 0.0)})
        b = AccessPattern({-2.0}, set())
        a.merge(b)
        assert a.point_offsets == {1.0, -2.0}


class TestComposeExtents:
    def test_trend_query_lineage(self):
        """The paper's example: ~filter depends on ~stock over (T-20, T]."""
        stock = source("stock")
        avg10 = stock.window(10, 1).aggregate(MEAN)
        avg20 = stock.window(20, 1).aggregate(MEAN)
        trend = avg10.join(avg20, LEFT - RIGHT).where(E > 0)
        program = trend.to_program()
        extents = compose_extents(program, program.output)
        assert extents["stock"] == (-20.0, 0.0)

    def test_chained_offsets_compose_additively(self):
        b = IRBuilder()
        x = b.stream("x")
        mid = b.define("mid", x.at(-5.0))
        b.define("out", mid.at(-3.0))
        extents = compose_extents(b.build(), "out")
        assert extents["x"] == (-8.0, -8.0)

    def test_window_over_shifted_producer(self):
        b = IRBuilder()
        x = b.stream("x")
        shifted = b.define("shifted", x.at(-2.0))
        b.define("out", shifted.window(-10, 0).reduce(SUM))
        extents = compose_extents(b.build(), "out")
        assert extents["x"] == (-12.0, -2.0)

    def test_input_extent_of_itself(self):
        b = IRBuilder()
        x = b.stream("x")
        b.define("out", x.at(0.0))
        assert compose_extents(b.build(), "x") == {"x": (0.0, 0.0)}


class TestBoundarySpec:
    def test_resolve_trend(self):
        stock = source("stock")
        trend = (
            stock.window(10, 1).aggregate(MEAN)
            .join(stock.window(20, 1).aggregate(MEAN), LEFT - RIGHT)
            .where(E > 0)
        )
        spec = resolve_boundaries(trend.to_program())
        assert spec.lookback("stock") == 20.0
        assert spec.lookahead("stock") == 0.0
        assert spec.max_lookback == 20.0
        assert spec.input_interval("stock", 100.0, 200.0) == (80.0, 200.0)
        assert "Ts-20" in spec.describe()

    def test_lookahead_from_negative_shift(self):
        # an expression reading the *future* produces a lookahead margin
        b = IRBuilder()
        x = b.stream("x")
        b.define("out", x.at(5.0))
        spec = resolve_boundaries(b.build())
        assert spec.lookahead("x") == 5.0
        assert spec.lookback("x") == 0.0

    def test_multiple_inputs(self):
        left = source("left").shift(3.0)
        right = source("right").window(7, 1).aggregate(MEAN)
        joined = left.join(right, LEFT + RIGHT)
        spec = resolve_boundaries(joined.to_program())
        assert spec.lookback("left") == 3.0
        assert spec.lookback("right") == 7.0

    def test_unused_input_defaults_to_zero(self):
        b = IRBuilder()
        b.stream("used")
        b.stream("unused")
        x = b.define("out", TIndex("used", 0.0))
        spec = resolve_boundaries(b.build(output="out"))
        assert spec.margins["unused"] == (0.0, 0.0)

    def test_unbounded_extent_rejected(self):
        import math

        te = TemporalExpr("out", TDom(), TIndex("x", -math.inf))
        program = TiltProgram(("x",), (te,), "out")
        with pytest.raises(BoundaryResolutionError):
            resolve_boundaries(program)
