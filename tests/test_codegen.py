"""Tests for code generation and the two execution backends.

The central invariant: the compiled (NumPy source-generated) backend produces
exactly the same snapshot buffers as the interpreted reference backend for
any query, and both respect the φ-propagation semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codegen import (
    CompiledQuery,
    Interpreter,
    compile_program,
    evaluate_expr_at,
    evaluate_program,
    evaluate_temporal_expr,
    evaluation_times,
    generate_kernel_spec,
    snap_to_precision,
)
from repro.core.frontend.query import LEFT, PAYLOAD, RIGHT, source
from repro.core.ir import (
    Call,
    Coalesce,
    Const,
    ELEM_VAR,
    IRBuilder,
    IsValid,
    Let,
    Phi,
    TDom,
    TIndex,
    TemporalExpr,
    Var,
    when,
)
from repro.core.lineage import resolve_boundaries
from repro.core.runtime.ssbuf import SSBuf, ssbuf_from_stream
from repro.core.runtime.stream import Event, EventStream
from repro.errors import ExecutionError
from repro.windowing import MAX, MEAN, STDDEV, SUM

E = PAYLOAD


# ---------------------------------------------------------------------- #
# scalar interpreter
# ---------------------------------------------------------------------- #
class TestScalarEvaluation:
    def setup_method(self):
        self.env = {"x": SSBuf([1.0, 2.0, 3.0], [10.0, 20.0, 30.0], [True, False, True], 0.0)}

    def test_const_phi_var(self):
        assert evaluate_expr_at(Const(3.0), 0.0, {}) == (3.0, True)
        assert evaluate_expr_at(Phi(), 0.0, {}) == (0.0, False)
        assert evaluate_expr_at(Var("a"), 0.0, {}, {"a": (7.0, True)}) == (7.0, True)
        with pytest.raises(ExecutionError):
            evaluate_expr_at(Var("missing"), 0.0, {})

    def test_point_access(self):
        assert evaluate_expr_at(TIndex("x", 0.0), 0.5, self.env) == (10.0, True)
        assert evaluate_expr_at(TIndex("x", 0.0), 1.5, self.env) == (0.0, False)
        assert evaluate_expr_at(TIndex("x", -2.0), 2.5, self.env) == (10.0, True)

    def test_phi_propagation_through_arithmetic(self):
        expr = TIndex("x", 0.0) + 1.0
        assert evaluate_expr_at(expr, 1.5, self.env) == (0.0, False)

    def test_division_by_zero_is_phi(self):
        expr = Const(1.0) / Const(0.0)
        assert evaluate_expr_at(expr, 0.0, {}) == (0.0, False)

    def test_conditional_and_isvalid(self):
        x = TIndex("x", 0.0)
        assert evaluate_expr_at(when(x > 5.0, x), 0.5, self.env) == (10.0, True)
        assert evaluate_expr_at(when(x > 50.0, x), 0.5, self.env)[1] is False
        assert evaluate_expr_at(IsValid(x), 1.5, self.env) == (0.0, True)
        assert evaluate_expr_at(Coalesce(x, Const(-1.0)), 1.5, self.env) == (-1.0, True)

    def test_let_scoping(self):
        expr = Let((("a", TIndex("x", 0.0)),), Var("a") * 2.0)
        assert evaluate_expr_at(expr, 0.5, self.env) == (20.0, True)

    def test_reduce_over_window(self):
        from repro.core.ir import Reduce, TWindow

        expr = Reduce(SUM, TWindow("x", -3.0, 0.0))
        value, ok = evaluate_expr_at(expr, 3.0, self.env)
        assert ok and value == 40.0  # snapshots 10 and 30 (the φ one is skipped)

    def test_reduce_with_element_map(self):
        from repro.core.ir import Reduce, TWindow

        expr = Reduce(SUM, TWindow("x", -3.0, 0.0), element=Var(ELEM_VAR) * 2.0)
        value, ok = evaluate_expr_at(expr, 3.0, self.env)
        assert ok and value == 80.0

    def test_call(self):
        assert evaluate_expr_at(Call("sqrt", (Const(4.0),)), 0.0, {}) == (2.0, True)


# ---------------------------------------------------------------------- #
# evaluation grid
# ---------------------------------------------------------------------- #
class TestEvaluationGrid:
    def test_snap_to_precision(self):
        snapped = snap_to_precision(np.array([0.3, 1.0, 1.2]), 0.5)
        assert list(snapped) == [0.5, 1.0, 1.5]
        assert list(snap_to_precision(np.array([0.3]), 0.0)) == [0.3]

    def test_times_include_shifted_changes_and_end(self, simple_buf):
        expr = TIndex("simple", -2.0)
        times = evaluation_times(expr, {"simple": simple_buf}, TDom(), 0.0, 50.0)
        # change at 10 shifted by +2 => 12 must be present, and the domain end
        assert 12.0 in times
        assert times[-1] == 50.0

    def test_precision_snapping_in_grid(self, simple_buf):
        expr = TIndex("simple", 0.0)
        times = evaluation_times(expr, {"simple": simple_buf}, TDom(precision=5.0), 0.0, 50.0)
        interior = times[:-1]
        assert np.allclose(np.mod(interior, 5.0), 0.0)

    def test_empty_range(self, simple_buf):
        expr = TIndex("simple", 0.0)
        assert len(evaluation_times(expr, {"simple": simple_buf}, TDom(), 10.0, 10.0)) == 0


# ---------------------------------------------------------------------- #
# generated kernels
# ---------------------------------------------------------------------- #
class TestKernelGeneration:
    def test_kernel_spec_contents(self):
        b = IRBuilder()
        stock = b.stream("stock")
        b.define("avg", stock.window(-10, 0).reduce(MEAN), precision=1)
        program = b.build()
        spec = generate_kernel_spec(program.exprs[0])
        assert "rt.reduce(env, 'stock'" in spec.source
        assert spec.aggregates == [MEAN]
        assert spec.referenced == ["stock"]
        assert "def _tilt_kernel" in spec.describe()

    def test_element_map_source_generated(self):
        b = IRBuilder()
        stock = b.stream("stock")
        b.define(
            "sumsq",
            stock.window(-10, 0).reduce(SUM, element=Var(ELEM_VAR) * Var(ELEM_VAR)),
            precision=1,
        )
        spec = generate_kernel_spec(b.build().exprs[0])
        assert len(spec.element_sources) == 1
        assert "_tilt_element" in spec.element_sources[0]

    def test_compiled_query_properties(self):
        program = _trend_program()
        compiled = compile_program(program)
        assert isinstance(compiled, CompiledQuery)
        assert compiled.fused
        assert compiled.boundary.lookback("stock") == 20.0
        assert "reduce" in compiled.sources()
        assert compiled.kernel_named(compiled.output).name == compiled.output
        with pytest.raises(KeyError):
            compiled.kernel_named("nope")

    def test_unoptimized_compilation(self):
        program = _trend_program()
        compiled = compile_program(program, optimize=False)
        assert len(compiled.kernels) == 4
        assert not compiled.fused

    def test_missing_input_raises(self):
        compiled = compile_program(_trend_program())
        with pytest.raises(ExecutionError):
            compiled.run({}, 0.0, 10.0)


# ---------------------------------------------------------------------- #
# compiled == interpreted
# ---------------------------------------------------------------------- #
def _trend_program():
    stock = source("stock")
    avg10 = stock.window(10, 1).aggregate(MEAN).named("avg10")
    avg20 = stock.window(20, 1).aggregate(MEAN).named("avg20")
    return avg10.join(avg20, LEFT - RIGHT).where(E > 0).named("trend").to_program()


QUERY_FACTORIES = {
    "select": lambda: source("stock").select(E * 2.0 + 1.0),
    "where": lambda: source("stock").where((E % 2.0).eq(0.0)),
    "window_sum": lambda: source("stock").sum(10, 5),
    "window_std": lambda: source("stock").stddev(8, 2),
    "window_max": lambda: source("stock").max(16, 4),
    "shift_join": lambda: source("stock").join(source("stock").shift(3.0), LEFT - RIGHT),
    "trend": lambda: (
        source("stock").window(10, 1).aggregate(MEAN)
        .join(source("stock").window(20, 1).aggregate(MEAN), LEFT - RIGHT)
        .where(E > 0)
    ),
    "element_map": lambda: source("stock").window(12, 3).aggregate(SUM, element=E * E),
}


@pytest.mark.parametrize("name", sorted(QUERY_FACTORIES))
def test_compiled_matches_interpreted(name, random_walk_stream):
    program = QUERY_FACTORIES[name]().to_program()
    buf = ssbuf_from_stream(random_walk_stream)
    boundary = resolve_boundaries(program)
    interpreted = Interpreter(program, boundary=boundary).run({"stock": buf}, 0.0, 300.0)
    compiled = compile_program(program).run({"stock": buf}, 0.0, 300.0)
    grid = np.linspace(1.0, 300.0, 600)
    iv, ik = interpreted.values_at(grid)
    cv, ck = compiled.values_at(grid)
    assert np.array_equal(ik, ck)
    assert np.allclose(iv[ik], cv[ck], rtol=1e-9, atol=1e-9)


def test_masked_lanes_emit_no_runtime_warnings():
    """Both branches of a conditional (and guarded operands) are evaluated
    eagerly and discarded via the validity mask; the kernel body runs under
    ``errstate`` so those masked-out lanes must not leak NumPy
    ``RuntimeWarning``s (invalid power, divide, overflow, ...)."""
    import warnings

    # domain-hostile query: fractional power of negative values (guarded by
    # the conditional), division whose masked branch divides by zero, and a
    # guarded sqrt/log pair
    x = source("stock")
    query = when(
        E >= 0.0,
        (E ** 0.5) + (1.0 / E),
        (abs(E) ** 0.5) - ((0.0 - E) ** 1.5),
    )
    program = x.select(query).to_program()
    values = [4.0, -9.0, 0.0, 16.0, -2.0, 25.0]
    stream = EventStream.from_samples(values, period=1.0, name="stock")
    buf = ssbuf_from_stream(stream)
    compiled = compile_program(program)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        out = compiled.run({"stock": buf}, 0.0, float(len(values)))
    # the semantics are unchanged: valid lanes still compute their branch
    assert out.value_at(4.0) == (pytest.approx(4.0 + 1.0 / 16.0), True)
    v, ok = out.value_at(2.0)  # -9.0: else-branch, 3 - 27
    assert ok and v == pytest.approx(3.0 - 27.0)


def test_compiled_output_on_gappy_stream():
    events = [Event(0.0, 1.0, 5.0), Event(4.0, 6.0, 7.0), Event(9.0, 9.5, -2.0)]
    stream = EventStream(events, name="stock")
    program = source("stock").sum(3, 1).to_program()
    buf = ssbuf_from_stream(stream)
    out = compile_program(program).run({"stock": buf}, 0.0, 10.0)
    assert out.value_at(1.0) == (5.0, True)
    value, ok = out.value_at(3.0)
    assert ok and value == 5.0          # event still inside (0, 3]
    assert out.value_at(8.0) == (7.0, True)
    assert out.value_at(5.0)[1]


@given(
    st.lists(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=5, max_size=60),
    st.sampled_from(["select", "where", "window_sum", "window_std", "trend", "element_map"]),
)
@settings(max_examples=25, deadline=None)
def test_property_compiled_equals_interpreted(values, query_name):
    """For random regular streams and a family of queries, both backends agree."""
    stream = EventStream.from_samples(values, period=1.0, name="stock")
    buf = ssbuf_from_stream(stream)
    program = QUERY_FACTORIES[query_name]().to_program()
    boundary = resolve_boundaries(program)
    t_end = float(len(values))
    interpreted = Interpreter(program, boundary=boundary).run({"stock": buf}, 0.0, t_end)
    compiled = compile_program(program).run({"stock": buf}, 0.0, t_end)
    grid = np.linspace(0.5, t_end, 77)
    iv, ik = interpreted.values_at(grid)
    cv, ck = compiled.values_at(grid)
    assert np.array_equal(ik, ck)
    assert np.allclose(iv[ik], cv[ck], rtol=1e-7, atol=1e-7)
