"""Concurrency tests: many threads sharing one engine.

The multi-tenant service opens, advances and closes sessions from multiple
threads against a single :class:`TiltEngine`, so the engine's shared state
— the compile cache, the lazily created worker pool, and the open-session
registry — must be race-free, and a full ingest queue must never deadlock
its producer.
"""

import threading

import pytest

from repro.apps import get_application
from repro.core.runtime.engine import TiltEngine
from repro.datagen.sources import sources_for_streams
from repro.errors import ExecutionError

N_THREADS = 6


class TestConcurrentSessions:
    def test_threaded_session_lifecycles_match_batch(self):
        """N threads each open/ingest/advance/close a session on one engine;
        every thread's output must equal the batch run over its dataset."""
        app = get_application("trading")
        program = app.program()
        engine = TiltEngine(workers=2)
        datasets = [app.streams(400, seed=i) for i in range(N_THREADS)]
        outputs = [None] * N_THREADS
        errors = []
        barrier = threading.Barrier(N_THREADS)

        def worker(i):
            try:
                barrier.wait()  # maximize open_session contention
                sources = sources_for_streams(datasets[i], events_per_poll=97)
                session = engine.open_session(program, sources)
                while not session.exhausted:
                    session.tick()
                session.close()
                outputs[i] = session.result().output
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((i, exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors, errors
        engine.close()
        reference = TiltEngine(workers=1)
        for i in range(N_THREADS):
            assert outputs[i] == reference.run(program, datasets[i]).output
        reference.close()

    def test_compile_cached_races_to_one_compilation(self):
        """Concurrent compile_cached calls over the same program must all
        return the identical CompiledQuery object."""
        engine = TiltEngine(workers=1)
        program = get_application("trading").program()
        results = [None] * N_THREADS
        barrier = threading.Barrier(N_THREADS)

        def worker(i):
            barrier.wait()
            results[i] = engine.compile_cached(program)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert all(r is results[0] for r in results)
        assert results[0] is not None

    def test_shared_executor_races_to_one_pool(self):
        engine = TiltEngine(workers=3)
        results = [None] * N_THREADS
        barrier = threading.Barrier(N_THREADS)

        def worker(i):
            barrier.wait()
            results[i] = engine.shared_executor()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert all(r is results[0] for r in results)
        engine.close()


class TestEngineCloseWithOpenSessions:
    def test_close_aborts_open_sessions(self):
        """Engine teardown must not leave sessions dangling on a shut-down
        pool: still-open sessions are aborted (closed, no flush)."""
        app = get_application("trading")
        engine = TiltEngine(workers=2)
        streams = app.streams(500, seed=3)
        s1 = engine.open_session(
            app.program(), sources_for_streams(streams, events_per_poll=100)
        )
        s2 = engine.open_session(
            app.program(), sources_for_streams(streams, events_per_poll=200)
        )
        s1.tick()
        assert set(engine.open_sessions()) == {s1, s2}
        engine.close()
        assert s1.closed and s2.closed
        assert engine.open_sessions() == []
        with pytest.raises(ExecutionError):
            s1.tick()
        with pytest.raises(ExecutionError):
            s2.close()

    def test_closed_sessions_drop_out_of_registry(self):
        app = get_application("trading")
        engine = TiltEngine(workers=1)
        streams = app.streams(300, seed=4)
        session = engine.open_session(
            app.program(), sources_for_streams(streams, events_per_poll=100)
        )
        session.run_to_exhaustion()
        assert engine.open_sessions() == []
        engine.close()

    def test_abort_is_idempotent_and_quiet(self):
        app = get_application("trading")
        engine = TiltEngine(workers=1)
        streams = app.streams(300, seed=5)
        session = engine.open_session(
            app.program(), sources_for_streams(streams, events_per_poll=100)
        )
        session.abort()
        session.abort()
        assert session.closed
        engine.close()
