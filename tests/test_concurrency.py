"""Concurrency tests: many threads sharing one engine.

The multi-tenant service opens, advances and closes sessions from multiple
threads against a single :class:`TiltEngine`, so the engine's shared state
— the compile cache, the lazily created worker pool, and the open-session
registry — must be race-free, and a full ingest queue must never deadlock
its producer.
"""

import threading

import pytest

from repro.apps import get_application
from repro.core.codegen.compiled import compile_program
from repro.core.frontend.query import PAYLOAD, source
from repro.core.runtime.engine import TiltEngine
from repro.core.runtime.ssbuf import ssbuf_from_stream
from repro.core.runtime.stream import EventStream
from repro.datagen.sources import sources_for_streams
from repro.errors import ExecutionError
from repro.windowing import MEAN, SUM

N_THREADS = 6

E = PAYLOAD


class TestConcurrentSessions:
    def test_threaded_session_lifecycles_match_batch(self):
        """N threads each open/ingest/advance/close a session on one engine;
        every thread's output must equal the batch run over its dataset."""
        app = get_application("trading")
        program = app.program()
        engine = TiltEngine(workers=2)
        datasets = [app.streams(400, seed=i) for i in range(N_THREADS)]
        outputs = [None] * N_THREADS
        errors = []
        barrier = threading.Barrier(N_THREADS)

        def worker(i):
            try:
                barrier.wait()  # maximize open_session contention
                sources = sources_for_streams(datasets[i], events_per_poll=97)
                session = engine.open_session(program, sources)
                while not session.exhausted:
                    session.tick()
                session.close()
                outputs[i] = session.result().output
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((i, exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors, errors
        engine.close()
        reference = TiltEngine(workers=1)
        for i in range(N_THREADS):
            assert outputs[i] == reference.run(program, datasets[i]).output
        reference.close()

    def test_compile_cached_races_to_one_compilation(self):
        """Concurrent compile_cached calls over the same program must all
        return the identical CompiledQuery object."""
        engine = TiltEngine(workers=1)
        program = get_application("trading").program()
        results = [None] * N_THREADS
        barrier = threading.Barrier(N_THREADS)

        def worker(i):
            barrier.wait()
            results[i] = engine.compile_cached(program)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert all(r is results[0] for r in results)
        assert results[0] is not None

    def test_shared_executor_races_to_one_pool(self):
        engine = TiltEngine(workers=3)
        results = [None] * N_THREADS
        barrier = threading.Barrier(N_THREADS)

        def worker(i):
            barrier.wait()
            results[i] = engine.shared_executor()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert all(r is results[0] for r in results)
        engine.close()


class TestKernelRuntimeIsolation:
    """Regression tests for the shared-KernelRuntime races.

    The old runtime kept a ``_range_cache`` on the shared per-kernel
    ``KernelRuntime``, keyed by ``id(buf)`` and wiped by every
    ``eval_times`` call — a cross-thread stomp (one partition clearing
    another's cache mid-run) and an ``id``-reuse staleness hazard (a freed
    buffer's id recycled onto different data, resurrecting an aggregator
    built over the wrong partition).  Execution state is now per-invocation:
    the generated kernel allocates a fresh cache dict per run and threads it
    through ``rt.reduce``.
    """

    @staticmethod
    def _elem_mapped_program():
        # elem-mapped reduce: the hazard path builds (and used to cache, on
        # the shared runtime) a derived mapped buffer per (input, aggregate)
        return source("stock").window(12, 1).aggregate(SUM, element=E * E).to_program()

    def test_kernel_runtime_carries_no_execution_state(self):
        """The shared runtime object must be stateless across invocations —
        this is the contract the concurrency fix introduced (the old
        runtime fails here by carrying ``_range_cache``)."""
        compiled = compile_program(self._elem_mapped_program())
        for kernel in compiled.kernels:
            assert not hasattr(kernel.runtime, "_range_cache")

    def test_concurrent_eval_times_cannot_stomp_a_running_invocation(self, monkeypatch):
        """Simulates the hostile interleave: partition B calls
        ``eval_times`` while partition A is mid-run.  A's aggregator cache
        must survive — the same (input, aggregate) key is reused, not
        rebuilt (the old runtime cleared it and rebuilt)."""
        import repro.core.codegen.runtime_support as rs
        from repro.windowing.sliding import RangeAggregator

        builds = []

        class CountingAggregator(RangeAggregator):
            def __init__(self, buf, agg):
                builds.append(agg.name)
                super().__init__(buf, agg)

        monkeypatch.setattr(rs, "RangeAggregator", CountingAggregator)
        program = source("stock").window(10, 1).aggregate(MEAN).to_program()
        compiled = compile_program(program)
        rt = compiled.kernels[0].runtime
        stream = EventStream.from_samples([float(i) for i in range(60)], period=1.0)
        env_a = {"stock": ssbuf_from_stream(stream)}
        env_b = {"stock": ssbuf_from_stream(stream).slice(10.0, 50.0)}

        ts = rt.eval_times(env_a, 0.0, 50.0)          # partition A starts
        run_cache = {}
        rt.reduce(env_a, "stock", -10.0, 0.0, 0, -1, ts, run_cache)
        assert len(builds) == 1
        rt.eval_times(env_b, 10.0, 50.0)              # partition B starts mid-run
        rt.reduce(env_a, "stock", -5.0, 0.0, 0, -1, ts, run_cache)
        assert len(builds) == 1, "concurrent eval_times invalidated a live run cache"

    def test_concurrent_elem_mapped_runs_byte_identical_to_serial(self):
        """Many threads hammer one compiled elem-mapped reduce query over
        multi-partition runs with distinct data; every output must be
        byte-identical to the serial run over the same data."""
        program = self._elem_mapped_program()
        datasets = []
        for i in range(N_THREADS):
            stream = EventStream.from_samples(
                [float(((i + 1) * 37 + j * 7) % 101) for j in range(300)],
                period=1.0,
                name="stock",
            )
            datasets.append({"stock": stream})
        with TiltEngine(workers=1) as serial:
            references = [serial.run(program, d).output for d in datasets]

        engine = TiltEngine(workers=2, partitions_per_worker=4)
        compiled = engine.compile(program)
        rounds = 5
        failures = []
        errors = []
        barrier = threading.Barrier(N_THREADS)

        def worker(i):
            try:
                barrier.wait()
                for _ in range(rounds):
                    out = engine.run(compiled, datasets[i]).output
                    if out != references[i]:
                        failures.append(i)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((i, exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        engine.close()
        assert not errors, errors
        assert not failures, f"threads {failures} produced non-serial output"


class TestEngineCloseWithOpenSessions:
    def test_close_aborts_open_sessions(self):
        """Engine teardown must not leave sessions dangling on a shut-down
        pool: still-open sessions are aborted (closed, no flush)."""
        app = get_application("trading")
        engine = TiltEngine(workers=2)
        streams = app.streams(500, seed=3)
        s1 = engine.open_session(
            app.program(), sources_for_streams(streams, events_per_poll=100)
        )
        s2 = engine.open_session(
            app.program(), sources_for_streams(streams, events_per_poll=200)
        )
        s1.tick()
        assert set(engine.open_sessions()) == {s1, s2}
        engine.close()
        assert s1.closed and s2.closed
        assert engine.open_sessions() == []
        with pytest.raises(ExecutionError):
            s1.tick()
        with pytest.raises(ExecutionError):
            s2.close()

    def test_closed_sessions_drop_out_of_registry(self):
        app = get_application("trading")
        engine = TiltEngine(workers=1)
        streams = app.streams(300, seed=4)
        session = engine.open_session(
            app.program(), sources_for_streams(streams, events_per_poll=100)
        )
        session.run_to_exhaustion()
        assert engine.open_sessions() == []
        engine.close()

    def test_abort_is_idempotent_and_quiet(self):
        app = get_application("trading")
        engine = TiltEngine(workers=1)
        streams = app.streams(300, seed=5)
        session = engine.open_session(
            app.program(), sources_for_streams(streams, events_per_poll=100)
        )
        session.abort()
        session.abort()
        assert session.closed
        engine.close()
