"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.datagen import (
    credit_card_stream,
    ecg_stream,
    random_signal_stream,
    stock_price_stream,
    uniform_value_stream,
    vibration_stream,
    ysb_stream,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            stock_price_stream,
            random_signal_stream,
            ecg_stream,
            vibration_stream,
            credit_card_stream,
            ysb_stream,
            uniform_value_stream,
        ],
    )
    def test_same_seed_same_stream(self, factory):
        a = factory(500, seed=5)
        b = factory(500, seed=5)
        assert len(a) == len(b) == 500
        assert a[0].payload == b[0].payload
        assert a[-1].payload == b[-1].payload

    def test_different_seeds_differ(self):
        a = stock_price_stream(100, seed=1)
        b = stock_price_stream(100, seed=2)
        assert a.values().tolist() != b.values().tolist()


class TestStockPrices:
    def test_positive_prices_and_rate(self):
        s = stock_price_stream(1000, seed=3, tick_period=1.0)
        assert np.all(s.values() > 0)
        assert s.time_range() == (0.0, 1000.0)


class TestSignal:
    def test_frequency(self):
        s = random_signal_stream(2000, frequency_hz=1000.0)
        assert s.time_range()[1] == pytest.approx(2.0)

    def test_missing_fraction_creates_gaps(self):
        full = random_signal_stream(2000, seed=1, missing_fraction=0.0)
        gappy = random_signal_stream(2000, seed=1, missing_fraction=0.2)
        assert len(gappy) < len(full)
        assert len(gappy) > 1000


class TestEcg:
    def test_qrs_spikes_present(self):
        s = ecg_stream(128 * 20, seed=2, frequency_hz=128.0, heart_rate_bpm=60.0)
        values = s.values()
        # roughly one dominant R peak per second: the max is much larger than the median
        assert values.max() > 0.7
        assert np.median(np.abs(values)) < 0.3


class TestVibration:
    def test_impulses_increase_kurtosis(self):
        s = vibration_stream(8192, seed=4, frequency_hz=8192.0)
        values = s.values()
        kurt = np.mean((values - values.mean()) ** 4) / np.var(values) ** 2
        assert kurt > 3.5  # impulsive signal is super-Gaussian


class TestCreditCard:
    def test_schema_and_non_overlap(self):
        s = credit_card_stream(500, seed=6)
        assert s.is_structured
        assert set(s.fields()) == {"user", "amount", "is_fraud"}
        ends = s.ends()
        starts = s.starts()
        assert np.all(starts[1:] >= ends[:-1] - 1e-12)

    def test_fraud_events_have_large_amounts(self):
        s = credit_card_stream(5000, seed=7, fraud_fraction=0.01)
        amounts = s.values("amount")
        fraud = s.values("is_fraud") > 0
        assert fraud.sum() > 0
        assert amounts[fraud].mean() > 3 * amounts[~fraud].mean()


class TestYsb:
    def test_schema_and_event_type_distribution(self):
        s = ysb_stream(3000, seed=8, view_fraction=0.4)
        assert set(s.fields()) == {"campaign", "ad", "event_type"}
        types = s.values("event_type")
        view_share = float(np.mean(types == 0.0))
        assert 0.3 < view_share < 0.5

    def test_rate(self):
        s = ysb_stream(1000, events_per_second=10_000.0)
        assert s.time_range()[1] == pytest.approx(0.1)


class TestUniform:
    def test_bounds(self):
        s = uniform_value_stream(1000, low=5.0, high=6.0)
        values = s.values()
        assert values.min() >= 5.0 and values.max() <= 6.0
