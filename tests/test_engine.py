"""Tests for the parallel runtime: partitioning, executors and the engine."""

import numpy as np
import pytest

from repro.core.frontend.query import LEFT, PAYLOAD, RIGHT, source
from repro.core.lineage import BoundarySpec
from repro.core.runtime.engine import QueryResult, TiltEngine
from repro.core.runtime.executor import SerialExecutor, ThreadPoolExecutor, make_executor
from repro.core.runtime.partition import partition_inputs, plan_partitions
from repro.core.runtime.ssbuf import SSBuf, ssbuf_from_stream
from repro.core.runtime.stream import EventStream
from repro.errors import ExecutionError, QueryBuildError
from repro.windowing import MEAN

E = PAYLOAD


def trend_query():
    stock = source("stock")
    return (
        stock.window(10, 1).aggregate(MEAN)
        .join(stock.window(20, 1).aggregate(MEAN), LEFT - RIGHT)
        .where(E > 0)
    )


class TestPlanPartitions:
    def test_equal_partitions(self):
        bounds = plan_partitions(0.0, 100.0, num_partitions=4)
        assert bounds == [(0.0, 25.0), (25.0, 50.0), (50.0, 75.0), (75.0, 100.0)]

    def test_interval_partitions(self):
        bounds = plan_partitions(0.0, 95.0, interval=30.0)
        assert bounds[-1][1] == 95.0
        assert len(bounds) == 4

    def test_alignment_snaps_interior_edges(self):
        bounds = plan_partitions(0.0, 100.0, num_partitions=3, align=10.0)
        for lo, hi in bounds[:-1]:
            assert hi % 10.0 == 0.0
        assert bounds[-1][1] == 100.0

    def test_alignment_never_snaps_below_range_start(self):
        """Regression: with partitions narrower than the alignment grid and
        an off-grid t_start, interior edges must clamp to t_start instead of
        flooring below it (which produced a partition starting before — and
        overlapping — the requested output range)."""
        bounds = plan_partitions(12.7, 3900.0, num_partitions=16, align=300.0)
        assert bounds[0][0] == 12.7
        for lo, hi in bounds:
            assert 12.7 <= lo < hi <= 3900.0
        # consecutive and covering
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        assert bounds[-1][1] == 3900.0

    def test_empty_and_invalid(self):
        assert plan_partitions(5.0, 5.0, num_partitions=3) == []
        with pytest.raises(QueryBuildError):
            plan_partitions(0.0, 10.0)
        with pytest.raises(QueryBuildError):
            plan_partitions(0.0, 10.0, num_partitions=2, interval=5.0)
        with pytest.raises(QueryBuildError):
            plan_partitions(0.0, 10.0, num_partitions=0)
        with pytest.raises(QueryBuildError):
            plan_partitions(0.0, 10.0, interval=-1.0)


class TestPartitionInputs:
    def test_lookback_margin_included(self, regular_buf):
        boundary = BoundarySpec({"regular": (20.0, 0.0)})
        partitions = partition_inputs(
            {"regular": regular_buf}, boundary, 0.0, 100.0, num_partitions=4
        )
        assert len(partitions) == 4
        second = partitions[1]
        assert second.t_start == 25.0
        # its input slice must reach back 20 seconds before the partition start
        assert second.inputs["regular"].value_at(6.0)[1]
        assert second.span == 25.0
        assert second.input_snapshot_count() > 0


class TestExecutors:
    def test_serial(self):
        assert SerialExecutor().map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_thread_pool_preserves_order(self):
        with ThreadPoolExecutor(4) as pool:
            assert pool.map(lambda x: x * x, list(range(20))) == [x * x for x in range(20)]

    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(3)
        assert isinstance(pool, ThreadPoolExecutor)
        pool.shutdown()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadPoolExecutor(0)


class TestTiltEngine:
    def test_run_returns_query_result(self, random_walk_stream):
        engine = TiltEngine(workers=1)
        result = engine.run(trend_query().to_program(), {"stock": random_walk_stream})
        assert isinstance(result, QueryResult)
        assert result.input_events == len(random_walk_stream)
        assert result.num_partitions == 1
        assert result.throughput > 0
        assert result.output.num_valid() > 0
        stream = result.to_stream()
        assert len(stream) > 0

    def test_parallel_equals_serial(self, random_walk_stream):
        program = trend_query().to_program()
        serial = TiltEngine(workers=1).run(program, {"stock": random_walk_stream})
        parallel = TiltEngine(workers=4).run(program, {"stock": random_walk_stream})
        assert parallel.num_partitions > 1
        grid = np.linspace(1.0, 300.0, 500)
        sv, sk = serial.output.values_at(grid)
        pv, pk = parallel.output.values_at(grid)
        assert np.array_equal(sk, pk)
        assert np.allclose(sv[sk], pv[pk])

    def test_interpreted_mode_equals_compiled(self, random_walk_stream):
        program = trend_query().to_program()
        compiled = TiltEngine(workers=1, mode="compiled").run(program, {"stock": random_walk_stream})
        interpreted = TiltEngine(workers=1, mode="interpreted").run(
            program, {"stock": random_walk_stream}
        )
        grid = np.linspace(1.0, 300.0, 300)
        cv, ck = compiled.output.values_at(grid)
        iv, ik = interpreted.output.values_at(grid)
        assert np.array_equal(ck, ik)
        assert np.allclose(cv[ck], iv[ik])

    def test_partition_interval(self, random_walk_stream):
        engine = TiltEngine(workers=2, partition_interval=30.0)
        result = engine.run(trend_query().to_program(), {"stock": random_walk_stream})
        assert result.num_partitions == 10

    def test_accepts_precompiled_query(self, random_walk_stream):
        engine = TiltEngine(workers=2)
        compiled = engine.compile(trend_query().to_program())
        result = engine.run(compiled, {"stock": random_walk_stream})
        assert result.output.num_valid() > 0

    def test_accepts_ssbuf_inputs(self, random_walk_stream):
        buf = ssbuf_from_stream(random_walk_stream)
        result = TiltEngine().run(trend_query().to_program(), {"stock": buf})
        assert result.output.num_valid() > 0

    def test_structured_stream_expansion(self):
        stream = EventStream.from_arrays(
            [0, 1, 2],
            [1, 2, 3],
            [{"amount": 10.0}, {"amount": 20.0}, {"amount": 30.0}],
            name="txn",
        )
        query = source("txn", field="amount").select(E * 2.0)
        result = TiltEngine().run(query.to_program(), {"txn": stream})
        assert result.output.value_at(1.5) == (40.0, True)

    def test_missing_input_raises(self, random_walk_stream):
        with pytest.raises(ExecutionError):
            TiltEngine().run(trend_query().to_program(), {"wrong_name": random_walk_stream})

    def test_invalid_configuration(self):
        with pytest.raises(QueryBuildError):
            TiltEngine(mode="jit")
        with pytest.raises(QueryBuildError):
            TiltEngine(workers=0)
        with pytest.raises(QueryBuildError):
            TiltEngine().run("not a program", {})
        with pytest.raises(QueryBuildError):
            TiltEngine(compile_cache_size=0)

    def test_empty_stream(self):
        empty = EventStream([], name="stock")
        result = TiltEngine().run(trend_query().to_program(), {"stock": empty})
        assert result.output.num_valid() == 0

    def test_explicit_time_range(self, random_walk_stream):
        program = trend_query().to_program()
        result = TiltEngine().run(program, {"stock": random_walk_stream}, t_start=50.0, t_end=100.0)
        assert result.output.num_valid() <= 51
        assert result.output.end_time <= 100.0


class TestCompileCacheLRU:
    """The per-engine compile cache is bounded: a long-lived engine that
    compiles many distinct programs must not retain them all forever."""

    def test_hit_semantics_preserved(self):
        engine = TiltEngine(compile_cache_size=4)
        program = trend_query().to_program()
        first = engine.compile_cached(program)
        assert engine.compile_cached(program) is first
        engine.close()

    def test_eviction_releases_programs(self):
        import gc
        import weakref

        engine = TiltEngine(compile_cache_size=2)
        programs = [trend_query().to_program() for _ in range(3)]
        refs = [weakref.ref(p) for p in programs]
        compiled_first = engine.compile_cached(programs[0])
        for p in programs[1:]:
            engine.compile_cached(p)
        # the first (least recently used) program was evicted; dropping our
        # reference must actually free it
        del programs[0], compiled_first
        gc.collect()
        assert refs[0]() is None, "evicted program still strongly referenced"
        assert refs[1]() is not None and refs[2]() is not None
        engine.close()

    def test_recently_used_entry_survives_eviction(self):
        engine = TiltEngine(compile_cache_size=2)
        a = trend_query().to_program()
        b = trend_query().to_program()
        c = trend_query().to_program()
        compiled_a = engine.compile_cached(a)
        engine.compile_cached(b)
        assert engine.compile_cached(a) is compiled_a  # refresh a (evicts b next)
        engine.compile_cached(c)
        assert engine.compile_cached(a) is compiled_a  # still cached
        engine.close()
