"""Tests for the event-centric frontend and its translation to TiLT IR."""

import pytest

from repro.core.frontend import LEFT, PAYLOAD, RIGHT, custom_aggregate, source
from repro.core.frontend.query import (
    Chop,
    CoalesceJoin,
    Join,
    Select,
    Shift,
    StreamSource,
    Where,
    WindowAggregate,
    WindowSpec,
)
from repro.core.ir import Coalesce, IfThenElse, Reduce, TIndex, format_program
from repro.errors import QueryBuildError
from repro.windowing import COUNT, MAX, MEAN, MIN, STDDEV, SUM, VARIANCE

E = PAYLOAD


class TestDagConstruction:
    def test_source(self):
        node = source("stock")
        assert isinstance(node, StreamSource)
        assert node.describe() == "Source(stock)"
        assert source("txn", field="amount").describe() == "Source(txn.amount)"

    def test_chaining_and_operator_chain(self):
        q = source("s").select(E + 1).where(E > 0).shift(2.0).chop(1.0)
        chain = q.operator_chain()
        assert chain == ["Source(s)", "Select", "Where", "Shift(2)", "Chop(1)"]

    def test_window_spec_shortcuts(self):
        spec = source("s").window(10, 5)
        assert isinstance(spec, WindowSpec)
        for maker, agg in [
            (spec.sum, SUM), (spec.count, COUNT), (spec.mean, MEAN),
            (spec.stddev, STDDEV), (spec.variance, VARIANCE), (spec.max, MAX), (spec.min, MIN),
        ]:
            node = maker()
            assert isinstance(node, WindowAggregate)
            assert node.agg is agg
            assert node.size == 10 and node.stride == 5

    def test_window_defaults_to_tumbling(self):
        node = source("s").sum(10)
        assert node.size == node.stride == 10

    def test_node_level_shortcuts(self):
        s = source("s")
        assert s.mean(5).agg is MEAN
        assert s.count(5).agg is COUNT
        assert s.max(5).agg is MAX
        assert s.min(5).agg is MIN
        assert s.stddev(5).agg is STDDEV

    def test_invalid_parameters(self):
        with pytest.raises(QueryBuildError):
            source("s").window(0, 1)
        with pytest.raises(QueryBuildError):
            source("s").window(10, -1)
        with pytest.raises(QueryBuildError):
            source("s").shift(-1.0)
        with pytest.raises(QueryBuildError):
            source("s").chop(0.0)

    def test_join_and_coalesce_nodes(self):
        a, b = source("a"), source("b")
        assert isinstance(a.join(b, LEFT + RIGHT), Join)
        assert isinstance(a.coalesce(b), CoalesceJoin)


class TestTranslation:
    def test_trend_translation_structure(self):
        stock = source("stock")
        avg10 = stock.window(10, 1).aggregate(MEAN).named("avg10")
        avg20 = stock.window(20, 1).aggregate(MEAN).named("avg20")
        trend = avg10.join(avg20, LEFT - RIGHT).where(E > 0).named("trend")
        program = trend.to_program()
        assert program.inputs == ("stock",)
        assert program.defined_names()[-1] == "trend"
        assert program.output == "trend"
        assert len(program.exprs) == 4
        avg10_expr = program.expr_named("avg10")
        assert isinstance(avg10_expr.expr, Reduce)
        assert avg10_expr.tdom.precision == 1.0
        text = format_program(program)
        assert "reduce(mean, ~stock[t-10 : t])" in text

    def test_shared_subquery_translated_once(self):
        stock = source("stock")
        avg = stock.window(10, 1).aggregate(MEAN).named("avg")
        # avg is referenced by two different consumers
        query = avg.select(E * 2).join(avg.select(E * 3), LEFT + RIGHT)
        program = query.to_program()
        assert program.defined_names().count("avg") == 1

    def test_select_substitutes_payload(self):
        program = source("s").select(E * 2.0).to_program()
        expr = program.output_expr.expr
        # the payload placeholder is replaced by a point access to the input
        assert TIndex("s", 0.0) in (getattr(expr, "lhs", None), getattr(expr, "rhs", None))

    def test_where_produces_conditional(self):
        program = source("s").where(E > 5).to_program()
        assert isinstance(program.output_expr.expr, IfThenElse)

    def test_shift_produces_negative_offset(self):
        program = source("s").shift(4.0).to_program()
        assert program.output_expr.expr == TIndex("s", -4.0)

    def test_chop_sets_precision(self):
        program = source("s").chop(0.5).to_program()
        assert program.output_expr.tdom.precision == 0.5

    def test_window_element_map(self):
        program = source("s").window(10, 5).aggregate(SUM, element=E * E).to_program()
        reduce_node = program.output_expr.expr
        assert isinstance(reduce_node, Reduce)
        assert reduce_node.element is not None

    def test_coalesce_translation(self):
        program = source("a").coalesce(source("b")).to_program()
        assert isinstance(program.output_expr.expr, Coalesce)
        assert set(program.inputs) == {"a", "b"}

    def test_output_renaming(self):
        program = source("s").select(E + 1).to_program(output_name="final")
        assert program.output == "final"

    def test_custom_aggregate_in_window(self):
        rng = custom_aggregate(
            "spread",
            init=lambda: (float("inf"), float("-inf")),
            acc=lambda s, v: (min(s[0], v), max(s[1], v)),
            result=lambda s: s[1] - s[0],
        )
        program = source("s").window(5, 5).aggregate(rng).to_program()
        assert program.output_expr.expr.agg.name == "spread"
