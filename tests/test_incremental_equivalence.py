"""Differential equivalence harness for incremental tick execution.

Incremental sessions (persistent per-kernel window state,
:mod:`repro.core.codegen.incremental`) must be *byte-identical* — same
timestamps, validity mask and start time, values equal to within
floating-point reassociation (``SSBuf.__eq__``) — to both

* the full-recompute session path over the same tick schedule, and
* one one-shot ``TiltEngine.run`` over the complete input,

across applications, aggregates, window parameters, ragged tick schedules
(empty ticks, watermark stalls) and executor backends.  The full-recompute
path is the reference implementation the incremental engine is diffed
against; the batch run is the ground truth both descend from.

Also covers the carry-over pruning interaction: checkpoint pins and
incremental ingest horizons must hold input alive past the naive
``w - max_lookback`` rule (a regression test demonstrates the naive prune
corrupting a rewind-replay).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_application
from repro.core.ir import IRBuilder
from repro.core.runtime.engine import TiltEngine
from repro.core.runtime.session import StreamingSession
from repro.core.runtime.stream import EventStream
from repro.datagen.sources import QueuedSource, sources_for_streams
from repro.errors import ExecutionError
from repro.windowing import MAX, MEAN, SUM
from repro.windowing.functions import builtin_aggregates, custom_aggregate

N_EVENTS = 2_500

#: same application matrix as the core streaming-equivalence suite: scalar
#: (trading, normalize) and structured (ysb, frauddet) inputs
EQUIVALENCE_APPS = ["ysb", "frauddet", "normalize", "trading"]


def run_session(engine, program, streams, tick_events, **kwargs):
    sources = sources_for_streams(streams, events_per_poll=tick_events)
    session = engine.open_session(program, sources, **kwargs)
    session.run_to_exhaustion()
    return session


def lookback_program(agg, lookback=13.0, precision=1.0):
    b = IRBuilder()
    x = b.stream("x")
    b.define("out", x.window(-lookback, 0.0).reduce(agg), precision=precision)
    return b.build(output="out")


def uniform_stream(n, seed, period=0.5, low=0.5, high=2.0):
    rng = np.random.default_rng(seed)
    return EventStream.from_samples(rng.uniform(low, high, n), period=period, name="x")


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("app_name", EQUIVALENCE_APPS)
    def test_incremental_matches_full_and_batch(self, app_name):
        app = get_application(app_name)
        streams = app.streams(N_EVENTS, seed=21)
        engine = TiltEngine(workers=1)
        batch = engine.run(app.program(), streams)
        for tick_events in (171, 1024):
            inc = run_session(engine, app.program(), streams, tick_events, incremental=True)
            full = run_session(engine, app.program(), streams, tick_events, incremental=False)
            assert inc.incremental and not full.incremental
            assert inc.result().output == batch.output
            assert full.result().output == batch.output
            assert inc.result().output == full.result().output
        engine.close()

    @pytest.mark.parametrize("executor_kind", ["serial", "thread", "process"])
    def test_executor_matrix(self, executor_kind):
        """The engine's worker-pool backend must not perturb incremental
        output: incremental ticks run in-process, batch/full paths use the
        pool, and all three remain byte-identical."""
        app = get_application("trading")
        streams = app.streams(1_500, seed=22)
        engine = TiltEngine(workers=2, executor_kind=executor_kind)
        try:
            batch = engine.run(app.program(), streams)
            inc = run_session(engine, app.program(), streams, 137, incremental=True)
            full = run_session(engine, app.program(), streams, 137, incremental=False)
            assert inc.result().output == batch.output
            assert full.result().output == batch.output
        finally:
            engine.close()

    @pytest.mark.parametrize(
        "agg", list(builtin_aggregates().values()), ids=lambda a: a.name
    )
    def test_every_builtin_aggregate(self, agg):
        """Each built-in exercises its own incremental strategy (prefix
        index, subtract-on-evict, two-stacks, refold)."""
        program = lookback_program(agg)
        stream = uniform_stream(800, seed=23)
        engine = TiltEngine(workers=1)
        batch = engine.run(program, {"x": stream})
        inc = run_session(engine, program, {"x": stream}, 97, incremental=True)
        assert inc.result().output == batch.output

    def test_custom_invertible_aggregate(self):
        """A user-defined aggregate with a deacc runs Subtract-on-Evict; its
        spec has no content digest (lambda callables), exercising the
        identity-keyed state-store fallback."""
        csum = custom_aggregate(
            "csum",
            init=lambda: 0.0,
            acc=lambda s, v: s + v,
            result=lambda s: s,
            deacc=lambda s, v: s - v,
        )
        program = lookback_program(csum, lookback=9.0)
        stream = uniform_stream(700, seed=24)
        engine = TiltEngine(workers=1)
        batch = engine.run(program, {"x": stream})
        inc = run_session(engine, program, {"x": stream}, 83, incremental=True)
        assert inc.result().output == batch.output

    def test_unfused_query_falls_back_per_kernel(self):
        """Unfused queries keep intermediates on the per-tick rebuild path;
        output must still match batch exactly."""
        app = get_application("trading")
        streams = app.streams(1_200, seed=25)
        engine = TiltEngine(workers=1, enable_fusion=False)
        compiled = engine.compile_cached(app.program())
        assert len(compiled.kernels) > 1
        batch = engine.run(compiled, streams)
        inc = run_session(engine, compiled, streams, 149, incremental=True)
        assert inc.result().output == batch.output

    def test_interpreted_mode_silently_full_recompute(self):
        app = get_application("wsum")
        streams = app.streams(600, seed=26)
        engine = TiltEngine(workers=1, mode="interpreted", incremental=True)
        batch = engine.run(app.program(), streams)
        session = run_session(engine, app.program(), streams, 90)
        assert not session.incremental  # no compiled kernels to carry state for
        assert session.result().output == batch.output

    @settings(max_examples=20, deadline=None)
    @given(
        agg_name=st.sampled_from(sorted(builtin_aggregates())),
        lookback=st.floats(min_value=1.0, max_value=60.0),
        precision=st.sampled_from([0.5, 1.0, 2.0]),
        ticks=st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=10),
    )
    def test_random_windows_ragged_ticks(self, agg_name, lookback, precision, ticks):
        """Property: random aggregate × window depth × precision × ragged
        tick schedule (including zero-event ticks) reproduces the batch
        output in both modes."""
        agg = builtin_aggregates()[agg_name]
        program = lookback_program(agg, lookback=lookback, precision=precision)
        stream = uniform_stream(900, seed=27)
        schedule = list(ticks) + [500]  # guarantee forward progress
        engine = TiltEngine(workers=1)
        batch = engine.run(program, {"x": stream})
        for incremental in (True, False):
            session = engine.open_session(
                program, sources_for_streams({"x": stream}), incremental=incremental
            )
            i = 0
            while not session.exhausted:
                session.tick(max_events=schedule[i % len(schedule)])
                i += 1
            session.close()
            assert session.result().output == batch.output

    def test_watermark_stall_and_advance(self):
        """A push-fed session that stalls (ticks with no new input, then an
        explicit horizon advance) must emit exactly the batch output."""
        app = get_application("trading")
        streams = app.streams(800, seed=28)
        engine = TiltEngine(workers=1)
        batch = engine.run(app.program(), streams)
        events = streams["stock"].events
        for incremental in (True, False):
            src = QueuedSource("stock", capacity=2_048)
            session = engine.open_session(app.program(), [src], incremental=incremental)
            src.push(events[:300])
            session.tick()
            session.tick()  # stall: nothing new arrived, watermark holds
            src.advance_to(events[300].start)
            session.tick()  # stall resolved by the explicit advance
            src.push(events[300:])
            session.tick()
            src.close()
            session.close()
            assert session.result().output == batch.output


class TestPruneStateInteraction:
    """Carry-over pruning vs. checkpoint pins and incremental state horizons
    (the ``max_lookback`` / kernel-state-horizon disagreement)."""

    def _flow(self, engine, app, streams, **session_kwargs):
        sources = sources_for_streams(streams, events_per_poll=150)
        session = engine.open_session(app.program(), sources, **session_kwargs)
        for _ in range(3):
            session.tick()
        token = session.checkpoint()
        for _ in range(5):
            session.tick()
        session.rewind(token)
        session.run_to_exhaustion()
        return session

    def test_checkpoint_rewind_replay_matches_batch(self):
        app = get_application("trading")
        streams = app.streams(1_800, seed=31)
        engine = TiltEngine(workers=1)
        batch = engine.run(app.program(), streams)
        for incremental in (True, False):
            session = self._flow(engine, app, streams, incremental=incremental)
            assert session.result().output == batch.output

    def test_naive_prune_corrupts_rewind_replay(self, monkeypatch):
        """Regression: pruning straight to ``w - max_lookback`` — ignoring
        checkpoint pins and incremental ingest horizons — discards input a
        rewind-replay still needs, and the replayed output diverges from
        batch.  This is the failure mode ``_prune_floor`` exists to prevent.
        """
        monkeypatch.setattr(
            StreamingSession,
            "_prune_floor",
            lambda self, w: w - self._boundary.max_lookback,
        )
        app = get_application("trading")
        streams = app.streams(1_800, seed=31)
        engine = TiltEngine(workers=1)
        batch = engine.run(app.program(), streams)
        session = self._flow(engine, app, streams, incremental=True)
        assert session.result().output != batch.output

    def test_pin_holds_carry_over(self):
        """An active pin visibly blocks pruning; releasing it lets the
        retained tail shrink back to the lookback margin."""
        app = get_application("trading")
        streams = app.streams(1_500, seed=32)
        engine = TiltEngine(workers=1)
        sources = sources_for_streams(streams, events_per_poll=100)
        session = engine.open_session(app.program(), sources, incremental=False)
        session.tick()
        token = session.checkpoint()
        for _ in range(8):
            session.tick()
        pinned = session.retained_snapshots()
        session.release(token)
        session.tick()
        assert session.retained_snapshots() < pinned
        session.close()

    def test_checkpoint_api_errors(self):
        app = get_application("trading")
        streams = app.streams(400, seed=33)
        engine = TiltEngine(workers=1)
        session = engine.open_session(
            app.program(), sources_for_streams(streams, events_per_poll=100)
        )
        with pytest.raises(ExecutionError):
            session.checkpoint()  # nothing emitted yet
        with pytest.raises(ExecutionError):
            session.rewind(0.0)
        session.tick()
        token = session.checkpoint()
        session.release(token)
        with pytest.raises(ExecutionError):
            session.release(token)
        session.close()
        with pytest.raises(ExecutionError):
            session.checkpoint()


class TestServePassThrough:
    def test_service_submit_incremental(self):
        from repro.serve.service import QueryService

        app = get_application("trading")
        streams = app.streams(900, seed=34)
        engine = TiltEngine(workers=1)
        batch = engine.run(app.program(), streams)
        service = QueryService(engine)
        try:
            name = service.submit(
                app.program(),
                sources=sources_for_streams(streams, events_per_poll=200),
                incremental=True,
            )
            service.run_until_idle()
            tenant_output = service.result(name).output
            assert tenant_output == batch.output
        finally:
            service.close()


class TestIncrementalInternals:
    def test_state_survives_pruning(self):
        """Persistent indexes keep answering deep-lookback windows even
        after the input carry-over has been pruned and compacted."""
        program = lookback_program(SUM, lookback=40.0, precision=1.0)
        stream = uniform_stream(2_000, seed=35)
        engine = TiltEngine(workers=1)
        batch = engine.run(program, {"x": stream})
        session = run_session(engine, program, {"x": stream}, 128, incremental=True)
        assert session.state_snapshots() > 0
        assert session.result().output == batch.output

    def test_incremental_plan_introspection(self):
        program = lookback_program(MAX)
        engine = TiltEngine(workers=1)
        compiled = engine.compile_cached(program)
        spec = compiled.kernels[-1].spec
        plan = spec.incremental_plan(compiled.program.inputs)
        assert plan  # at least the one reduce site
        assert set(plan.values()) <= {
            "prefix",
            "subtract-on-evict",
            "two-stacks",
            "refold",
            "full-recompute",
        }
        assert any(v == "two-stacks" for v in plan.values())
        mean_plan = engine.compile_cached(lookback_program(MEAN))
        spec = mean_plan.kernels[-1].spec
        assert "prefix" in spec.incremental_plan(mean_plan.program.inputs).values()
