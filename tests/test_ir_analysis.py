"""Tests for IR static analyses and validation."""

import pytest

from repro.core.ir import (
    BinOp,
    Call,
    IRBuilder,
    Let,
    UnaryOp,
    lift,
    Phi,
    Reduce,
    TDom,
    TIndex,
    TRef,
    TWindow,
    TemporalExpr,
    TiltProgram,
    Var,
    contains_reduce,
    count_nodes,
    dependency_graph,
    free_variables,
    reference_extents,
    referenced_streams,
    topological_order,
    validate_expr,
    validate_program,
    when,
)
from repro.errors import ValidationError
from repro.windowing import SUM


def trend_program():
    b = IRBuilder()
    stock = b.stream("stock")
    avg10 = b.define("avg10", stock.window(-10, 0).reduce(SUM) / 10.0, precision=1)
    avg20 = b.define("avg20", stock.window(-20, 0).reduce(SUM) / 20.0, precision=1)
    join = b.define(
        "join",
        when(avg10.at().is_valid() & avg20.at().is_valid(), avg10.at() - avg20.at()),
        precision=1,
    )
    b.define("filter", when(join.at() > 0, join.at()), precision=1)
    return b.build(output="filter")


class TestAnalyses:
    def test_referenced_streams(self):
        expr = TIndex("a", 0.0) + TIndex("b", -5.0) + TIndex("a", -1.0)
        assert referenced_streams(expr) == ["a", "b"]

    def test_reference_extents_points_and_windows(self):
        expr = Reduce(SUM, TWindow("x", -10.0, 0.0)) + TIndex("x", -25.0) + TIndex("y", 3.0)
        extents = reference_extents(expr)
        assert extents["x"] == (-25.0, 0.0)
        assert extents["y"] == (3.0, 3.0)

    def test_contains_reduce(self):
        assert contains_reduce(Reduce(SUM, TWindow("x", -1.0, 0.0)))
        assert not contains_reduce(TIndex("x", 0.0) + 1.0)

    def test_free_variables_and_let_scoping(self):
        expr = Let((("a", TIndex("x", 0.0)),), Var("a") + Var("b"))
        assert free_variables(expr) == {"b"}

    def test_count_nodes(self):
        assert count_nodes(TIndex("x", 0.0) + 1.0) == 3

    def test_dependency_graph_and_topo_order(self):
        program = trend_program()
        graph = dependency_graph(program)
        assert set(graph["join"]) == {"avg10", "avg20"}
        assert graph["avg10"] == []
        order = topological_order(program)
        assert order.index("avg10") < order.index("join") < order.index("filter")


class TestValidation:
    def test_valid_program_passes(self):
        validate_program(trend_program())

    def test_unknown_reference_rejected(self):
        te = TemporalExpr("out", TDom(), TIndex("ghost", 0.0))
        program = TiltProgram(("in",), (te,), "out")
        with pytest.raises(ValidationError):
            validate_program(program)

    def test_duplicate_definition_rejected(self):
        te1 = TemporalExpr("out", TDom(), TIndex("in", 0.0))
        te2 = TemporalExpr("out", TDom(), TIndex("in", 0.0))
        program = TiltProgram(("in",), (te1, te2), "out")
        with pytest.raises(ValidationError):
            validate_program(program)

    def test_shadowing_input_rejected(self):
        te = TemporalExpr("in", TDom(), TIndex("in", 0.0))
        program = TiltProgram(("in",), (te,), "in")
        with pytest.raises(ValidationError):
            validate_program(program)

    def test_missing_output_rejected(self):
        te = TemporalExpr("a", TDom(), TIndex("in", 0.0))
        program = TiltProgram(("in",), (te,), "nope")
        with pytest.raises(ValidationError):
            validate_program(program)

    def test_empty_program_rejected(self):
        with pytest.raises(ValidationError):
            validate_program(TiltProgram(("in",), (), "out"))

    def test_window_outside_reduce_rejected(self):
        with pytest.raises(ValidationError):
            validate_expr(TWindow("x", -1.0, 0.0) + 1.0)

    def test_reduce_element_with_temporal_ref_rejected(self):
        bad = Reduce(SUM, TWindow("x", -1.0, 0.0), element=TIndex("y", 0.0))
        with pytest.raises(ValidationError):
            validate_expr(bad)

    def test_unbound_variable_rejected(self):
        with pytest.raises(ValidationError):
            validate_expr(Var("loose") + 1.0)

    def test_forward_reference_rejected(self):
        a = TemporalExpr("a", TDom(), TIndex("b", 0.0))
        b = TemporalExpr("b", TDom(), TIndex("in", 0.0))
        program = TiltProgram(("in",), (a, b), "a")
        with pytest.raises(ValidationError):
            validate_program(program)

    def test_cyclic_dependency_rejected(self):
        # mutual references evade per-expression checks only if validation is
        # bypassed; topological_order must still detect the cycle directly
        a = TemporalExpr("a", TDom(), TIndex("b", 0.0))
        b = TemporalExpr("b", TDom(), TIndex("a", 0.0))
        program = TiltProgram(("in",), (a, b), "a")
        with pytest.raises(ValidationError, match="cycl"):
            topological_order(program)


class TestNodeValidation:
    """Every node-level ValidationError raised in __post_init__ / lift."""

    def test_empty_window_rejected(self):
        with pytest.raises(ValidationError, match="empty or inverted"):
            TWindow("x", 0.0, 0.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValidationError, match="empty or inverted"):
            TWindow("x", 5.0, -5.0)

    def test_unknown_binary_operator_rejected(self):
        with pytest.raises(ValidationError, match="unknown binary operator"):
            BinOp("@", TIndex("x", 0.0), TIndex("x", 0.0))

    def test_unknown_unary_operator_rejected(self):
        with pytest.raises(ValidationError, match="unknown unary operator"):
            UnaryOp("conjugate", TIndex("x", 0.0))

    def test_unknown_call_function_rejected(self):
        with pytest.raises(ValidationError, match="unknown external function"):
            Call("bessel", (TIndex("x", 0.0),))

    def test_negative_precision_rejected(self):
        with pytest.raises(ValidationError, match="precision"):
            TDom(precision=-1.0)

    def test_time_domain_end_before_start_rejected(self):
        with pytest.raises(ValidationError, match="end must not precede start"):
            TDom(10.0, 0.0)

    def test_unnamed_temporal_expr_rejected(self):
        with pytest.raises(ValidationError, match="must have a name"):
            TemporalExpr("", TDom(), TIndex("x", 0.0))

    def test_unliftable_value_rejected(self):
        with pytest.raises(ValidationError, match="cannot lift"):
            lift(object())
