"""Tests for TiLT IR node construction, operator overloading and printing."""

import math

import pytest

from repro.core.ir import (
    BinOp,
    Call,
    Coalesce,
    Const,
    IRBuilder,
    IfThenElse,
    IsValid,
    Let,
    Phi,
    Reduce,
    TDom,
    TIndex,
    TRef,
    TWindow,
    TemporalExpr,
    TiltProgram,
    UnaryOp,
    Var,
    count_nodes,
    format_expr,
    format_program,
    format_tdom,
    lift,
    normalize_expr,
    when,
)
from repro.errors import QueryBuildError, ValidationError
from repro.windowing import SUM


class TestNodeConstruction:
    def test_lift(self):
        assert lift(3) == Const(3.0)
        assert lift(True) == Const(1.0)
        assert lift(Const(1.0)) == Const(1.0)
        with pytest.raises(ValidationError):
            lift("nope")

    def test_operator_overloading_builds_binops(self):
        x = TIndex("x", 0.0)
        expr = (x + 1) * 2 - 3 / x
        assert isinstance(expr, BinOp)
        assert expr.op == "-"
        assert count_nodes(expr) == 9

    def test_comparison_and_logic_overloads(self):
        x = TIndex("x", 0.0)
        expr = (x > 1) & (x < 5) | ~(x.eq(3))
        assert isinstance(expr, BinOp) and expr.op == "or"

    def test_reverse_operators(self):
        x = TIndex("x", 0.0)
        expr = 10.0 - x
        assert isinstance(expr, BinOp) and isinstance(expr.lhs, Const)

    def test_unknown_binop_rejected(self):
        with pytest.raises(ValidationError):
            BinOp("@@", Const(1.0), Const(2.0))

    def test_unknown_unop_rejected(self):
        with pytest.raises(ValidationError):
            UnaryOp("wat", Const(1.0))

    def test_unknown_call_rejected(self):
        with pytest.raises(ValidationError):
            Call("nonsense", (Const(1.0),))

    def test_tref_helpers(self):
        stock = TRef("stock")
        assert stock.at(0.0) == TIndex("stock", 0.0)
        assert stock.shift(5.0) == TIndex("stock", -5.0)
        window = stock.window(-10.0, 0.0)
        assert isinstance(window, TWindow)
        assert window.size == 10.0
        reduce_node = window.reduce(SUM)
        assert isinstance(reduce_node, Reduce)

    def test_empty_window_rejected(self):
        with pytest.raises(ValidationError):
            TWindow("x", 0.0, 0.0)
        with pytest.raises(ValidationError):
            TWindow("x", 5.0, -5.0)

    def test_when_sugar(self):
        x = TIndex("x", 0.0)
        expr = when(x > 0, x)
        assert isinstance(expr, IfThenElse)
        assert isinstance(expr.orelse, Phi)
        expr2 = when(x > 0, x, 0.0)
        assert expr2.orelse == Const(0.0)

    def test_valid_and_coalesce_helpers(self):
        x = TIndex("x", 0.0)
        assert isinstance(x.is_valid(), IsValid)
        assert isinstance(x.coalesce(0.0), Coalesce)
        assert isinstance(x.sqrt(), UnaryOp)


class TestTDom:
    def test_defaults_unbounded(self):
        dom = TDom()
        assert not dom.is_bounded
        assert dom.precision == 0.0

    def test_with_bounds(self):
        dom = TDom(precision=2.0).with_bounds(0.0, 100.0)
        assert dom.is_bounded and dom.start == 0.0 and dom.end == 100.0 and dom.precision == 2.0

    def test_invalid_precision(self):
        with pytest.raises(ValidationError):
            TDom(precision=-1.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValidationError):
            TDom(start=10.0, end=0.0)


class TestProgramContainers:
    def test_program_lookup(self):
        te = TemporalExpr("out", TDom(), TIndex("in", 0.0))
        program = TiltProgram(("in",), (te,), "out")
        assert program.expr_named("out") is te
        assert program.output_expr is te
        assert program.defined_names() == ("out",)
        with pytest.raises(KeyError):
            program.expr_named("missing")

    def test_unnamed_temporal_expr_rejected(self):
        with pytest.raises(ValidationError):
            TemporalExpr("", TDom(), Const(1.0))


class TestPrinter:
    def test_format_expr_examples(self):
        stock = TRef("stock")
        expr = when(stock.window(-10.0, 0.0).reduce(SUM) / 10.0 > 0, Const(1.0))
        text = format_expr(expr)
        assert "reduce(sum, ~stock[t-10 : t])" in text
        assert "φ" in text

    def test_format_tdom(self):
        assert format_tdom(TDom(0, 100, 1)) == "TDom(0, 100, 1)"
        assert "inf" in format_tdom(TDom())

    def test_format_program_lists_everything(self):
        b = IRBuilder()
        stock = b.stream("stock")
        b.define("doubled", stock.at(0.0) * 2.0)
        program = b.build()
        text = format_program(program)
        assert "inputs: ~stock" in text
        assert "~doubled[t]" in text
        assert "output: ~doubled" in text

    def test_format_let(self):
        expr = Let((("a", Const(1.0)),), Var("a") + 1.0)
        text = format_expr(expr)
        assert "a = 1" in text and "return" in text


class TestBuilder:
    def test_define_and_build(self):
        b = IRBuilder()
        x = b.stream("x")
        b.define("y", x.at(0.0) + 1.0)
        program = b.build()
        assert program.inputs == ("x",)
        assert program.output == "y"

    def test_structured_stream_naming(self):
        b = IRBuilder()
        amount = b.stream("txn", field="amount")
        assert amount.name == "txn.amount"
        b.define("big", when(amount.at(0.0) > 100.0, amount.at(0.0)))
        assert b.build().inputs == ("txn.amount",)

    def test_duplicate_names_rejected(self):
        b = IRBuilder()
        x = b.stream("x")
        b.define("y", x.at(0.0))
        with pytest.raises(QueryBuildError):
            b.define("y", x.at(0.0))
        with pytest.raises(QueryBuildError):
            b.stream("y")

    def test_precision_and_tdom_exclusive(self):
        b = IRBuilder()
        x = b.stream("x")
        with pytest.raises(QueryBuildError):
            b.define("y", x.at(0.0), precision=1.0, tdom=TDom())

    def test_empty_build_rejected(self):
        with pytest.raises(QueryBuildError):
            IRBuilder().build()

    def test_fresh_names_unique(self):
        b = IRBuilder()
        names = {b.fresh_name("tmp") for _ in range(10)}
        assert len(names) == 10

    def test_normalize_bare_tref(self):
        expr = normalize_expr(TRef("x") + 1.0)
        assert TIndex("x", 0.0) in (expr.lhs, expr.rhs)
