"""Tests for the measurement harness (throughput, latency sweeps, reports)."""

import numpy as np
import pytest

from repro.apps import TREND_TRADING, YSB
from repro.metrics import (
    ThroughputResult,
    arithmetic_mean,
    baseline_latency_sweep,
    baseline_throughput,
    events_to_interval,
    format_sweep,
    format_table,
    geometric_mean,
    measure,
    speedups,
    throughput_table,
    tilt_latency_sweep,
    tilt_throughput,
)
from repro.spe import TrillEngine


class TestThroughputResult:
    def test_events_per_second_and_speedup(self):
        fast = ThroughputResult("a", "w", input_events=1000, elapsed_seconds=0.5)
        slow = ThroughputResult("b", "w", input_events=1000, elapsed_seconds=5.0)
        assert fast.events_per_second == 2000
        assert fast.millions_per_second == pytest.approx(0.002)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_measure_repeats_and_median(self):
        calls = []

        def run():
            calls.append(1)
            return "out"

        result = measure(run, engine="e", workload="w", input_events=10, repeats=3,
                         count_output=lambda r: 7)
        assert len(calls) == 3
        assert result.runs == 3
        assert result.output_events == 7
        assert len(result.per_run_seconds) == 3


class TestHarness:
    def test_tilt_throughput(self):
        streams = TREND_TRADING.streams(500, seed=0)
        result = tilt_throughput(TREND_TRADING, streams, workers=2)
        assert result.input_events == 500
        assert result.events_per_second > 0
        assert result.output_events > 0

    def test_baseline_throughput(self):
        streams = TREND_TRADING.streams(300, seed=0)
        result = baseline_throughput(TREND_TRADING, TrillEngine(batch_size=128), streams)
        assert result.engine == "trill"
        assert result.events_per_second > 0

    def test_events_to_interval(self):
        streams = YSB.streams(1000, seed=0)
        interval = events_to_interval(streams, 100)
        # 10k events/sec -> 100 events take about 10 ms
        assert interval == pytest.approx(0.01, rel=0.2)

    def test_tilt_latency_sweep_monotone_batches(self):
        streams = TREND_TRADING.streams(400, seed=0)
        points = tilt_latency_sweep(TREND_TRADING, streams, [50, 200])
        assert len(points) == 2
        assert points[0].batch_events == 50
        assert all(p.events_per_second > 0 for p in points)

    def test_baseline_latency_sweep(self):
        streams = TREND_TRADING.streams(400, seed=0)
        points = baseline_latency_sweep(
            TREND_TRADING, lambda b: TrillEngine(batch_size=b), streams, [50, 200]
        )
        assert len(points) == 2
        assert format_sweep("trill", points).startswith("trill:")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2.5], ["x", 12345.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "12,345" in text

    def test_throughput_table_and_speedups(self):
        results = {
            "w1": {
                "tilt": ThroughputResult("tilt", "w1", 1000, 0.1),
                "trill": ThroughputResult("trill", "w1", 1000, 1.0),
            },
            "w2": {
                "tilt": ThroughputResult("tilt", "w2", 1000, 0.2),
                "trill": ThroughputResult("trill", "w2", 1000, 4.0),
            },
        }
        table = throughput_table(results)
        assert "workload" in table and "tilt (Mev/s)" in table
        ratio = speedups(results, subject="tilt", baseline="trill")
        assert ratio["w1"] == pytest.approx(10.0)
        assert ratio["w2"] == pytest.approx(20.0)
        assert geometric_mean(ratio.values()) == pytest.approx(np.sqrt(200.0))
        assert arithmetic_mean(ratio.values()) == pytest.approx(15.0)

    def test_means_edge_cases(self):
        assert geometric_mean([]) == 0.0
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == 4.0


class TestStreamingMetrics:
    def test_rolling_throughput_window(self):
        from repro.metrics import RollingThroughput

        roll = RollingThroughput(window_ticks=2)
        roll.record(100, 1.0)
        roll.record(100, 1.0)
        roll.record(400, 1.0)
        # window holds the last two ticks only; cumulative remembers all
        assert roll.events_per_second == pytest.approx(250.0)
        assert roll.cumulative_events_per_second == pytest.approx(200.0)
        assert roll.total_events == 600

    def test_latency_distribution_percentiles(self):
        from repro.metrics import LatencyDistribution

        lat = LatencyDistribution(capacity=100)
        for ms in range(1, 101):
            lat.record(ms / 1000.0)
        assert lat.p50 == pytest.approx(0.0505, abs=1e-3)
        assert lat.p99 == pytest.approx(0.100, abs=2e-3)
        assert lat.max_seconds == pytest.approx(0.100)
        assert lat.mean == pytest.approx(0.0505, abs=1e-3)

    def test_latency_distribution_bounded_history(self):
        from repro.metrics import LatencyDistribution

        lat = LatencyDistribution(capacity=10)
        for _ in range(5):
            lat.record(10.0)
        for _ in range(10):
            lat.record(1.0)
        # old samples fell out of the ring: percentiles reflect recent ticks
        assert lat.p99 == pytest.approx(1.0)
        assert lat.count == 15

    def test_session_metrics_summary(self):
        from repro.metrics import SessionMetrics

        m = SessionMetrics()
        m.record_tick(input_events=1000, output_snapshots=10, seconds=0.5)
        m.record_tick(input_events=0, output_snapshots=0, seconds=0.1, emitted=False)
        assert m.ticks == 2 and m.empty_ticks == 1
        assert m.throughput == pytest.approx(1000 / 0.6)
        summary = m.summary()
        assert summary["ticks"] == 2.0
        assert summary["events_per_second"] == pytest.approx(1000 / 0.6)
        assert "ticks" in m.format()

    def test_invalid_configs(self):
        from repro.metrics import LatencyDistribution, RollingThroughput

        with pytest.raises(ValueError):
            RollingThroughput(window_ticks=0)
        with pytest.raises(ValueError):
            LatencyDistribution(capacity=0)
