"""Native codegen tier: selection, fallback, caching, and observability.

The cross-backend *equivalence* of the native tier lives in
``tests/test_backends.py`` (``TestCodegenTierEquivalence``); this module
pins down the tier machinery itself — knob resolution (constructor arg,
``REPRO_CODEGEN``, ``"auto"``), per-kernel fallback when the toolchain is
absent or a construct is not lowerable, digest-keyed JIT caching (memory
LRU + shared disk cache + warm ``precompile``), tier-aware compile-cache
keying and pickling, and the metrics/span/flight-recorder evidence trail.
"""

import os
import pickle

import numpy as np
import pytest

from repro.apps import get_application
from repro.core.codegen import native
from repro.core.codegen.compiled import (
    NATIVE_TIER,
    NUMPY_TIER,
    CompiledKernel,
    compile_program,
    resolve_codegen_tier,
)
from repro.core.frontend.query import source
from repro.core.runtime.engine import TiltEngine
from repro.errors import CompilationError, QueryBuildError
from repro.windowing import MEAN, SUM, custom_aggregate

requires_native = pytest.mark.skipif(
    not native.native_available(),
    reason="native codegen toolchain (cffi + C compiler) unavailable",
)


def mean_program():
    return source("x").window(10, 1).aggregate(MEAN).to_program()


def custom_agg_program():
    crest = custom_aggregate(
        "crest",
        init=lambda: 0.0,
        acc=lambda s, v: max(s, abs(v)),
        result=lambda s: s,
    )
    return source("x").window(10, 1).aggregate(crest).to_program()


# ---------------------------------------------------------------------- #
# tier selection
# ---------------------------------------------------------------------- #
class TestTierSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN", raising=False)
        with TiltEngine(workers=1) as engine:
            assert engine.codegen_tier == NUMPY_TIER

    @requires_native
    def test_constructor_selects_native(self):
        with TiltEngine(workers=1, codegen_tier="native") as engine:
            assert engine.codegen_tier == NATIVE_TIER

    @requires_native
    def test_env_var_selects_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "native")
        with TiltEngine(workers=1) as engine:
            assert engine.codegen_tier == NATIVE_TIER

    @requires_native
    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "native")
        with TiltEngine(workers=1, codegen_tier="numpy") as engine:
            assert engine.codegen_tier == NUMPY_TIER

    def test_invalid_tier_rejected(self):
        with pytest.raises(QueryBuildError):
            TiltEngine(workers=1, codegen_tier="fortran")
        with pytest.raises(CompilationError):
            compile_program(mean_program(), codegen_tier="fortran")

    def test_invalid_env_tier_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "fortran")
        with pytest.raises(QueryBuildError):
            TiltEngine(workers=1)

    def test_auto_resolves_by_availability(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        assert resolve_codegen_tier("auto") == NUMPY_TIER
        monkeypatch.delenv("REPRO_NATIVE_DISABLE")
        if native.native_available():
            assert resolve_codegen_tier("auto") == NATIVE_TIER

    def test_numpy_tier_has_no_native_kernel(self):
        compiled = compile_program(mean_program())
        (kernel,) = compiled.kernels
        assert kernel.tier == NUMPY_TIER
        assert kernel.active_tier == NUMPY_TIER


# ---------------------------------------------------------------------- #
# fallback paths
# ---------------------------------------------------------------------- #
class TestFallback:
    def test_missing_toolchain_falls_back_per_kernel(self, monkeypatch):
        """With the dependency gated off, a native-tier engine still runs —
        every kernel silently takes the NumPy path, observably via the
        fallback counter and the per-kernel reason."""
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        app = get_application("trading")
        streams = app.streams(300, seed=3)
        with TiltEngine(workers=1, codegen_tier="native") as engine:
            compiled = engine.compile(app.program())
            for kernel in compiled.kernels:
                assert kernel.tier == NATIVE_TIER
                assert kernel.active_tier == NUMPY_TIER
                assert "unavailable" in kernel.native_fallback_reason
            result = engine.run(compiled, streams).output
            assert engine._m_native_fallbacks.value == len(compiled.kernels)
        with TiltEngine(workers=1) as engine:
            assert result == engine.run(app.program(), streams).output

    @requires_native
    def test_unlowerable_custom_aggregate_falls_back(self):
        compiled = compile_program(custom_agg_program(), codegen_tier=NATIVE_TIER)
        (kernel,) = compiled.kernels
        assert kernel.active_tier == NUMPY_TIER
        assert "aggregate" in kernel.native_fallback_reason

    @requires_native
    def test_mixed_query_falls_back_per_kernel(self):
        """In one program, lowerable kernels go native while an unlowerable
        one (a custom Python aggregate) stays on NumPy — fallback is per
        kernel, not per query."""
        app = get_application("pantom")
        compiled = compile_program(app.program(), codegen_tier=NATIVE_TIER)
        tiers = compiled.codegen_tiers
        assert set(tiers.values()) == {NUMPY_TIER, NATIVE_TIER}
        streams = app.streams(300, seed=3)
        with TiltEngine(workers=1, codegen_tier="native") as engine:
            nat = engine.run(app.program(), streams).output
        with TiltEngine(workers=1, codegen_tier="numpy") as engine:
            assert nat == engine.run(app.program(), streams).output

    def test_lowering_blockers_reported_before_digest(self):
        compiled = compile_program(custom_agg_program())
        (kernel,) = compiled.kernels
        blockers = native.lowering_blockers(kernel.spec)
        assert blockers and any("aggregate" in b for b in blockers)

    @requires_native
    def test_interpreted_mode_never_goes_native(self, random_walk_stream):
        """Interpreted mode has no KernelSpec to lower — the knob composes
        by simply never reaching the native tier."""
        program = get_application("trading").program()
        with TiltEngine(workers=1, mode="interpreted") as reference_engine:
            reference = reference_engine.run(program, {"stock": random_walk_stream}).output
        with TiltEngine(workers=1, mode="interpreted", codegen_tier="native") as engine:
            assert engine.run(program, {"stock": random_walk_stream}).output == reference


# ---------------------------------------------------------------------- #
# JIT caching
# ---------------------------------------------------------------------- #
@requires_native
class TestJITCache:
    def test_memory_cache_hits_by_digest(self):
        compiled = compile_program(mean_program(), codegen_tier=NATIVE_TIER)
        (kernel,) = compiled.kernels
        assert kernel.active_tier == NATIVE_TIER
        before = native.stats()
        again = compile_program(mean_program(), codegen_tier=NATIVE_TIER)
        assert again.kernels[0].active_tier == NATIVE_TIER
        after = native.stats()
        assert after["mem_hits_total"] > before["mem_hits_total"]
        assert after["compiles_total"] == before["compiles_total"]

    def test_disk_cache_survives_memory_flush(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        from repro.core.codegen import compiled as compiled_mod

        native.clear_caches()
        compiled_mod._KERNEL_REBUILD_CACHE.clear()
        compiled = compile_program(mean_program(), codegen_tier=NATIVE_TIER)
        assert compiled.kernels[0].active_tier == NATIVE_TIER
        sos = list(tmp_path.glob("tilt-*.so"))
        assert sos, "compiled artifact should land in the configured cache dir"
        native.clear_caches()
        before = native.stats()
        compiled_mod._KERNEL_REBUILD_CACHE.clear()
        again = compile_program(mean_program(), codegen_tier=NATIVE_TIER)
        assert again.kernels[0].active_tier == NATIVE_TIER
        after = native.stats()
        assert after["disk_hits_total"] > before["disk_hits_total"]

    def test_precompile_warms_cache(self):
        compiled = compile_program(mean_program())
        native.clear_caches()
        report = native.precompile(k.spec for k in compiled.kernels)
        assert set(report.values()) == {None}
        before = native.stats()
        nat = compile_program(mean_program(), codegen_tier=NATIVE_TIER)
        assert nat.kernels[0].active_tier == NATIVE_TIER
        assert native.stats()["mem_hits_total"] > before["mem_hits_total"]

    def test_failure_cache_short_circuits(self):
        compiled = compile_program(custom_agg_program(), codegen_tier=NATIVE_TIER)
        kernel, reason = native.instantiate(compiled.kernels[0].spec)
        assert kernel is None and reason


# ---------------------------------------------------------------------- #
# tier-aware caching and pickling
# ---------------------------------------------------------------------- #
@requires_native
class TestTierKeying:
    def test_engine_compile_cache_keys_on_tier(self):
        """A tier switch on a shared engine must never serve a stale-tier
        compiled query."""
        program = mean_program()
        with TiltEngine(workers=1, codegen_tier="numpy") as np_eng, TiltEngine(
            workers=1, codegen_tier="native"
        ) as nat_eng:
            np_compiled = np_eng.compile_cached(program)
            nat_compiled = nat_eng.compile_cached(program)
            assert np_compiled is not nat_compiled
            assert np_compiled.kernels[0].tier == NUMPY_TIER
            assert nat_compiled.kernels[0].tier == NATIVE_TIER
            assert np_eng.compile_cached(program) is np_compiled
            assert nat_eng.compile_cached(program) is nat_compiled

    def test_from_spec_keys_on_tier(self):
        compiled = compile_program(mean_program())
        spec = compiled.kernels[0].spec
        a = CompiledKernel.from_spec(spec, tier=NUMPY_TIER)
        b = CompiledKernel.from_spec(spec, tier=NATIVE_TIER)
        assert a is not b
        assert (a.tier, b.tier) == (NUMPY_TIER, NATIVE_TIER)
        assert CompiledKernel.from_spec(spec, tier=NATIVE_TIER) is b

    def test_pickle_round_trip_preserves_tier(self):
        compiled = compile_program(mean_program(), codegen_tier=NATIVE_TIER)
        clone = pickle.loads(pickle.dumps(compiled.kernels[0]))
        assert clone.tier == NATIVE_TIER
        assert clone.active_tier == NATIVE_TIER

    def test_worker_payload_distinct_per_tier(self):
        """The pickled worker payload differs per tier, so the worker-side
        query cache (keyed on payload digest) can never mix tiers."""
        program = mean_program()
        np_payload = compile_program(program).pickle_payload()
        nat_payload = compile_program(program, codegen_tier=NATIVE_TIER).pickle_payload()
        assert np_payload[0] != nat_payload[0]


# ---------------------------------------------------------------------- #
# observability
# ---------------------------------------------------------------------- #
@requires_native
class TestObservability:
    def test_compile_span_records_tier(self):
        with TiltEngine(workers=1, codegen_tier="native", trace=True) as engine:
            engine.compile_cached(mean_program())
            records = engine.tracer.drain()
        spans = [r for r in records if r.name == "engine.compile"]
        assert spans and spans[0].attrs["tier"] == NATIVE_TIER

    def test_native_metrics_counters(self):
        """Fallbacks and build seconds are charged to the engine registry."""
        app = get_application("pantom")  # custom agg kernel + lowerable ones
        with TiltEngine(workers=1, codegen_tier="native") as engine:
            compiled = engine.compile(app.program())
            assert engine._m_native_fallbacks.value >= 1
            native_kernels = [
                k for k in compiled.kernels if k.active_tier == NATIVE_TIER
            ]
            assert native_kernels, "pantom has lowerable kernels too"
            reg = engine.registry.to_json()
            assert "repro_native_fallbacks_total" in reg
            assert "repro_native_compile_seconds_total" in reg

    def test_flight_context_records_tiers(self):
        from repro.datagen.sources import sources_for_streams
        from repro.serve.service import QueryService

        app = get_application("trading")
        streams = app.streams(300, seed=5)
        service = QueryService(workers=1, codegen_tier="native")
        try:
            name = service.submit(
                app.program(),
                sources=sources_for_streams(streams, events_per_poll=64),
            )
            service.run_until_idle()
            tenant = service._tenants[name]
            context = QueryService._flight_context(tenant)
            assert set(context["codegen_tiers"].values()) <= {NUMPY_TIER, NATIVE_TIER}
            assert NATIVE_TIER in context["codegen_tiers"].values()
        finally:
            service.close()

    def test_module_stats_shape(self):
        counters = native.stats()
        assert {
            "compiles_total",
            "compile_seconds_total",
            "fallbacks_total",
            "mem_hits_total",
            "disk_hits_total",
        } <= set(counters)


# ---------------------------------------------------------------------- #
# per-construct bitwise equivalence
# ---------------------------------------------------------------------- #
@requires_native
class TestConstructEquivalence:
    """Single-construct programs, compared bitwise against the NumPy tier —
    narrower than the app sweep in test_backends.py, so a mismatch points
    at one template."""

    @pytest.mark.parametrize("agg_name", sorted(native._LOWERABLE_AGGS))
    def test_every_lowerable_aggregate_bitwise(self, agg_name, random_walk_buf):
        from repro.windowing.functions import builtin_aggregates

        agg = builtin_aggregates()[agg_name]
        program = source("x").window(10, 1).aggregate(agg).to_program()
        np_out = compile_program(program).run({"x": random_walk_buf}, 0.0, 200.0)
        nat_compiled = compile_program(program, codegen_tier=NATIVE_TIER)
        assert nat_compiled.kernels[-1].active_tier == NATIVE_TIER, agg_name
        nat_out = nat_compiled.run({"x": random_walk_buf}, 0.0, 200.0)
        assert np.array_equal(np_out.times, nat_out.times)
        assert np.array_equal(np_out.valid, nat_out.valid)
        assert np.array_equal(
            np.asarray(np_out.values).view(np.uint64),
            np.asarray(nat_out.values).view(np.uint64),
        ), agg_name

    def test_nan_propagation_through_rmq(self):
        """NaNs inside a max/min window poison exactly the windows NumPy
        poisons — the deque's NaN-prefix override, bit for bit."""
        from repro.core.runtime.ssbuf import SSBuf

        n = 64
        times = np.arange(n, dtype=np.float64)
        values = np.sin(times)
        values[7] = np.nan
        values[31] = np.nan
        buf = SSBuf(times, values, np.ones(n, dtype=bool), start_time=0.0)
        for agg_name in ("max", "min"):
            from repro.windowing.functions import builtin_aggregates

            agg = builtin_aggregates()[agg_name]
            program = source("x").window(8, 1).aggregate(agg).to_program()
            np_out = compile_program(program).run({"x": buf}, 0.0, float(n))
            nat = compile_program(program, codegen_tier=NATIVE_TIER)
            assert nat.kernels[-1].active_tier == NATIVE_TIER
            nat_out = nat.run({"x": buf}, 0.0, float(n))
            assert np.array_equal(
                np.asarray(np_out.values).view(np.uint64),
                np.asarray(nat_out.values).view(np.uint64),
            ), agg_name
